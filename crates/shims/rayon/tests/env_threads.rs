//! `RAYON_NUM_THREADS` sizes the global pool.
//!
//! A single test in its own integration binary: the variable must be set
//! before anything touches the global pool, and integration test files run
//! as separate processes, so this is the one place the override can be
//! exercised hermetically.

use rayon::prelude::*;

#[test]
fn rayon_num_threads_overrides_global_pool_size() {
    // Must precede any parallel call in this process.
    std::env::set_var("RAYON_NUM_THREADS", "3");
    assert_eq!(rayon::current_num_threads(), 3);

    // The global pool actually runs work under the override.
    let sum: usize = (0..200_000usize).into_par_iter().sum();
    assert_eq!(sum, 200_000 * 199_999 / 2);

    // Dedicated pools with an explicit size are unaffected...
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(5)
        .build()
        .unwrap();
    assert_eq!(pool.current_num_threads(), 5);
    // ...while unset builders inherit the env default, like real rayon.
    let inherit = rayon::ThreadPoolBuilder::new().build().unwrap();
    assert_eq!(inherit.current_num_threads(), 3);
}
