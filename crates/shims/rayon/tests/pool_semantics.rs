//! Behavioral contract of the persistent pool: worker reuse, dynamic
//! chunk scheduling, panic propagation, nested join, and order
//! preservation under stealing. These are the semantics `rc-parlay` and
//! `rc-core` build on, so they are pinned here rather than assumed.

use rayon::prelude::*;
use rayon::{current_num_threads, join, ThreadPoolBuilder};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Busy work whose duration scales with `spin`, defeating the optimizer.
fn spin_work(spin: usize) -> u64 {
    let mut acc = 0x9E37u64;
    for i in 0..spin {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    std::hint::black_box(acc)
}

#[test]
fn workers_persist_across_calls() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    pool.install(|| {
        for _ in 0..20 {
            (0..40_000usize).into_par_iter().for_each(|i| {
                spin_work(i % 17);
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        }
    });
    // 3 pool workers + the caller. A spawn-per-call executor (the old
    // shim) would accumulate fresh thread ids every iteration.
    let distinct = seen.lock().unwrap().len();
    assert!(
        distinct <= 4,
        "thread ids keep growing ({distinct}) — workers are not persistent"
    );
}

#[test]
fn dynamic_scheduling_covers_every_index_exactly_once() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let hits: Vec<AtomicUsize> = (0..100_000).map(|_| AtomicUsize::new(0)).collect();
    let href = &hits;
    pool.install(|| {
        (0..href.len()).into_par_iter().for_each(|i| {
            // Severely skewed per-item cost: dynamic claiming must still
            // cover everything exactly once.
            spin_work(if i % 1000 == 0 { 20_000 } else { 1 });
            href[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn collect_preserves_order_under_stealing() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let got: Vec<u64> = pool.install(|| {
        (0..200_000usize)
            .into_par_iter()
            .map(|i| {
                spin_work(i % 64); // uneven work shuffles chunk completion order
                i as u64 * 3
            })
            .collect()
    });
    assert_eq!(got.len(), 200_000);
    assert!(
        got.iter().enumerate().all(|(i, &x)| x == i as u64 * 3),
        "collect must place results by index, not completion order"
    );
}

#[test]
fn panic_in_worker_propagates_to_caller() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let r = std::panic::catch_unwind(|| {
        pool.install(|| {
            (0..100_000usize).into_par_iter().for_each(|i| {
                if i == 31_337 {
                    panic!("boom from a pool worker");
                }
            });
        });
    });
    let err = r.expect_err("panic must reach the caller");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom"), "payload preserved, got: {msg}");

    // The pool survives the panic and keeps computing correct results.
    let sum: usize = pool.install(|| (0..1_000usize).into_par_iter().sum());
    assert_eq!(sum, 1_000 * 999 / 2);
}

#[test]
fn join_panics_propagate_first_branch_wins() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    // Panic in the second (stealable) branch.
    let r = std::panic::catch_unwind(|| pool.install(|| join(|| 1, || panic!("b panics"))));
    assert!(r.is_err());
    // Panic in the first branch; the second still completes.
    let ran_b = AtomicUsize::new(0);
    let r = std::panic::catch_unwind(|| {
        pool.install(|| {
            join(
                || panic!("a panics"),
                || ran_b.fetch_add(1, Ordering::Relaxed),
            )
        })
    });
    let err = r.expect_err("first-branch panic propagates");
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "a panics", "first branch's payload wins");
    assert_eq!(ran_b.load(Ordering::Relaxed), 1, "b resolved before unwind");
}

#[test]
fn nested_join_under_install_produces_correct_results() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    for threads in [2, 4] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(|| {
            assert_eq!(current_num_threads(), threads);
            fib(18)
        });
        assert_eq!(got, 2_584, "threads = {threads}");
    }
}

#[test]
fn nested_parallel_for_inside_parallel_for() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let total = AtomicUsize::new(0);
    pool.install(|| {
        (0..64usize).into_par_iter().for_each(|_| {
            assert_eq!(current_num_threads(), 4, "workers route to their pool");
            let inner: usize = (0..1_000usize).into_par_iter().sum();
            total.fetch_add(inner, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 64 * (1_000 * 999 / 2));
}

#[test]
fn two_pools_coexist_and_route_independently() {
    let small = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let large = ThreadPoolBuilder::new().num_threads(6).build().unwrap();
    let (a, b) = small.install(|| {
        let a = current_num_threads();
        let b = large.install(current_num_threads);
        (a, b)
    });
    assert_eq!((a, b), (2, 6));
    assert_eq!(small.current_num_threads(), 2);
    assert_eq!(large.current_num_threads(), 6);
}

#[test]
fn par_sort_under_contention_matches_std() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let mut state = 7u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    let mut xs: Vec<(u64, u32)> = (0..300_000u32).map(|i| (next() % 1_000, i)).collect();
    let mut want = xs.clone();
    pool.install(|| xs.par_sort_unstable_by_key(|&(k, _)| k));
    want.sort_unstable_by_key(|&(k, _)| k);
    // Unstable sort: compare key sequences and the full multiset.
    let got_keys: Vec<u64> = xs.iter().map(|&(k, _)| k).collect();
    let want_keys: Vec<u64> = want.iter().map(|&(k, _)| k).collect();
    assert_eq!(got_keys, want_keys);
    let mut got_sorted = xs.clone();
    got_sorted.sort_unstable();
    want.sort_unstable();
    assert_eq!(got_sorted, want);
}
