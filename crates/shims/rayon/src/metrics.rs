//! Optional pool counters behind the `pool-metrics` feature.
//!
//! The work-stealing pool sits under every parallel batch call, so even
//! one always-on atomic per chunk claim would tax the hottest paths in
//! the workspace. The statics below therefore always *exist* (so the
//! [`pool_metrics`] accessor compiles either way) but the increments
//! compile to nothing unless the `pool-metrics` feature is on — with it
//! off, [`pool_metrics`] reports zeros and [`pool_metrics_enabled`]
//! says so. With it on, each event costs one relaxed `fetch_add`.
//!
//! Counters are process-global (all registries pooled together): the
//! consumer is the serve tier's telemetry snapshot, which wants "what is
//! the pool doing under this workload", not per-registry attribution.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static JOBS_PUBLISHED: AtomicU64 = AtomicU64::new(0);
pub(crate) static CHUNKS_CLAIMED: AtomicU64 = AtomicU64::new(0);
pub(crate) static JOIN_TASKS_STOLEN: AtomicU64 = AtomicU64::new(0);
pub(crate) static JOIN_TASKS_RECLAIMED: AtomicU64 = AtomicU64::new(0);
pub(crate) static PARKS: AtomicU64 = AtomicU64::new(0);
pub(crate) static UNPARKS: AtomicU64 = AtomicU64::new(0);

/// Bump one pool counter — a relaxed `fetch_add` under `pool-metrics`,
/// nothing otherwise.
#[inline(always)]
pub(crate) fn bump(counter: &AtomicU64) {
    #[cfg(feature = "pool-metrics")]
    counter.fetch_add(1, Ordering::Relaxed);
    #[cfg(not(feature = "pool-metrics"))]
    let _ = counter;
}

/// Point-in-time reading of the pool counters (process-global, since
/// process start). All zeros unless the `pool-metrics` feature is
/// enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Jobs pushed onto an injection queue (chunked for-jobs and join
    /// second branches both count).
    pub jobs_published: u64,
    /// Grain-sized chunks claimed from for-job counters.
    pub chunks_claimed: u64,
    /// Join second branches executed by a thread other than the caller.
    pub join_tasks_stolen: u64,
    /// Join second branches the caller reclaimed and ran inline.
    pub join_tasks_reclaimed: u64,
    /// Times a worker parked on the queue condvar.
    pub parks: u64,
    /// Times a parked worker woke.
    pub unparks: u64,
}

/// Read the pool counters. Cheap (six relaxed loads); values are
/// monotone, so two readings bracket the activity between them.
pub fn pool_metrics() -> PoolMetrics {
    PoolMetrics {
        jobs_published: JOBS_PUBLISHED.load(Ordering::Relaxed),
        chunks_claimed: CHUNKS_CLAIMED.load(Ordering::Relaxed),
        join_tasks_stolen: JOIN_TASKS_STOLEN.load(Ordering::Relaxed),
        join_tasks_reclaimed: JOIN_TASKS_RECLAIMED.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
        unparks: UNPARKS.load(Ordering::Relaxed),
    }
}

/// Was this build compiled with the `pool-metrics` feature (i.e. are the
/// counters live)?
pub fn pool_metrics_enabled() -> bool {
    cfg!(feature = "pool-metrics")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn counters_reflect_feature_state() {
        let before = pool_metrics();
        let total: u64 = (0..100_000u64).collect::<Vec<_>>().par_iter().sum();
        assert_eq!(total, 100_000 * 99_999 / 2);
        let (a, b) = crate::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        let after = pool_metrics();
        if pool_metrics_enabled() {
            // On a single-core machine everything runs inline and nothing
            // is published; only assert when the pool actually engages.
            if crate::current_num_threads() > 1 {
                assert!(after.jobs_published > before.jobs_published);
                assert!(after.chunks_claimed > before.chunks_claimed);
                assert!(
                    after.join_tasks_stolen + after.join_tasks_reclaimed
                        > before.join_tasks_stolen + before.join_tasks_reclaimed
                );
            }
        } else {
            assert_eq!(after, PoolMetrics::default());
        }
    }
}
