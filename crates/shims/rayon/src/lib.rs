//! Workspace-local stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the workspace ships the *subset* of rayon's API that the
//! rcforest crates actually use, backed by a **persistent work-stealing
//! thread pool** (the `pool` module). The surface and semantics
//! match rayon closely enough that pointing the workspace `rayon`
//! dependency back at crates.io is a one-line change and requires no
//! source edits.
//!
//! What is provided:
//!
//! * `prelude::*` with [`ParallelIterator`] driving `map`, `enumerate`,
//!   `for_each`, `collect` (order-preserving), `sum`, `reduce`, and
//!   `fold(..).reduce(..)`;
//! * `par_iter()` on slices, `into_par_iter()` on `Range<usize>`,
//!   `par_chunks(..)` and a parallel-merge-sort
//!   `par_sort_unstable_by_key(..)` on slices;
//! * [`join`] executing its second branch on a pool worker (or inline if
//!   nobody steals it), with help-first stealing while blocked;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] routing parallel
//!   calls to a dedicated pool instance;
//! * `RAYON_NUM_THREADS` to size the global pool.
//!
//! # Execution model
//!
//! A pool's workers are spawned **once**, lazily on its first parallel
//! call, and then parked on a condvar whenever idle — a steady-state
//! parallel call costs one mutex push plus a wakeup, not a round of OS
//! thread spawns. Each consuming operation publishes a single chunked job;
//! every participating thread (the caller included) repeatedly claims a
//! grain-sized range of the index space from a shared atomic counter, so
//! load imbalance between chunks is absorbed dynamically rather than
//! baked into a static split. Panics in user closures are caught on the
//! executing worker, stashed, and re-thrown on the calling thread after
//! the operation completes; the worker survives and keeps serving jobs.
//!
//! The global pool sizes itself from `RAYON_NUM_THREADS` (falling back to
//! the machine's available parallelism, resolved once). Pools built via
//! [`ThreadPoolBuilder`] own their workers; [`ThreadPool::install`] makes
//! a pool the routing target for parallel calls made by the closure (the
//! closure itself still runs on the calling thread — the one observable
//! difference from real rayon, which migrates it onto a worker).

mod metrics;
mod pool;
mod sort;

pub use metrics::{pool_metrics, pool_metrics_enabled, PoolMetrics};
pub use pool::{current_num_threads, join};

use std::mem::MaybeUninit;
use std::sync::Arc;

/// Builder mirroring `rayon::ThreadPoolBuilder` for the `num_threads` +
/// `build` + `install` pattern.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (global pool) sizing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool's thread count (0 = `RAYON_NUM_THREADS`, else the
    /// machine's available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a dedicated pool. Workers are spawned lazily on the pool's
    /// first parallel call and joined when the pool is dropped.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads == 0 {
            pool::default_pool_size()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            registry: pool::Registry::new(size),
        })
    }
}

/// A dedicated pool instance with its own persistent workers.
pub struct ThreadPool {
    registry: Arc<pool::Registry>,
}

impl ThreadPool {
    /// Run `f` with this pool as the target of every parallel operation it
    /// starts (nested operations on pool workers inherit it). `f` itself
    /// runs on the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = pool::install_registry(Arc::clone(&self.registry));
        f()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.size
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate_and_join();
    }
}

/// Raw-pointer wrapper for disjoint writes into a result buffer from
/// several pool threads.
struct OutPtr<T>(*mut T);
unsafe impl<T: Send> Send for OutPtr<T> {}
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<T> OutPtr<T> {
    /// Write `v` into slot `i`.
    ///
    /// # Safety
    /// Slot `i` must be within the allocation and written by exactly one
    /// thread during the parallel phase.
    unsafe fn write(&self, i: usize, v: T) {
        unsafe { self.0.add(i).write(v) }
    }
}

/// An indexed parallel source: a length plus random access. All shim
/// iterators are indexed, which is exactly the shape rayon's
/// `IndexedParallelIterator` guarantees for the combinators we cover.
pub trait ParallelIterator: Sized + Sync {
    /// Element type.
    type Item: Send;

    /// Exact number of elements.
    fn par_len(&self) -> usize;

    /// The `i`-th element. Must be safe to call concurrently for distinct
    /// indices.
    fn at(&self, i: usize) -> Self::Item;

    /// Map each element through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pair each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every element, in dynamically scheduled parallel chunks.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let n = self.par_len();
        pool::run_chunked_grain(n, pool::default_grain(n), |lo, hi| {
            for i in lo..hi {
                f(self.at(i));
            }
        });
    }

    /// Collect into a container (only `Vec<T>` is supported), preserving
    /// element order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sum all elements.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let partials = fold_chunks(&self, |lo, hi| (lo..hi).map(|i| self.at(i)).sum::<S>());
        partials.into_iter().sum()
    }

    /// Reduce with an associative operator; `identity()` seeds each chunk.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = fold_chunks(&self, |lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                acc = op(acc, self.at(i));
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Fold each parallel chunk into an accumulator seeded by
    /// `identity()`. The per-chunk accumulators are consumed by
    /// [`Fold::reduce`], matching rayon's `fold(..).reduce(..)` idiom.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<T>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        let partials = fold_chunks(&self, |lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                acc = fold_op(acc, self.at(i));
            }
            acc
        });
        Fold { partials }
    }
}

/// Run `chunk(lo, hi)` over dynamically claimed parallel chunks, returning
/// the per-chunk results in chunk (= index) order regardless of which
/// thread ran which chunk.
fn fold_chunks<I, T, F>(it: &I, chunk: F) -> Vec<T>
where
    I: ParallelIterator,
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let n = it.par_len();
    if n == 0 {
        return Vec::new();
    }
    let grain = pool::default_grain(n);
    let nchunks = pool::chunk_count(n, grain);
    let mut out: Vec<MaybeUninit<T>> = (0..nchunks).map(|_| MaybeUninit::uninit()).collect();
    let ptr = OutPtr(out.as_mut_ptr());
    let ptr = &ptr;
    pool::run_chunked_grain(n, grain, |lo, hi| {
        // Chunk boundaries are grain-aligned, so the chunk id is lo/grain.
        // SAFETY: each chunk id is claimed (and its slot written) exactly
        // once.
        unsafe { ptr.write(lo / grain, MaybeUninit::new(chunk(lo, hi))) };
    });
    // SAFETY: every slot was written exactly once above.
    out.into_iter()
        .map(|s| unsafe { s.assume_init() })
        .collect()
}

/// Result of [`ParallelIterator::fold`]: per-chunk accumulators.
pub struct Fold<T> {
    partials: Vec<T>,
}

impl<T: Send> Fold<T> {
    /// Combine the per-chunk accumulators.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.partials.into_iter().fold(identity(), op)
    }
}

/// Order-preserving parallel collection.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the container from an indexed parallel iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        let n = it.par_len();
        let mut out: Vec<T> = Vec::with_capacity(n);
        let ptr = OutPtr(out.as_mut_ptr());
        let ptr = &ptr;
        pool::run_chunked_grain(n, pool::default_grain(n), |lo, hi| {
            for i in lo..hi {
                // SAFETY: chunks write disjoint index ranges into reserved
                // capacity; every index in 0..n is written exactly once.
                unsafe { ptr.write(i, it.at(i)) };
            }
        });
        // SAFETY: all n slots initialized by the loop above.
        unsafe { out.set_len(n) };
        out
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> R {
        (self.f)(self.base.at(i))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> (usize, B::Item) {
        (i, self.base.at(i))
    }
}

/// Parallel slice iterator (`par_iter`).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn at(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel chunk iterator (`par_chunks`).
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn at(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Parallel range iterator (`(a..b).into_par_iter()`).
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    fn at(&self, i: usize) -> usize {
        self.start + i
    }
}

/// `into_par_iter()` entry point.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// `par_iter()` on shared references (slices, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Slice-specific parallel views (`par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksIter { slice: self, size }
    }
}

/// Mutable-slice parallel operations (`par_sort_unstable_by_key`).
pub trait ParallelSliceMut<T: Send> {
    /// Sort by key with a parallel merge sort on the current pool. Not
    /// stable, matching rayon.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord + Send,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord + Send,
        F: Fn(&T) -> K + Sync,
    {
        sort::par_merge_sort_by(self, &|a: &T, b: &T| key(a).cmp(&key(b)));
    }
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..100_000).collect();
        let got: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        let want: Vec<u64> = xs.iter().map(|&x| x * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_for_each_covers_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..50_000).map(|_| AtomicUsize::new(0)).collect();
        let href = &hits;
        (0..hits.len()).into_par_iter().for_each(|i| {
            href[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_sum_and_reduce() {
        let xs: Vec<usize> = (0..10_000).collect();
        let total: usize = xs.par_chunks(128).map(|c| c.iter().sum::<usize>()).sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
        let max = xs.par_iter().map(|&x| x).reduce(|| 0, |a, b| a.max(b));
        assert_eq!(max, 9_999);
    }

    #[test]
    fn fold_then_reduce() {
        let odd: Vec<usize> = (0..10_000)
            .into_par_iter()
            .fold(Vec::new, |mut acc, i| {
                if i % 2 == 1 {
                    acc.push(i);
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(odd.len(), 5_000);
        assert!(odd.windows(2).all(|w| w[0] < w[1]), "chunk order preserved");
    }

    #[test]
    fn enumerate_indices_match() {
        let xs = vec![7u32; 5_000];
        let got: Vec<(usize, u32)> = xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        for (i, &(j, x)) in got.iter().enumerate() {
            assert_eq!((i, 7), (j, x));
        }
    }

    #[test]
    fn install_caps_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert!(current_num_threads() >= 1, "routing restored");
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn install_routes_nested_parallelism_to_the_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            // Unlike the cap-splitting of the old scoped executor, a real
            // pool reports its full size everywhere inside it — workers
            // included — because nested operations share the same workers
            // rather than spawning their own.
            (0..64usize).into_par_iter().for_each(|_| {
                assert_eq!(current_num_threads(), 4, "workers inherit the pool");
            });
            let (a, b) = join(current_num_threads, current_num_threads);
            assert_eq!((a, b), (4, 4), "join branches run on the same pool");
        });
    }

    #[test]
    fn empty_inputs() {
        let xs: Vec<u32> = Vec::new();
        let got: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(got.is_empty());
        let s: usize = (0..0).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 0);
    }

    #[test]
    fn par_sort_matches_std() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 16
        };
        for n in [0usize, 1, 2, 1000, 50_000, 200_001] {
            let mut xs: Vec<u64> = (0..n).map(|_| next() % 10_000).collect();
            let mut want = xs.clone();
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            pool.install(|| xs.par_sort_unstable_by_key(|&x| x));
            want.sort_unstable();
            assert_eq!(xs, want, "n = {n}");
        }
    }

    #[test]
    fn par_sort_presorted_and_reversed() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut asc: Vec<u32> = (0..100_000).collect();
        pool.install(|| asc.par_sort_unstable_by_key(|&x| x));
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        let mut desc: Vec<u32> = (0..100_000).rev().collect();
        pool.install(|| desc.par_sort_unstable_by_key(|&x| x));
        assert!(desc.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn par_sort_non_copy_payload() {
        // String payloads exercise the exactly-once-drop discipline of the
        // merge buffer.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut xs: Vec<String> = (0..20_000u32).rev().map(|i| format!("{i:08}")).collect();
        pool.install(|| xs.par_sort_unstable_by_key(|s| s.clone()));
        assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(xs.len(), 20_000);
    }
}
