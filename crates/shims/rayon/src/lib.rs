//! Workspace-local stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the workspace ships the *subset* of rayon's API that the
//! rcforest crates actually use, implemented as plain fork-join over
//! `std::thread::scope`. The surface and semantics match rayon closely
//! enough that pointing the workspace `rayon` dependency back at crates.io
//! is a one-line change and requires no source edits.
//!
//! What is provided:
//!
//! * `prelude::*` with [`ParallelIterator`] driving `map`, `enumerate`,
//!   `for_each`, `collect` (order-preserving), `sum`, `reduce`, and
//!   `fold(..).reduce(..)`;
//! * `par_iter()` on slices, `into_par_iter()` on `Range<usize>`,
//!   `par_chunks(..)` and `par_sort_unstable_by_key(..)` on slices;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`], which here scope a
//!   thread-count override rather than an actual pool.
//!
//! Parallelism model: each consuming operation splits its index space into
//! at most [`current_num_threads`] contiguous chunks and runs them on
//! scoped threads (the first chunk on the calling thread). Work stealing
//! is not implemented; callers in `rc-parlay` already block work into
//! even-sized chunks above a sequential threshold, which is the load
//! pattern this executor handles well.

use std::cell::Cell;
use std::mem::MaybeUninit;

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Machine parallelism, resolved once. `std::thread::available_parallelism`
/// re-reads cgroup limits on every call (tens of microseconds inside a
/// container) — caching it keeps tiny parallel-for calls on hot paths
/// (change propagation runs several per contraction level) at nanoseconds.
fn machine_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |x| x.get()))
}

/// Number of threads parallel operations may use on this thread: the
/// innermost [`ThreadPool::install`] override, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.with(|c| c.get());
    if o > 0 {
        o
    } else {
        machine_parallelism()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the `num_threads` +
/// `build` + `install` pattern.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the number of threads operations inside `install` may use.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the (virtual) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A virtual pool: holds only the thread-count cap applied during
/// [`ThreadPool::install`].
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the caller's thread-count override on drop (also on panic).
struct OverrideGuard {
    prev: usize,
}

impl OverrideGuard {
    fn set(n: usize) -> Self {
        OverrideGuard {
            prev: THREAD_OVERRIDE.with(|c| c.replace(n)),
        }
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the parallelism cap for
    /// parallel operations started inside it. Worker threads spawned by
    /// those operations inherit the cap, so nested parallelism stays
    /// bounded like it would on a real fixed-size pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = OverrideGuard::set(self.current_num_threads());
        f()
    }

    /// The pool's thread count. As with real rayon, an unset (zero)
    /// builder value means the machine's available parallelism.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |x| x.get())
        } else {
            self.num_threads
        }
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results. The
/// caller's thread cap is split between the two branches so nested
/// parallelism stays within it.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let cap = current_num_threads();
    if cap <= 1 {
        return (a(), b());
    }
    let half = (cap / 2).max(1);
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _guard = OverrideGuard::set(half);
            b()
        });
        let ra = {
            let _guard = OverrideGuard::set((cap - half).max(1));
            a()
        };
        (ra, hb.join().expect("rayon shim: join task panicked"))
    })
}

/// Raw-pointer wrapper for disjoint writes into a result buffer from
/// several scoped threads.
struct OutPtr<T>(*mut T);
unsafe impl<T: Send> Send for OutPtr<T> {}
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<T> OutPtr<T> {
    /// Write `v` into slot `i`.
    ///
    /// # Safety
    /// Slot `i` must be within the allocation and written by exactly one
    /// thread during the parallel phase.
    unsafe fn write(&self, i: usize, v: T) {
        unsafe { self.0.add(i).write(v) }
    }
}

/// Split `0..n` into at most `current_num_threads()` contiguous chunks and
/// run `body(lo, hi)` for each, first chunk on the calling thread. Each
/// chunk (including the calling thread's) runs under an even share of the
/// caller's thread cap, so nested parallel operations keep the total
/// bounded by the cap — like a real fixed-size pool, minus work stealing.
fn run_chunked<F: Fn(usize, usize) + Sync>(n: usize, body: F) {
    if n == 0 {
        return;
    }
    let cap = current_num_threads();
    let t = cap.min(n);
    if t <= 1 {
        body(0, n);
        return;
    }
    let share = (cap / t).max(1);
    let chunk = n.div_ceil(t);
    std::thread::scope(|s| {
        let body = &body;
        for k in 1..t {
            let lo = k * chunk;
            if lo >= n {
                break;
            }
            let hi = (lo + chunk).min(n);
            s.spawn(move || {
                let _guard = OverrideGuard::set(share);
                body(lo, hi)
            });
        }
        let _guard = OverrideGuard::set(share);
        body(0, chunk.min(n));
    });
}

/// An indexed parallel source: a length plus random access. All shim
/// iterators are indexed, which is exactly the shape rayon's
/// `IndexedParallelIterator` guarantees for the combinators we cover.
pub trait ParallelIterator: Sized + Sync {
    /// Element type.
    type Item: Send;

    /// Exact number of elements.
    fn par_len(&self) -> usize;

    /// The `i`-th element. Must be safe to call concurrently for distinct
    /// indices.
    fn at(&self, i: usize) -> Self::Item;

    /// Map each element through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pair each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every element, in parallel chunks.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        run_chunked(self.par_len(), |lo, hi| {
            for i in lo..hi {
                f(self.at(i));
            }
        });
    }

    /// Collect into a container (only `Vec<T>` is supported), preserving
    /// element order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sum all elements.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let partials = fold_chunks(&self, |lo, hi| (lo..hi).map(|i| self.at(i)).sum::<S>());
        partials.into_iter().sum()
    }

    /// Reduce with an associative operator; `identity()` seeds each chunk.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = fold_chunks(&self, |lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                acc = op(acc, self.at(i));
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Fold each parallel chunk into an accumulator seeded by
    /// `identity()`. The per-chunk accumulators are consumed by
    /// [`Fold::reduce`], matching rayon's `fold(..).reduce(..)` idiom.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<T>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        let partials = fold_chunks(&self, |lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                acc = fold_op(acc, self.at(i));
            }
            acc
        });
        Fold { partials }
    }
}

/// Run `chunk(lo, hi)` over parallel chunks, returning the per-chunk
/// results in chunk order.
fn fold_chunks<I, T, F>(it: &I, chunk: F) -> Vec<T>
where
    I: ParallelIterator,
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let n = it.par_len();
    if n == 0 {
        return Vec::new();
    }
    let cap = current_num_threads();
    let t = cap.min(n);
    if t <= 1 {
        return vec![chunk(0, n)];
    }
    let share = (cap / t).max(1);
    let size = n.div_ceil(t);
    let nchunks = n.div_ceil(size);
    let mut out: Vec<MaybeUninit<T>> = (0..nchunks).map(|_| MaybeUninit::uninit()).collect();
    let ptr = OutPtr(out.as_mut_ptr());
    std::thread::scope(|s| {
        let chunk = &chunk;
        let ptr = &ptr;
        for k in 1..nchunks {
            s.spawn(move || {
                let _guard = OverrideGuard::set(share);
                let lo = k * size;
                let hi = (lo + size).min(n);
                // SAFETY: chunk `k` writes only slot `k`.
                unsafe { ptr.write(k, MaybeUninit::new(chunk(lo, hi))) };
            });
        }
        let _guard = OverrideGuard::set(share);
        unsafe { ptr.write(0, MaybeUninit::new(chunk(0, size.min(n)))) };
    });
    // SAFETY: every slot was written exactly once above.
    out.into_iter()
        .map(|s| unsafe { s.assume_init() })
        .collect()
}

/// Result of [`ParallelIterator::fold`]: per-chunk accumulators.
pub struct Fold<T> {
    partials: Vec<T>,
}

impl<T: Send> Fold<T> {
    /// Combine the per-chunk accumulators.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.partials.into_iter().fold(identity(), op)
    }
}

/// Order-preserving parallel collection.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the container from an indexed parallel iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        let n = it.par_len();
        let mut out: Vec<T> = Vec::with_capacity(n);
        let ptr = OutPtr(out.as_mut_ptr());
        let ptr = &ptr;
        run_chunked(n, |lo, hi| {
            for i in lo..hi {
                // SAFETY: chunks write disjoint index ranges into reserved
                // capacity; every index in 0..n is written exactly once.
                unsafe { ptr.write(i, it.at(i)) };
            }
        });
        // SAFETY: all n slots initialized by the loop above.
        unsafe { out.set_len(n) };
        out
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> R {
        (self.f)(self.base.at(i))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> (usize, B::Item) {
        (i, self.base.at(i))
    }
}

/// Parallel slice iterator (`par_iter`).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn at(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel chunk iterator (`par_chunks`).
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn at(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Parallel range iterator (`(a..b).into_par_iter()`).
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    fn at(&self, i: usize) -> usize {
        self.start + i
    }
}

/// `into_par_iter()` entry point.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// `par_iter()` on shared references (slices, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Slice-specific parallel views (`par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksIter { slice: self, size }
    }
}

/// Mutable-slice parallel operations (`par_sort_unstable_by_key`).
pub trait ParallelSliceMut<T: Send> {
    /// Sort by key. The shim sorts sequentially — acceptable for the sort
    /// sizes this workspace produces; the real rayon parallelizes it.
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..100_000).collect();
        let got: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        let want: Vec<u64> = xs.iter().map(|&x| x * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_for_each_covers_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..50_000).map(|_| AtomicUsize::new(0)).collect();
        let href = &hits;
        (0..hits.len()).into_par_iter().for_each(|i| {
            href[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_sum_and_reduce() {
        let xs: Vec<usize> = (0..10_000).collect();
        let total: usize = xs.par_chunks(128).map(|c| c.iter().sum::<usize>()).sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
        let max = xs.par_iter().map(|&x| x).reduce(|| 0, |a, b| a.max(b));
        assert_eq!(max, 9_999);
    }

    #[test]
    fn fold_then_reduce() {
        let odd: Vec<usize> = (0..10_000)
            .into_par_iter()
            .fold(Vec::new, |mut acc, i| {
                if i % 2 == 1 {
                    acc.push(i);
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(odd.len(), 5_000);
        assert!(odd.windows(2).all(|w| w[0] < w[1]), "chunk order preserved");
    }

    #[test]
    fn enumerate_indices_match() {
        let xs = vec![7u32; 5_000];
        let got: Vec<(usize, u32)> = xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        for (i, &(j, x)) in got.iter().enumerate() {
            assert_eq!((i, 7), (j, x));
        }
    }

    #[test]
    fn install_caps_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert!(current_num_threads() >= 1, "override restored");
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_parallelism_respects_install_cap() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            // Workers of a 4-way split get an even share of the cap, so a
            // nested parallel op cannot fan out past it.
            (0..4usize).into_par_iter().for_each(|_| {
                assert!(current_num_threads() <= 4, "worker share exceeds cap");
            });
            // join splits the cap between its branches.
            let (a, b) = join(current_num_threads, current_num_threads);
            assert!(a >= 1 && b >= 1 && a + b <= 4, "join caps: {a} + {b}");
        });
    }

    #[test]
    fn empty_inputs() {
        let xs: Vec<u32> = Vec::new();
        let got: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(got.is_empty());
        let s: usize = (0..0).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 0);
    }
}
