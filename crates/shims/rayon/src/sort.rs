//! Parallel merge sort backing [`crate::ParallelSliceMut::par_sort_unstable_by_key`].
//!
//! Classic fork-join merge sort on the pool: recursive splits via
//! [`crate::join`] down to sequential-sort leaves, then parallel merges
//! that split the larger run at its midpoint and binary-search the
//! matching split in the smaller run. `O(n log n)` work, `O(log^3 n)`
//! span. Not stable (neither is rayon's `par_sort_unstable_by_key`).
//!
//! Elements move through a single scratch buffer with raw copies; no
//! element is ever dropped from the scratch side, so each value is dropped
//! exactly once (in the input slice) even when a user comparison panics
//! mid-merge — the slice is always fully populated, merely unsorted.

use crate::pool::current_registry;
use std::cmp::Ordering;
use std::mem::MaybeUninit;

/// Below this length a slice is sorted sequentially (leaf of the fork
/// tree) and a merge runs as a single two-pointer pass.
const SORT_SEQ_CUTOFF: usize = 4096;

/// Entry point: sort `v` by `cmp` using the current pool.
pub(crate) fn par_merge_sort_by<T, C>(v: &mut [T], cmp: &C)
where
    T: Send,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    let threads = current_registry().size;
    if threads <= 1 || n <= SORT_SEQ_CUTOFF {
        v.sort_unstable_by(cmp);
        return;
    }
    // One leaf per ~2 tasks per thread, but never below the sequential
    // cutoff — deeper recursion is pure overhead.
    let leaf = (n / (threads * 2)).max(SORT_SEQ_CUTOFF);
    let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` contents are never read before being written
    // and never dropped.
    unsafe { buf.set_len(n) };
    sort_rec(v, &mut buf, cmp, leaf);
}

fn sort_rec<T, C>(v: &mut [T], buf: &mut [MaybeUninit<T>], cmp: &C, leaf: usize)
where
    T: Send,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    if n <= leaf {
        v.sort_unstable_by(cmp);
        return;
    }
    let mid = n / 2;
    {
        let (vl, vr) = v.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        crate::join(
            || sort_rec(vl, bl, cmp, leaf),
            || sort_rec(vr, br, cmp, leaf),
        );
    }
    {
        let (vl, vr) = v.split_at_mut(mid);
        par_merge(vl, vr, buf, cmp);
    }
    // SAFETY: `buf[..n]` was fully written by the merge; the copy moves the
    // merged order back while the stale copies in `buf` are abandoned
    // without drops.
    unsafe {
        std::ptr::copy_nonoverlapping(buf.as_ptr() as *const T, v.as_mut_ptr(), n);
    }
}

/// Merge two sorted runs into `out` (`out.len() == a.len() + b.len()`),
/// splitting recursively while both the output and the pool are large
/// enough to profit.
// The runs are read-only but passed as `&mut` so the recursion closures
// are `Send` with only `T: Send` (a `&[T]` capture would demand `T: Sync`,
// which rayon's signature does not).
fn par_merge<T, C>(a: &mut [T], b: &mut [T], out: &mut [MaybeUninit<T>], cmp: &C)
where
    T: Send,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    if out.len() <= SORT_SEQ_CUTOFF {
        return seq_merge(a, b, out, cmp);
    }
    // Split the larger run at its midpoint, binary-search the matching
    // position in the smaller run, and merge the two halves in parallel.
    let a_is_first = a.len() >= b.len();
    let (first, second) = if a_is_first { (a, b) } else { (b, a) };
    let fm = first.len() / 2;
    let pivot = &first[fm];
    let sm = if a_is_first {
        // Elements of b strictly less than the pivot go left (ties stay
        // with a, which sits to the pivot's left in `a`).
        second.partition_point(|x| cmp(x, pivot) == Ordering::Less)
    } else {
        // Roles swapped: a's ties with a b-pivot must also go left.
        second.partition_point(|x| cmp(x, pivot) != Ordering::Greater)
    };
    let (out_l, out_r) = out.split_at_mut(fm + sm);
    let (fl, fr) = first.split_at_mut(fm);
    let (sl, sr) = second.split_at_mut(sm);
    let (al, bl, ar, br) = if a_is_first {
        (fl, sl, fr, sr)
    } else {
        (sl, fl, sr, fr)
    };
    crate::join(
        || par_merge(al, bl, out_l, cmp),
        || par_merge(ar, br, out_r, cmp),
    );
}

/// Sequential two-pointer merge. Ties take from `a` first.
fn seq_merge<T, C>(a: &[T], b: &[T], out: &mut [MaybeUninit<T>], cmp: &C)
where
    C: Fn(&T, &T) -> Ordering,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = if i == a.len() {
            false
        } else if j == b.len() {
            true
        } else {
            cmp(&b[j], &a[i]) != Ordering::Less
        };
        let src = if take_a {
            let s = &a[i];
            i += 1;
            s
        } else {
            let s = &b[j];
            j += 1;
            s
        };
        // SAFETY: a raw copy; ownership of the value stays with the input
        // slice until the post-merge copy-back overwrites it.
        slot.write(unsafe { std::ptr::read(src) });
    }
}
