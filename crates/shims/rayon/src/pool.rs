//! The persistent work-stealing executor behind the shim.
//!
//! One [`Registry`] is a set of worker threads plus an injection queue of
//! active jobs. Workers are spawned lazily on the first parallel call and
//! then live for the registry's lifetime, parked on a condvar whenever the
//! queue is empty — steady-state parallel calls never touch the OS thread
//! API. Two job shapes cover the whole shim surface:
//!
//! * [`ForJob`] — a chunked index-space job. Every participating thread
//!   (the injecting caller included) claims grain-sized chunks from a
//!   shared atomic counter until the range is exhausted, so stragglers are
//!   load-balanced dynamically instead of being assigned a fixed share up
//!   front.
//! * [`JoinTask`] — the second branch of a [`join`]: a one-shot closure
//!   any idle worker may steal. If nobody stole it by the time the caller
//!   finishes the first branch, the caller reclaims and runs it inline;
//!   if it *was* stolen, the caller helps drain other queued jobs before
//!   parking (help-first stealing).
//!
//! Jobs reference closures on the injecting caller's stack. The safety
//! protocol making that sound: the caller never returns before the job is
//! *finished* (every claimed chunk fully executed), and once a job is
//! *exhausted* (all work claimed) the only fields any thread still touches
//! are its atomics — never the borrowed closure.
//!
//! Panics in user code are caught on the executing thread, stashed in the
//! job, and re-thrown from the caller once the job completes, matching
//! real rayon's "propagate to the caller" semantics. A worker that caught
//! a panic stays alive and keeps serving jobs.

use crate::metrics;
use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

/// Machine parallelism, resolved once. `std::thread::available_parallelism`
/// re-reads cgroup limits on every call (tens of microseconds inside a
/// container) — caching it keeps hot-path thread-count reads at
/// nanoseconds.
pub(crate) fn machine_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |x| x.get()))
}

/// `RAYON_NUM_THREADS` override for the global pool, parsed once.
/// Zero, negative, or unparsable values fall back to the machine size,
/// matching real rayon.
fn env_num_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&t| t > 0)
}

/// Thread count the global pool (and unset builders) resolve to.
pub(crate) fn default_pool_size() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| env_num_threads().unwrap_or_else(machine_parallelism))
}

/// A job the pool can execute cooperatively.
pub(crate) trait PoolJob: Send + Sync {
    /// Participate in the job: claim and run work until none is claimable.
    fn run(&self);
    /// All work has been claimed (not necessarily finished); the job can
    /// leave the queue.
    fn exhausted(&self) -> bool;
}

struct QueueState {
    /// Active jobs that may still have claimable work.
    jobs: Vec<Arc<dyn PoolJob>>,
    /// Workers exit when this is set and the queue is drained.
    terminate: bool,
}

/// A persistent pool: `size - 1` lazily-spawned workers plus the calling
/// thread, sharing an injection queue.
pub(crate) struct Registry {
    /// Total participants (workers + the injecting caller).
    pub(crate) size: usize,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    started: Once,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Registry {
    pub(crate) fn new(size: usize) -> Arc<Registry> {
        Arc::new(Registry {
            size: size.max(1),
            state: Mutex::new(QueueState {
                jobs: Vec::new(),
                terminate: false,
            }),
            work_cv: Condvar::new(),
            started: Once::new(),
            workers: Mutex::new(Vec::new()),
        })
    }

    /// Spawn the workers on first use. Idempotent and cheap afterwards.
    fn ensure_started(self: &Arc<Self>) {
        self.started.call_once(|| {
            let mut handles = Vec::with_capacity(self.size.saturating_sub(1));
            for i in 0..self.size.saturating_sub(1) {
                let reg = Arc::clone(self);
                let h = std::thread::Builder::new()
                    .name(format!("rc-rayon-{i}"))
                    .spawn(move || worker_loop(reg))
                    .expect("rayon shim: failed to spawn pool worker");
                handles.push(h);
            }
            *self.workers.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        });
    }

    /// Enqueue a job and wake the workers.
    fn inject(self: &Arc<Self>, job: Arc<dyn PoolJob>) {
        self.ensure_started();
        metrics::bump(&metrics::JOBS_PUBLISHED);
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.jobs.push(job);
        drop(s);
        self.work_cv.notify_all();
    }

    /// Drop a finished job from the queue (workers also prune exhausted
    /// jobs opportunistically; this keeps the queue from holding the last
    /// `Arc` past the caller's stack frame).
    fn remove(&self, job: &Arc<dyn PoolJob>) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.jobs.retain(|j| !Arc::ptr_eq(j, job));
    }

    /// Claim some job with outstanding work, for help-first stealing.
    fn try_claim(&self) -> Option<Arc<dyn PoolJob>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.jobs.retain(|j| !j.exhausted());
        s.jobs.last().cloned()
    }

    /// Tell the workers to exit once the queue drains, and join them.
    /// Called from [`crate::ThreadPool::drop`]; the global registry is
    /// never terminated.
    pub(crate) fn terminate_and_join(&self) {
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.terminate = true;
        }
        self.work_cv.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Worker body: take the newest job with claimable work, participate until
/// it is exhausted, repeat; park on the condvar when the queue is empty.
fn worker_loop(reg: Arc<Registry>) {
    CURRENT_REGISTRY.with(|c| *c.borrow_mut() = Some(Arc::clone(&reg)));
    let mut s = reg.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        s.jobs.retain(|j| !j.exhausted());
        if let Some(job) = s.jobs.last().cloned() {
            drop(s);
            job.run();
            s = reg.state.lock().unwrap_or_else(|e| e.into_inner());
            continue;
        }
        if s.terminate {
            return;
        }
        metrics::bump(&metrics::PARKS);
        s = reg.work_cv.wait(s).unwrap_or_else(|e| e.into_inner());
        metrics::bump(&metrics::UNPARKS);
    }
}

fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(default_pool_size()))
}

thread_local! {
    /// The registry parallel calls on this thread route to: the worker's
    /// own pool on pool threads, the innermost [`crate::ThreadPool::install`]
    /// pool inside `install`, else the global pool.
    static CURRENT_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT_REGISTRY
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global_registry()))
}

/// Number of threads parallel operations started on this thread may use.
pub fn current_num_threads() -> usize {
    CURRENT_REGISTRY
        .with(|c| c.borrow().as_ref().map(|r| r.size))
        .unwrap_or_else(|| global_registry().size)
}

/// Install `reg` as this thread's current registry for the duration of the
/// returned guard (restores the previous registry on drop, also on panic).
pub(crate) struct RegistryGuard {
    prev: Option<Arc<Registry>>,
}

pub(crate) fn install_registry(reg: Arc<Registry>) -> RegistryGuard {
    RegistryGuard {
        prev: CURRENT_REGISTRY.with(|c| c.replace(Some(reg))),
    }
}

impl Drop for RegistryGuard {
    fn drop(&mut self) {
        CURRENT_REGISTRY.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Stash `p` as the job's panic payload if it is the first one.
fn store_panic(slot: &Mutex<Option<Box<dyn Any + Send>>>, p: Box<dyn Any + Send>) {
    let mut g = slot.lock().unwrap_or_else(|e| e.into_inner());
    g.get_or_insert(p);
}

// ---------------------------------------------------------------------------
// Chunked parallel-for jobs
// ---------------------------------------------------------------------------

/// A chunked index-space job: threads claim `[c*grain, (c+1)*grain)` ranges
/// via `next` until all `nchunks` are taken; `completed` counts chunks that
/// finished executing.
struct ForJob {
    /// Points into the injecting caller's stack; see the module-level
    /// safety protocol. A raw pointer (not a transmuted `&'static`) so
    /// that a worker still holding the `Arc` after the caller returns
    /// holds a dead *pointer*, never a dangling *reference* — it is only
    /// dereferenced under a successful chunk claim, which implies the
    /// caller is still blocked in [`run_chunked_grain`].
    body: *const (dyn Fn(usize, usize) + Sync),
    n: usize,
    grain: usize,
    nchunks: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    finished: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `body` points into the injecting caller's stack frame, which
// outlives every dereference (chunk claims only succeed while the caller
// blocks in `run_chunked_grain`); the closure itself is `Sync`.
unsafe impl Send for ForJob {}
unsafe impl Sync for ForJob {}

impl PoolJob for ForJob {
    fn run(&self) {
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= self.nchunks {
                return;
            }
            metrics::bump(&metrics::CHUNKS_CLAIMED);
            let lo = c * self.grain;
            let hi = (lo + self.grain).min(self.n);
            // SAFETY: the claim above succeeded, so the caller is still
            // blocked and the closure is alive.
            let body = unsafe { &*self.body };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(lo, hi))) {
                store_panic(&self.panic, p);
            }
            // AcqRel chain through `completed`: the thread observing the
            // final increment sees every chunk's writes.
            let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.nchunks {
                let mut fin = self.finished.lock().unwrap_or_else(|e| e.into_inner());
                *fin = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.nchunks
    }
}

impl ForJob {
    /// Block until every claimed chunk has finished executing.
    fn wait(&self) {
        let mut fin = self.finished.lock().unwrap_or_else(|e| e.into_inner());
        while !*fin {
            fin = self.done_cv.wait(fin).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Run `body(lo, hi)` over `0..n` in grain-sized chunks claimed dynamically
/// by the current pool. Runs inline when the pool is single-threaded or the
/// range fits one grain. Panics in `body` propagate to the caller after all
/// claimed chunks finish.
pub(crate) fn run_chunked_grain<F: Fn(usize, usize) + Sync>(n: usize, grain: usize, body: F) {
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let reg = current_registry();
    if reg.size <= 1 || n <= grain {
        // Inline path. Still one call per grain-sized chunk: callers like
        // `fold_chunks` allocate one output slot per chunk and rely on
        // every `(lo, hi)` pair being grain-aligned.
        let mut lo = 0;
        while lo < n {
            let hi = (lo + grain).min(n);
            body(lo, hi);
            lo = hi;
        }
        return;
    }
    let bodyref: &(dyn Fn(usize, usize) + Sync) = &body;
    // SAFETY: pure lifetime erasure into a raw pointer; this frame does not
    // return until the job is finished and removed from the queue — see the
    // module-level protocol.
    let bodyref: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(bodyref) };
    let job = Arc::new(ForJob {
        body: bodyref,
        n,
        grain,
        nchunks: n.div_ceil(grain),
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        finished: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });
    let dyn_job: Arc<dyn PoolJob> = job.clone();
    reg.inject(Arc::clone(&dyn_job));
    job.run(); // participate
    job.wait(); // stragglers
    reg.remove(&dyn_job);
    let p = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = p {
        resume_unwind(p);
    }
}

/// Number of chunks [`run_chunked_grain`] will execute for `(n, grain)` —
/// used by callers that allocate per-chunk output slots.
pub(crate) fn chunk_count(n: usize, grain: usize) -> usize {
    n.div_ceil(grain.max(1))
}

/// Default chunk grain for an `n`-element operation on the current pool:
/// about eight claims per thread, so dynamic scheduling can rebalance
/// stragglers without paying a counter round-trip per element.
pub(crate) fn default_grain(n: usize) -> usize {
    (n / (current_num_threads() * 8)).max(1)
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Stack slots a [`JoinTask`] operates on: the second branch's closure and
/// its result.
struct JoinData<B, RB> {
    f: std::cell::UnsafeCell<Option<B>>,
    r: std::cell::UnsafeCell<Option<RB>>,
}

/// The stealable second branch of a [`join`]: a one-shot closure on the
/// caller's stack, reached through a type-erased pointer.
struct JoinTask {
    data: *const (),
    exec: unsafe fn(*const ()),
    taken: AtomicBool,
    finished: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `data` points into the injecting caller's stack frame, which
// outlives the task (the caller blocks until `finished`); `taken` makes the
// closure's execution unique.
unsafe impl Send for JoinTask {}
unsafe impl Sync for JoinTask {}

impl PoolJob for JoinTask {
    fn run(&self) {
        if self.taken.swap(true, Ordering::AcqRel) {
            return;
        }
        metrics::bump(&metrics::JOIN_TASKS_STOLEN);
        self.execute();
    }

    fn exhausted(&self) -> bool {
        self.taken.load(Ordering::Acquire)
    }
}

impl JoinTask {
    /// Run the closure (caller must hold the `taken` claim).
    fn execute(&self) {
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| unsafe { (self.exec)(self.data) })) {
            store_panic(&self.panic, p);
        }
        let mut fin = self.finished.lock().unwrap_or_else(|e| e.into_inner());
        *fin = true;
        self.done_cv.notify_all();
    }

    /// Wait for a stolen task to finish, helping with other queued jobs
    /// instead of parking while any are available (help-first stealing).
    fn wait_done(&self, reg: &Registry) {
        loop {
            if *self.finished.lock().unwrap_or_else(|e| e.into_inner()) {
                return;
            }
            match reg.try_claim() {
                Some(job) => job.run(),
                None => {
                    let mut fin = self.finished.lock().unwrap_or_else(|e| e.into_inner());
                    while !*fin {
                        fin = self.done_cv.wait(fin).unwrap_or_else(|e| e.into_inner());
                    }
                    return;
                }
            }
        }
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. `oper_b` is published to the pool while the caller runs
/// `oper_a`; if no worker stole it, the caller reclaims it and runs it
/// inline. Panics propagate to the caller — if both branches panic, the
/// first branch's payload wins (matching rayon).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let reg = current_registry();
    if reg.size <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    let data = JoinData {
        f: std::cell::UnsafeCell::new(Some(oper_b)),
        r: std::cell::UnsafeCell::new(None),
    };

    /// Monomorphized trampoline recovering the concrete closure type.
    ///
    /// # Safety
    /// `p` must point to a live `JoinData<B, RB>` and be called at most
    /// once (enforced by `taken`).
    unsafe fn call_b<B: FnOnce() -> RB, RB>(p: *const ()) {
        let d = unsafe { &*(p as *const JoinData<B, RB>) };
        let f = unsafe { (*d.f.get()).take().expect("join task executed twice") };
        let out = f();
        unsafe { *d.r.get() = Some(out) };
    }

    let task = Arc::new(JoinTask {
        data: &data as *const JoinData<B, RB> as *const (),
        exec: call_b::<B, RB>,
        taken: AtomicBool::new(false),
        finished: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });
    let dyn_task: Arc<dyn PoolJob> = task.clone();
    reg.inject(Arc::clone(&dyn_task));

    let ra = catch_unwind(AssertUnwindSafe(oper_a));

    if !task.taken.swap(true, Ordering::AcqRel) {
        // Nobody stole b: run it inline on this thread.
        metrics::bump(&metrics::JOIN_TASKS_RECLAIMED);
        task.execute();
    } else {
        task.wait_done(&reg);
    }
    reg.remove(&dyn_task);

    match ra {
        Err(p) => resume_unwind(p),
        Ok(ra) => {
            let p = task.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(p) = p {
                resume_unwind(p);
            }
            // SAFETY: the task is finished; the result slot is no longer
            // written by any thread, and `finished`'s mutex ordered the
            // stealer's write before this read.
            let rb = unsafe { (*data.r.get()).take() }.expect("join: branch produced no result");
            (ra, rb)
        }
    }
}
