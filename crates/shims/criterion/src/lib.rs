//! Workspace-local stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate provides
//! the small API slice the `rc-bench` benchmarks use — [`Criterion`],
//! [`BenchmarkId`], `benchmark_group` / `bench_with_input` /
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a plain wall-clock timer that
//! prints min / median / mean per benchmark. No statistics engine, plots,
//! or baselines; swap the workspace `criterion` dependency back to
//! crates.io for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples after one warm-up run.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<44} min {:>10.3} ms   median {:>10.3} ms   mean {:>10.3} ms   ({} samples)",
        min.as_secs_f64() * 1e3,
        median.as_secs_f64() * 1e3,
        mean.as_secs_f64() * 1e3,
        samples.len(),
    );
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&id.id, &mut b.samples);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            c: self,
        }
    }

    /// No-op, for compatibility with generated mains.
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.c.sample_size,
        };
        f(&mut b, input);
        report(&full, &mut b.samples);
        self
    }

    /// Run one benchmark without an explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.c.sample_size,
        };
        f(&mut b);
        report(&full, &mut b.samples);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("addition", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_macro_and_timers_run() {
        benches();
    }

    #[test]
    fn short_form_macro_compiles() {
        criterion_group!(alt, sample_bench);
        alt();
    }
}
