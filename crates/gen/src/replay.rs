//! Stream replay against any [`DynamicForest`] backend, and the
//! differential-testing harness built on it.
//!
//! [`apply_op`] executes one generated [`StreamOp`] through the backend
//! trait and captures the answer as a comparable [`OpResponse`].
//! [`assert_backends_agree`] drives two backends through the *same*
//! seeded stream and asserts every response matches — update outcomes
//! including exact [`ForestError`]s, and all query families. The one
//! family compared structurally instead of literally is
//! `Representative`: backends may name different (and differently
//! stable) component representatives, so the harness compares the
//! *partition* the ids induce over a probe set (same-representative ⟺
//! same-component must agree across backends and with `connected`).

use crate::stream::{RequestStream, RequestStreamConfig, StreamOp};
use rc_core::{DynamicForest, ForestError, PathSummary, Vertex};

/// The captured answer of one replayed [`StreamOp`].
#[derive(Clone, Debug, PartialEq)]
pub enum OpResponse {
    /// Outcome of a structural/weight/mark update.
    Updated(Result<(), ForestError>),
    /// `Connected`.
    Bool(bool),
    /// `Lca`.
    Vertex(Option<Vertex>),
    /// `PathSum` / `SubtreeSum`.
    Sum(Option<u64>),
    /// `Bottleneck`.
    Extrema(Option<PathSummary>),
    /// `NearestMarked`.
    Near(Option<(u64, Vertex)>),
    /// `Representative` — compared structurally by the harness, never
    /// with `==` across backends.
    Repr(Option<Vertex>),
    /// Op outside the backend trait surface (`Cpt`).
    Skipped,
}

/// Execute one generated op against a backend.
pub fn apply_op<B: DynamicForest>(f: &mut B, op: &StreamOp) -> OpResponse {
    match *op {
        StreamOp::Link { u, v, w } => OpResponse::Updated(f.link(u, v, w)),
        StreamOp::Cut { u, v } => OpResponse::Updated(f.cut(u, v)),
        StreamOp::UpdateEdgeWeight { u, v, w } => OpResponse::Updated(f.set_edge_weight(u, v, w)),
        StreamOp::UpdateVertexWeight { v, w } => OpResponse::Updated(f.set_vertex_weight(v, w)),
        StreamOp::Mark { v } => OpResponse::Updated(f.set_mark(v, true)),
        StreamOp::Unmark { v } => OpResponse::Updated(f.set_mark(v, false)),
        StreamOp::Connected { u, v } => OpResponse::Bool(f.connected(u, v)),
        StreamOp::Representative { v } => OpResponse::Repr(f.representative(v)),
        StreamOp::PathSum { u, v } => OpResponse::Sum(f.path_sum(u, v)),
        StreamOp::SubtreeSum { v, parent } => OpResponse::Sum(f.subtree_sum(v, parent)),
        StreamOp::Lca { u, v, r } => OpResponse::Vertex(f.lca(u, v, r)),
        StreamOp::Bottleneck { u, v } => OpResponse::Extrema(f.path_extrema(u, v)),
        StreamOp::NearestMarked { v } => OpResponse::Near(f.nearest_marked(v)),
        StreamOp::Cpt { .. } => OpResponse::Skipped,
    }
}

/// Tally of one differential run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DifferentialReport {
    /// Ops replayed (including skipped ones).
    pub ops: usize,
    /// Structural/weight/mark updates among them.
    pub updates: usize,
    /// Queries among them.
    pub queries: usize,
    /// Updates that (identically) returned a `ForestError`.
    pub rejected: usize,
    /// Representative partition probes performed.
    pub repr_probes: usize,
}

/// Number of recent vertices kept as representative-partition probes.
const PROBES: usize = 6;

/// Drive two backends through the same seeded request stream and assert
/// every response agrees (see the module docs for the `Representative`
/// contract). Both backends must be empty, over the same vertex count,
/// and enforce the same degree cap — otherwise degree-overflowing links
/// would be accepted by one and rejected by the other.
///
/// Returns the tally; panics (assert) on the first divergence.
pub fn assert_backends_agree<A: DynamicForest, B: DynamicForest>(
    a: &mut A,
    b: &mut B,
    cfg: RequestStreamConfig,
    ops: usize,
) -> DifferentialReport {
    assert_eq!(a.num_vertices(), b.num_vertices(), "vertex counts differ");
    assert_eq!(
        a.max_degree(),
        b.max_degree(),
        "degree caps differ: {} vs {} — overflowing links would diverge",
        a.backend_name(),
        b.backend_name()
    );
    let mut stream = RequestStream::new(cfg);
    let initial = stream.initial_edges();
    assert_eq!(
        a.batch_link(&initial),
        Ok(()),
        "{} initial build",
        a.backend_name()
    );
    assert_eq!(
        b.batch_link(&initial),
        Ok(()),
        "{} initial build",
        b.backend_name()
    );

    let names = (a.backend_name(), b.backend_name());
    let mut report = DifferentialReport::default();
    let mut probes: Vec<Vertex> = Vec::new();
    for i in 0..ops {
        let op = stream.next_op();
        report.ops += 1;
        if op.is_update() {
            report.updates += 1;
        } else {
            report.queries += 1;
        }
        if let StreamOp::Representative { v } = op {
            // Structural comparison over the probe set: presence and the
            // induced same-component partition must match.
            report.repr_probes += 1;
            let mut vs = probes.clone();
            vs.push(v);
            let ra = a.batch_representatives(&vs);
            let rb = b.batch_representatives(&vs);
            for (j, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
                assert_eq!(
                    x.is_some(),
                    y.is_some(),
                    "op {i}: representative presence diverged at probe {j} \
                     ({:?}: {x:?} vs {:?}: {y:?})",
                    names.0,
                    names.1
                );
            }
            for j in 0..vs.len() {
                for k in j + 1..vs.len() {
                    let same_a = ra[j].is_some() && ra[j] == ra[k];
                    let same_b = rb[j].is_some() && rb[j] == rb[k];
                    assert_eq!(
                        same_a, same_b,
                        "op {i}: representative partition diverged on probes \
                         ({}, {}) of {vs:?} ({:?} vs {:?})",
                        vs[j], vs[k], ra, rb
                    );
                    // Cross-check the partition against connectivity.
                    assert_eq!(
                        same_a,
                        a.connected(vs[j], vs[k]),
                        "op {i}: {} representatives disagree with its own \
                         connectivity on ({}, {})",
                        names.0,
                        vs[j],
                        vs[k]
                    );
                }
            }
        } else {
            let ra = apply_op(a, &op);
            let rb = apply_op(b, &op);
            assert_eq!(
                ra, rb,
                "op {i} {op:?}: {} answered {ra:?}, {} answered {rb:?}",
                names.0, names.1
            );
            if let OpResponse::Updated(Err(_)) = ra {
                report.rejected += 1;
            }
        }
        // Refresh the probe pool with vertices this op touched.
        for x in op_vertices(&op) {
            if !probes.contains(&x) {
                probes.push(x);
                if probes.len() > PROBES {
                    probes.remove(0);
                }
            }
        }
    }
    report
}

/// The vertex ids named by an op (probe-pool refresh).
fn op_vertices(op: &StreamOp) -> Vec<Vertex> {
    match *op {
        StreamOp::Link { u, v, .. }
        | StreamOp::Cut { u, v }
        | StreamOp::UpdateEdgeWeight { u, v, .. }
        | StreamOp::Connected { u, v }
        | StreamOp::PathSum { u, v }
        | StreamOp::Bottleneck { u, v } => vec![u, v],
        StreamOp::SubtreeSum { v, parent } => vec![v, parent],
        StreamOp::Lca { u, v, r } => vec![u, v, r],
        StreamOp::UpdateVertexWeight { v, .. }
        | StreamOp::Mark { v }
        | StreamOp::Unmark { v }
        | StreamOp::Representative { v }
        | StreamOp::NearestMarked { v } => vec![v],
        StreamOp::Cpt { ref terminals } => terminals.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForestGenConfig;
    use rc_core::NaiveStdForest;

    fn cfg(n: usize, seed: u64, invalid: f64) -> RequestStreamConfig {
        RequestStreamConfig {
            forest: ForestGenConfig {
                n,
                seed,
                max_weight: 64,
                ..Default::default()
            },
            invalid_frac: invalid,
            ..Default::default()
        }
    }

    #[test]
    fn naive_agrees_with_itself() {
        let mut a = NaiveStdForest::with_max_degree(400, Some(3));
        let mut b = NaiveStdForest::with_max_degree(400, Some(3));
        let r = assert_backends_agree(&mut a, &mut b, cfg(400, 3, 0.1), 2_000);
        assert_eq!(r.ops, 2_000);
        assert!(r.rejected > 0, "invalid_frac must exercise error paths");
        assert!(r.repr_probes > 0);
    }

    #[test]
    fn valid_streams_never_error() {
        // The partitioned stream contract: with invalid_frac = 0, every
        // update the stream emits is valid on a degree-≤3 forest.
        let mut a = NaiveStdForest::with_max_degree(600, Some(3));
        let mut b = NaiveStdForest::with_max_degree(600, Some(3));
        let r = assert_backends_agree(&mut a, &mut b, cfg(600, 11, 0.0), 3_000);
        assert_eq!(r.rejected, 0, "valid stream produced an error");
    }

    #[test]
    #[should_panic(expected = "degree caps differ")]
    fn mismatched_caps_are_rejected_up_front() {
        let mut a = NaiveStdForest::with_max_degree(16, Some(3));
        let mut b = NaiveStdForest::new(16);
        assert_backends_agree(&mut a, &mut b, cfg(16, 1, 0.0), 1);
    }
}
