//! Crash-point generation for durability testing.
//!
//! A crash can cut a write-ahead log at *any* byte: cleanly between
//! frames, inside a frame header, mid-payload, or before the file header
//! is complete. [`truncation_offsets`] turns a file length into a
//! deterministic, seeded set of truncation points that covers all of
//! those regimes — the crash-injection differential harness truncates a
//! copy of the log at each offset, recovers, and checks the recovered
//! state against an oracle replay of the surviving prefix.

use rc_parlay::rng::SplitMix64;

/// Deterministic truncation offsets for a file of `len` bytes whose
/// fixed header occupies the first `header` bytes.
///
/// The set always contains the adversarial boundary cases — `0` (file
/// vanished), a cut *inside* the header, exactly `header` (empty but
/// well-formed log), `len` (clean file, nothing lost) and the last few
/// byte positions (torn final frame) — plus `random` interior offsets
/// drawn uniformly from `(header, len)`, which land mid-frame with
/// overwhelming probability. Offsets are sorted and deduplicated.
pub fn truncation_offsets(len: u64, header: u64, random: usize, seed: u64) -> Vec<u64> {
    let mut offsets = vec![0, len];
    if header > 0 && header <= len {
        offsets.push(header);
        offsets.push(header / 2);
    }
    for back in 1..=3u64 {
        offsets.push(len.saturating_sub(back).max(header.min(len)));
    }
    let mut rng = SplitMix64::new(seed ^ 0xC4A5_11ED);
    if len > header + 1 {
        let span = len - header - 1;
        for _ in 0..random {
            offsets.push(header + 1 + rng.next_below(span));
        }
    }
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_cover_boundaries_and_interior() {
        let len = 10_000;
        let header = 8;
        let offs = truncation_offsets(len, header, 16, 42);
        assert!(offs.contains(&0));
        assert!(offs.contains(&(header / 2)), "mid-header cut");
        assert!(offs.contains(&header), "empty-log cut");
        assert!(offs.contains(&len), "clean-file cut");
        assert!(offs.contains(&(len - 1)), "torn last byte");
        assert!(offs.iter().all(|&o| o <= len));
        assert!(offs.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let interior = offs.iter().filter(|&&o| o > header && o < len - 3).count();
        assert!(interior >= 12, "random interior cuts present: {interior}");
    }

    #[test]
    fn offsets_are_deterministic_by_seed() {
        assert_eq!(
            truncation_offsets(5_000, 8, 8, 7),
            truncation_offsets(5_000, 8, 8, 7)
        );
        assert_ne!(
            truncation_offsets(5_000, 8, 8, 7),
            truncation_offsets(5_000, 8, 8, 8)
        );
    }

    #[test]
    fn degenerate_lengths_do_not_panic() {
        assert_eq!(truncation_offsets(0, 8, 4, 1), vec![0]);
        let offs = truncation_offsets(8, 8, 4, 1);
        assert!(offs.contains(&8) && offs.contains(&0));
    }
}
