//! Seeded request-stream generation for the `rc-serve` coalescer and its
//! load drivers.
//!
//! A [`RequestStream`] turns the §6.1 chain forest into an endless,
//! deterministic stream of single-shot operations ([`StreamOp`]): structural
//! updates (link/cut of *connector* edges, weight updates), mark churn, and
//! the seven query families, drawn from a configurable [`OpMix`] with
//! Zipf-skewed vertex choice and steady or bursty arrival pacing.
//!
//! # Partitioning (conflict-free concurrency)
//!
//! Load drivers run one stream per client thread via
//! [`RequestStream::new_partitioned`]. Every partition derives the *same*
//! initial forest (chains + one fixed, degree-capped attachment target per
//! connector, all deterministic from the seed), but only toggles the
//! connectors it owns (`chain % parts == part`). Because a connector's
//! endpoints are fixed at generation time and each vertex's total degree —
//! chain edges plus every connector that can ever attach to it — is capped
//! at 3, re-inserting any subset of connectors is always valid on a
//! degree-≤3 forest regardless of how concurrent partitions interleave.
//! This mirrors the paper's update streams ("deleting and re-inserting
//! only connector edges") while keeping error responses out of throughput
//! measurements. Set `invalid_frac > 0` to deliberately mix in malformed
//! operations and exercise the error paths instead.

use crate::{ForestGenConfig, GeneratedForest};
use rc_parlay::rng::SplitMix64;

/// Default number of terminals per compressed-path-tree operation.
pub const DEFAULT_CPT_TERMINALS: usize = 8;

/// One single-shot operation of a request stream, in the shuffled vertex
/// id space of the generated forest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// Insert edge `{u, v}` with weight `w`.
    Link { u: u32, v: u32, w: u64 },
    /// Delete edge `{u, v}`.
    Cut { u: u32, v: u32 },
    /// Set the weight of existing edge `{u, v}` to `w`.
    UpdateEdgeWeight { u: u32, v: u32, w: u64 },
    /// Set the weight of vertex `v` to `w`.
    UpdateVertexWeight { v: u32, w: u64 },
    /// Mark vertex `v` (nearest-marked queries).
    Mark { v: u32 },
    /// Unmark vertex `v`.
    Unmark { v: u32 },
    /// Are `u` and `v` in the same tree?
    Connected { u: u32, v: u32 },
    /// Component representative of `v`.
    Representative { v: u32 },
    /// Sum of edge + vertex weights on the `u..v` path (edge weights only).
    PathSum { u: u32, v: u32 },
    /// Subtree total at `v` away from neighbor `parent`.
    SubtreeSum { v: u32, parent: u32 },
    /// LCA of `u` and `v` with respect to root `r`.
    Lca { u: u32, v: u32, r: u32 },
    /// Lightest/heaviest edge on the `u..v` path.
    Bottleneck { u: u32, v: u32 },
    /// Nearest marked vertex to `v`.
    NearestMarked { v: u32 },
    /// Compressed path tree over `terminals`.
    Cpt { terminals: Vec<u32> },
}

impl StreamOp {
    /// Is this a structural or weight update (vs a read-only query)?
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            StreamOp::Link { .. }
                | StreamOp::Cut { .. }
                | StreamOp::UpdateEdgeWeight { .. }
                | StreamOp::UpdateVertexWeight { .. }
                | StreamOp::Mark { .. }
                | StreamOp::Unmark { .. }
        )
    }
}

/// Relative weights of each operation kind. Weights need not sum to 1;
/// zero disables a kind.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    pub link: f64,
    pub cut: f64,
    pub update_edge_weight: f64,
    pub update_vertex_weight: f64,
    pub mark: f64,
    pub unmark: f64,
    pub connected: f64,
    pub representative: f64,
    pub path_sum: f64,
    pub subtree_sum: f64,
    pub lca: f64,
    pub bottleneck: f64,
    pub nearest_marked: f64,
    pub cpt: f64,
}

impl OpMix {
    /// Mostly queries with a trickle of updates — the serving sweet spot.
    pub fn query_heavy() -> Self {
        OpMix {
            link: 2.0,
            cut: 2.0,
            update_edge_weight: 2.0,
            update_vertex_weight: 2.0,
            mark: 1.0,
            unmark: 1.0,
            connected: 25.0,
            representative: 10.0,
            path_sum: 25.0,
            subtree_sum: 10.0,
            lca: 10.0,
            bottleneck: 5.0,
            nearest_marked: 5.0,
            cpt: 0.0,
        }
    }

    /// Heavy structural churn, queries in the minority.
    pub fn update_heavy() -> Self {
        OpMix {
            link: 20.0,
            cut: 20.0,
            update_edge_weight: 10.0,
            update_vertex_weight: 10.0,
            mark: 5.0,
            unmark: 5.0,
            connected: 10.0,
            representative: 2.0,
            path_sum: 10.0,
            subtree_sum: 3.0,
            lca: 2.0,
            bottleneck: 2.0,
            nearest_marked: 1.0,
            cpt: 0.0,
        }
    }

    /// Every family represented, updates ≈ 1/3 of traffic.
    pub fn balanced() -> Self {
        OpMix {
            link: 6.0,
            cut: 6.0,
            update_edge_weight: 4.0,
            update_vertex_weight: 4.0,
            mark: 2.0,
            unmark: 2.0,
            connected: 12.0,
            representative: 6.0,
            path_sum: 12.0,
            subtree_sum: 8.0,
            lca: 8.0,
            bottleneck: 6.0,
            nearest_marked: 4.0,
            cpt: 1.0,
        }
    }

    fn weights(&self) -> [f64; 14] {
        [
            self.link,
            self.cut,
            self.update_edge_weight,
            self.update_vertex_weight,
            self.mark,
            self.unmark,
            self.connected,
            self.representative,
            self.path_sum,
            self.subtree_sum,
            self.lca,
            self.bottleneck,
            self.nearest_marked,
            self.cpt,
        ]
    }
}

impl Default for OpMix {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Arrival pacing of an open-loop driver (ignored by closed-loop ones).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Submit as fast as responses come back (delays are all zero).
    Closed,
    /// Poisson arrivals with the given mean inter-arrival gap.
    Steady { mean_gap_ns: u64 },
    /// `burst` back-to-back operations, then one long gap.
    Bursty { burst: usize, gap_ns: u64 },
}

/// Request-stream parameters.
#[derive(Clone, Debug)]
pub struct RequestStreamConfig {
    /// Underlying chain forest (n, chain distribution, seed, ...).
    pub forest: ForestGenConfig,
    /// Operation mix.
    pub mix: OpMix,
    /// Zipf exponent for query-vertex choice: 0 = uniform, ~1 = classic
    /// web-like skew.
    pub zipf_exponent: f64,
    /// Arrival pacing for open-loop drivers.
    pub arrival: Arrival,
    /// Probability of emitting a deliberately unvalidated random op
    /// (possibly out of range / missing edge) to exercise error paths.
    pub invalid_frac: f64,
    /// Terminals per `Cpt` operation.
    pub cpt_terminals: usize,
}

impl Default for RequestStreamConfig {
    fn default() -> Self {
        RequestStreamConfig {
            forest: ForestGenConfig::default(),
            mix: OpMix::default(),
            zipf_exponent: 0.8,
            arrival: Arrival::Closed,
            invalid_frac: 0.0,
            cpt_terminals: DEFAULT_CPT_TERMINALS,
        }
    }
}

/// Zipf sampler over `1..=n` by rejection inversion (Hörmann), `O(1)` per
/// sample and table-free. Exponent 0 degenerates to the uniform
/// distribution.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    e: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Sampler over `1..=n` with exponent `e >= 0`.
    pub fn new(n: u64, e: f64) -> Self {
        assert!(n >= 1);
        assert!(e >= 0.0);
        let h = |x: f64| Self::h_integral(x, e);
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - Self::h_integral_inv(h(2.5) - Self::h(2.0, e), e);
        Zipf { n, e, h_x1, h_n, s }
    }

    fn h(x: f64, e: f64) -> f64 {
        x.powf(-e)
    }

    fn h_integral(x: f64, e: f64) -> f64 {
        let log_x = x.ln();
        helper1((1.0 - e) * log_x) * log_x
    }

    fn h_integral_inv(x: f64, e: f64) -> f64 {
        let mut t = x * (1.0 - e);
        if t < -1.0 {
            t = -1.0; // guard against floating-point round-off
        }
        (helper2(t) * x).exp()
    }

    /// Draw one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inv(u, self.e);
            let k = x.clamp(1.0, self.n as f64).round() as u64;
            let kf = k as f64;
            if kf - x <= self.s || u >= Self::h_integral(kf + 0.5, self.e) - Self::h(kf, self.e) {
                return k;
            }
        }
    }
}

/// `(exp(x) - 1) / x`, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

/// `log(1 + x) / x`, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// One connector edge with a fixed, degree-capped target.
#[derive(Clone, Copy, Debug)]
struct Connector {
    /// Shuffled id of the chain head.
    head: u32,
    /// Shuffled id of the fixed attachment vertex (earlier chain).
    target: u32,
}

/// A deterministic, endless stream of [`StreamOp`]s over one generated
/// forest; see the module docs for the partitioning contract.
pub struct RequestStream {
    cfg: RequestStreamConfig,
    rng: SplitMix64,
    zipf: Zipf,
    cum_mix: [f64; 14],
    /// All connectors (index = chain id; 0 is a placeholder).
    connectors: Vec<Option<Connector>>,
    /// Chain-internal edges, for subtree / edge-weight targets.
    chain_edges: Vec<(u32, u32, u64)>,
    /// Owned connector ids currently attached / detached.
    attached: Vec<u32>,
    detached: Vec<u32>,
    burst_left: usize,
}

impl RequestStream {
    /// A single unpartitioned stream (owns every connector).
    pub fn new(cfg: RequestStreamConfig) -> Self {
        Self::new_partitioned(cfg, 0, 1)
    }

    /// Partition `part` of `parts`: identical initial forest, updates
    /// restricted to connectors of chains `c % parts == part`.
    pub fn new_partitioned(cfg: RequestStreamConfig, part: usize, parts: usize) -> Self {
        assert!(parts >= 1 && part < parts);
        let g = GeneratedForest::generate(cfg.forest);
        // Deterministic connector targets with a global degree cap of 3:
        // every partition replays this exact loop, so all partitions agree
        // on each connector's endpoints and on which connectors exist.
        let mut init_rng = SplitMix64::new(cfg.forest.seed ^ 0x5EED_57EE);
        let n = cfg.forest.n;
        let mut deg = vec![0u8; n];
        let mut chain_edges: Vec<(u32, u32, u64)> = Vec::new();
        for &(start, len) in &g.chains {
            for i in 0..len.saturating_sub(1) {
                let (a, b) = (g.shuffled_id(start + i), g.shuffled_id(start + i + 1));
                deg[a as usize] += 1;
                deg[b as usize] += 1;
                let w = 1 + init_rng.next_below(cfg.forest.max_weight.max(2) - 1);
                chain_edges.push((a, b, w));
            }
        }
        let mut connectors: Vec<Option<Connector>> = vec![None];
        for c in 1..g.chains.len() {
            let head = g.shuffled_id(g.chains[c].0);
            let mut placed = None;
            for _ in 0..8 {
                let tc = if init_rng.next_f64() < cfg.forest.ln_prob || c == 1 {
                    c - 1
                } else {
                    init_rng.next_below((c - 1) as u64) as usize
                };
                let (tstart, tlen) = g.chains[tc];
                let target = g.shuffled_id(tstart + init_rng.next_below(tlen as u64) as u32);
                if deg[head as usize] < 3 && deg[target as usize] < 3 {
                    deg[head as usize] += 1;
                    deg[target as usize] += 1;
                    placed = Some(Connector { head, target });
                    break;
                }
            }
            connectors.push(placed);
        }
        let attached: Vec<u32> = (1..connectors.len())
            .filter(|&c| c % parts == part && connectors[c].is_some())
            .map(|c| c as u32)
            .collect();
        let cum_mix = {
            let w = cfg.mix.weights();
            let mut cum = [0.0f64; 14];
            let mut acc = 0.0;
            for (i, &x) in w.iter().enumerate() {
                assert!(x >= 0.0, "negative op-mix weight");
                acc += x;
                cum[i] = acc;
            }
            assert!(acc > 0.0, "op mix must have at least one positive weight");
            cum
        };
        let zipf = Zipf::new(n as u64, cfg.zipf_exponent);
        // Per-partition op randomness diverges; initialization above is
        // shared.
        let rng = SplitMix64::new(cfg.forest.seed ^ (0x9E37_79B9 * (part as u64 + 1)));
        RequestStream {
            cfg,
            rng,
            zipf,
            cum_mix,
            connectors,
            chain_edges,
            attached,
            detached: Vec::new(),
            burst_left: 0,
        }
    }

    /// The initial edge set (chain edges + every placed connector),
    /// identical across partitions — build the served forest from this.
    pub fn initial_edges(&self) -> Vec<(u32, u32, u64)> {
        let mut out = self.chain_edges.clone();
        let mut rng = SplitMix64::new(self.cfg.forest.seed ^ 0xC0_FFEE);
        for conn in self.connectors.iter().flatten() {
            let w = 1 + rng.next_below(self.cfg.forest.max_weight.max(2) - 1);
            out.push((conn.head, conn.target, w));
        }
        out
    }

    /// Number of vertices of the underlying forest.
    pub fn num_vertices(&self) -> usize {
        self.cfg.forest.n
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RequestStreamConfig {
        &self.cfg
    }

    /// A Zipf-skewed vertex id.
    pub fn skewed_vertex(&mut self) -> u32 {
        (self.zipf.sample(&mut self.rng) - 1) as u32
    }

    fn weight(&mut self) -> u64 {
        1 + self.rng.next_below(self.cfg.forest.max_weight.max(2) - 1)
    }

    /// Draw the next operation. Never returns structurally invalid updates
    /// unless `invalid_frac` fires (link/cut toggle owned connectors with
    /// fixed endpoints; weight/mark targets always exist).
    pub fn next_op(&mut self) -> StreamOp {
        if self.cfg.invalid_frac > 0.0 && self.rng.next_f64() < self.cfg.invalid_frac {
            return self.invalid_op();
        }
        let total = self.cum_mix[13];
        let mut pick = self.rng.next_f64() * total;
        if pick >= total {
            pick = 0.0;
        }
        let kind = self.cum_mix.iter().position(|&c| pick < c).unwrap_or(13);
        match kind {
            0 => self.link_op(),
            1 => self.cut_op(),
            2 => self.edge_weight_op(),
            3 => StreamOp::UpdateVertexWeight {
                v: self.skewed_vertex(),
                w: self.weight(),
            },
            4 => StreamOp::Mark {
                v: self.skewed_vertex(),
            },
            5 => StreamOp::Unmark {
                v: self.skewed_vertex(),
            },
            6 => StreamOp::Connected {
                u: self.skewed_vertex(),
                v: self.skewed_vertex(),
            },
            7 => StreamOp::Representative {
                v: self.skewed_vertex(),
            },
            8 => StreamOp::PathSum {
                u: self.skewed_vertex(),
                v: self.skewed_vertex(),
            },
            9 => self.subtree_op(),
            10 => StreamOp::Lca {
                u: self.skewed_vertex(),
                v: self.skewed_vertex(),
                r: self.skewed_vertex(),
            },
            11 => StreamOp::Bottleneck {
                u: self.skewed_vertex(),
                v: self.skewed_vertex(),
            },
            12 => StreamOp::NearestMarked {
                v: self.skewed_vertex(),
            },
            _ => {
                let k = self.cfg.cpt_terminals.max(2);
                let terminals = (0..k).map(|_| self.skewed_vertex()).collect();
                StreamOp::Cpt { terminals }
            }
        }
    }

    /// Draw `k` operations.
    pub fn ops(&mut self, k: usize) -> Vec<StreamOp> {
        (0..k).map(|_| self.next_op()).collect()
    }

    /// Inter-arrival delay preceding the next op, per the configured
    /// [`Arrival`] process (0 for closed-loop).
    pub fn next_delay_ns(&mut self) -> u64 {
        match self.cfg.arrival {
            Arrival::Closed => 0,
            Arrival::Steady { mean_gap_ns } => {
                // Exponential inter-arrival (Poisson process).
                let u = self.rng.next_f64().max(1e-12);
                (-u.ln() * mean_gap_ns as f64) as u64
            }
            Arrival::Bursty { burst, gap_ns } => {
                if self.burst_left == 0 {
                    self.burst_left = burst.max(1);
                    gap_ns
                } else {
                    self.burst_left -= 1;
                    0
                }
            }
        }
    }

    fn link_op(&mut self) -> StreamOp {
        if self.detached.is_empty() {
            return self.cut_op();
        }
        let i = self.rng.next_below(self.detached.len() as u64) as usize;
        let c = self.detached.swap_remove(i);
        self.attached.push(c);
        let conn = self.connectors[c as usize].expect("owned connectors exist");
        StreamOp::Link {
            u: conn.head,
            v: conn.target,
            w: self.weight(),
        }
    }

    fn cut_op(&mut self) -> StreamOp {
        if self.attached.is_empty() {
            if self.detached.is_empty() {
                // No owned connectors at all: degrade to a weight update.
                return StreamOp::UpdateVertexWeight {
                    v: self.skewed_vertex(),
                    w: self.weight(),
                };
            }
            return self.link_op();
        }
        let i = self.rng.next_below(self.attached.len() as u64) as usize;
        let c = self.attached.swap_remove(i);
        self.detached.push(c);
        let conn = self.connectors[c as usize].expect("owned connectors exist");
        StreamOp::Cut {
            u: conn.head,
            v: conn.target,
        }
    }

    fn edge_weight_op(&mut self) -> StreamOp {
        if self.chain_edges.is_empty() {
            return StreamOp::UpdateVertexWeight {
                v: self.skewed_vertex(),
                w: self.weight(),
            };
        }
        let i = self.rng.next_below(self.chain_edges.len() as u64) as usize;
        let (u, v, _) = self.chain_edges[i];
        StreamOp::UpdateEdgeWeight {
            u,
            v,
            w: self.weight(),
        }
    }

    fn subtree_op(&mut self) -> StreamOp {
        if self.chain_edges.is_empty() {
            return StreamOp::Representative {
                v: self.skewed_vertex(),
            };
        }
        let i = self.rng.next_below(self.chain_edges.len() as u64) as usize;
        let (u, v, _) = self.chain_edges[i];
        if self.rng.next_f64() < 0.5 {
            StreamOp::SubtreeSum { v: u, parent: v }
        } else {
            StreamOp::SubtreeSum { v, parent: u }
        }
    }

    /// A deliberately unvalidated op: random ids, possibly out of range.
    fn invalid_op(&mut self) -> StreamOp {
        let n = self.cfg.forest.n as u64;
        let w = self.weight();
        // ~20% out of range.
        let any = |rng: &mut SplitMix64| rng.next_below(n + n / 4 + 2) as u32;
        match self.rng.next_below(6) {
            0 => StreamOp::Link {
                u: any(&mut self.rng),
                v: any(&mut self.rng),
                w,
            },
            1 => StreamOp::Cut {
                u: any(&mut self.rng),
                v: any(&mut self.rng),
            },
            2 => StreamOp::UpdateEdgeWeight {
                u: any(&mut self.rng),
                v: any(&mut self.rng),
                w,
            },
            3 => StreamOp::PathSum {
                u: any(&mut self.rng),
                v: any(&mut self.rng),
            },
            4 => StreamOp::SubtreeSum {
                v: any(&mut self.rng),
                parent: any(&mut self.rng),
            },
            _ => StreamOp::Mark {
                v: any(&mut self.rng),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> RequestStreamConfig {
        RequestStreamConfig {
            forest: ForestGenConfig {
                n: 2_000,
                seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn initial_forest_is_valid_and_degree_capped() {
        let s = RequestStream::new(small_cfg(11));
        let edges = s.initial_edges();
        let n = s.num_vertices();
        let mut deg = vec![0u32; n];
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while p[r as usize] != r {
                r = p[r as usize];
            }
            r
        }
        for &(u, v, w) in &edges {
            assert!(u != v && (u as usize) < n && (v as usize) < n && w >= 1);
            deg[u as usize] += 1;
            deg[v as usize] += 1;
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            assert_ne!(ru, rv, "cycle at ({u},{v})");
            parent[ru as usize] = rv;
        }
        assert!(deg.iter().all(|&d| d <= 3), "degree cap violated");
    }

    #[test]
    fn partitions_agree_on_initial_edges_and_disjoint_updates() {
        let parts = 4;
        let mut streams: Vec<RequestStream> = (0..parts)
            .map(|p| RequestStream::new_partitioned(small_cfg(23), p, parts))
            .collect();
        let e0 = streams[0].initial_edges();
        for s in &streams[1..] {
            assert_eq!(s.initial_edges(), e0, "partitions see one forest");
        }
        // Collect each partition's touched structural edges; they must be
        // pairwise disjoint.
        let mut seen: std::collections::HashMap<(u32, u32), usize> = Default::default();
        for (p, s) in streams.iter_mut().enumerate() {
            for op in s.ops(2_000) {
                let e = match op {
                    StreamOp::Link { u, v, .. } | StreamOp::Cut { u, v } => (u.min(v), u.max(v)),
                    _ => continue,
                };
                let owner = *seen.entry(e).or_insert(p);
                assert_eq!(owner, p, "edge {e:?} touched by two partitions");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn stream_is_deterministic_by_seed() {
        let mut a = RequestStream::new(small_cfg(5));
        let mut b = RequestStream::new(small_cfg(5));
        assert_eq!(a.ops(500), b.ops(500));
        let mut c = RequestStream::new(small_cfg(6));
        assert_ne!(a.ops(500), c.ops(500));
    }

    #[test]
    fn link_cut_toggle_is_consistent() {
        // Replaying the stream's links/cuts against a set never double-adds
        // or double-removes.
        let mut s = RequestStream::new(RequestStreamConfig {
            mix: OpMix::update_heavy(),
            ..small_cfg(77)
        });
        let mut present: std::collections::HashSet<(u32, u32)> = s
            .initial_edges()
            .iter()
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        for op in s.ops(5_000) {
            match op {
                StreamOp::Link { u, v, .. } => {
                    assert!(present.insert((u.min(v), u.max(v))), "double link")
                }
                StreamOp::Cut { u, v } => {
                    assert!(present.remove(&(u.min(v), u.max(v))), "cut of absent edge")
                }
                StreamOp::UpdateEdgeWeight { u, v, .. } => {
                    assert!(present.contains(&(u.min(v), u.max(v))), "update of absent")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn zipf_skews_and_uniform_covers() {
        let mut rng = SplitMix64::new(3);
        let z = Zipf::new(1_000, 1.0);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..20_000 {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        assert!(
            counts[0] > counts[99] && counts[0] > 500,
            "rank 1 dominates"
        );
        let u = Zipf::new(1_000, 0.0);
        let mut lo = 0u32;
        for _ in 0..20_000 {
            if u.sample(&mut rng) <= 500 {
                lo += 1;
            }
        }
        let frac = lo as f64 / 20_000.0;
        assert!((0.45..0.55).contains(&frac), "uniform split, got {frac}");
    }

    #[test]
    fn arrival_processes() {
        let mut s = RequestStream::new(RequestStreamConfig {
            arrival: Arrival::Bursty {
                burst: 10,
                gap_ns: 1_000,
            },
            ..small_cfg(1)
        });
        let delays: Vec<u64> = (0..44).map(|_| s.next_delay_ns()).collect();
        assert_eq!(
            delays.iter().filter(|&&d| d > 0).count(),
            4,
            "one gap per burst"
        );
        let mut st = RequestStream::new(RequestStreamConfig {
            arrival: Arrival::Steady { mean_gap_ns: 500 },
            ..small_cfg(2)
        });
        let mean: f64 = (0..5_000).map(|_| st.next_delay_ns() as f64).sum::<f64>() / 5_000.0;
        assert!((250.0..1_000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn zipf_samples_in_range_across_parameter_grid() {
        // Property: every sample lands in 1..=n for any (n, exponent),
        // including the degenerate n = 1 and uniform e = 0 corners.
        let mut rng = SplitMix64::new(0x21FF);
        for n in [1u64, 2, 3, 10, 1_000, 1_000_000] {
            for e in [0.0, 0.2, 0.5, 0.99, 1.0, 1.5, 3.0] {
                let z = Zipf::new(n, e);
                for _ in 0..2_000 {
                    let s = z.sample(&mut rng);
                    assert!(
                        (1..=n).contains(&s),
                        "Zipf(n={n}, e={e}) emitted {s} out of range"
                    );
                }
            }
        }
    }

    #[test]
    fn zipf_skew_is_monotone_in_the_exponent() {
        // Property: the mass of the top ranks grows with the exponent.
        let n = 1_000u64;
        let trials = 30_000;
        let mut head_mass = Vec::new();
        for (i, e) in [0.0, 0.5, 1.0, 1.5, 2.0].into_iter().enumerate() {
            // Independent deterministic streams per exponent.
            let mut rng = SplitMix64::new(0xABC0 + i as u64);
            let z = Zipf::new(n, e);
            let hits = (0..trials).filter(|_| z.sample(&mut rng) <= 10).count();
            head_mass.push(hits as f64 / trials as f64);
        }
        for w in head_mass.windows(2) {
            assert!(
                w[1] > w[0] * 1.05,
                "top-10 mass must grow with the exponent: {head_mass:?}"
            );
        }
        // And the uniform corner is calibrated: P(rank <= 10) = 1%.
        assert!(
            (0.005..0.02).contains(&head_mass[0]),
            "uniform head mass {}",
            head_mass[0]
        );
    }

    #[test]
    fn invalid_frac_accounting_matches_configuration() {
        // The invalid path draws ids uniformly over [0, n + n/4 + 2), so
        // ~1/5 of drawn ids are out of range; 5 of its 6 op shapes name
        // two ids, one names one. Expected out-of-range op rate:
        //   frac * (5 * (1 - 0.8^2) + 1 * 0.2) / 6 ≈ frac * 0.333.
        // Valid ops never name out-of-range ids, so the observed rate
        // accounts for the configured fraction.
        let n = 4_000usize;
        let total = 6_000usize;
        for (seed, frac) in [(1u64, 0.0f64), (2, 0.3), (3, 0.8)] {
            let mut s = RequestStream::new(RequestStreamConfig {
                invalid_frac: frac,
                forest: ForestGenConfig {
                    n,
                    seed,
                    ..Default::default()
                },
                ..Default::default()
            });
            let mut oor = 0usize;
            for op in s.ops(total) {
                let ids: Vec<u32> = match op {
                    StreamOp::Link { u, v, .. }
                    | StreamOp::Cut { u, v }
                    | StreamOp::UpdateEdgeWeight { u, v, .. }
                    | StreamOp::Connected { u, v }
                    | StreamOp::PathSum { u, v }
                    | StreamOp::Bottleneck { u, v } => vec![u, v],
                    StreamOp::SubtreeSum { v, parent } => vec![v, parent],
                    StreamOp::Lca { u, v, r } => vec![u, v, r],
                    StreamOp::UpdateVertexWeight { v, .. }
                    | StreamOp::Mark { v }
                    | StreamOp::Unmark { v }
                    | StreamOp::Representative { v }
                    | StreamOp::NearestMarked { v } => vec![v],
                    StreamOp::Cpt { terminals } => terminals,
                };
                if ids.iter().any(|&x| x as usize >= n) {
                    oor += 1;
                }
            }
            let expect = frac * 0.333;
            let got = oor as f64 / total as f64;
            if frac == 0.0 {
                assert_eq!(oor, 0, "valid streams never leave the id range");
            } else {
                assert!(
                    (expect * 0.6..expect * 1.5).contains(&got),
                    "invalid_frac {frac}: out-of-range rate {got:.4}, expected ≈{expect:.4}"
                );
            }
        }
    }

    #[test]
    fn invalid_frac_produces_out_of_range_ops() {
        let mut s = RequestStream::new(RequestStreamConfig {
            invalid_frac: 0.5,
            ..small_cfg(9)
        });
        let n = s.num_vertices() as u32;
        let mut oor = 0;
        for op in s.ops(2_000) {
            let ids: Vec<u32> = match op {
                StreamOp::Link { u, v, .. }
                | StreamOp::Cut { u, v }
                | StreamOp::UpdateEdgeWeight { u, v, .. } => vec![u, v],
                StreamOp::Mark { v } => vec![v],
                _ => vec![],
            };
            if ids.iter().any(|&x| x >= n) {
                oor += 1;
            }
        }
        assert!(oor > 20, "expected some out-of-range ops, got {oor}");
    }
}
