//! Randomized forest generation for streaming experiments (paper §6.1).
//!
//! The generator connects chunks of contiguous vertices into linked-list
//! *chains*; chain lengths follow a configurable distribution (constant,
//! uniform, geometric, exponential) around a mean. The leftmost
//! (*connector*) edge of each chain attaches either to the chain
//! immediately to its left (probability `ln`) or to a uniformly random
//! earlier chain — `ln` near 1 produces very deep trees, near 0 shallow
//! bushy ones (Fig. 5). Deleting/re-inserting only connector edges yields
//! the paper's update streams while "some structure of distinct forests is
//! maintained". All vertex ids are finally shuffled through a random
//! bijection.

use rc_parlay::rng::SplitMix64;
use rc_parlay::shuffle::random_permutation;

mod crash;
mod replay;
mod stream;
pub use crash::truncation_offsets;
pub use replay::{apply_op, assert_backends_agree, DifferentialReport, OpResponse};
pub use stream::{
    Arrival, OpMix, RequestStream, RequestStreamConfig, StreamOp, Zipf, DEFAULT_CPT_TERMINALS,
};

/// Chain-length distributions of §6.1.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ChainDist {
    /// Every chain has exactly `mean` vertices.
    Constant,
    /// Uniform on `[1, 2·mean)`.
    Uniform,
    /// Geometric with success probability `1/mean`.
    Geometric,
    /// Exponential with rate `1/mean` (rounded up).
    Exponential,
}

/// Generator parameters.
#[derive(Copy, Clone, Debug)]
pub struct ForestGenConfig {
    /// Number of vertices.
    pub n: usize,
    /// Mean chain length (≥ 1; the paper uses 1.1, 10, 1000, …).
    pub mean_chain: f64,
    /// Length distribution.
    pub dist: ChainDist,
    /// Probability a connector attaches to the immediately preceding
    /// chain (deep trees when close to 1).
    pub ln_prob: f64,
    /// Largest edge weight (exclusive); weights are `1..max_weight`.
    pub max_weight: u64,
    /// PRNG seed — generation is fully deterministic.
    pub seed: u64,
}

impl Default for ForestGenConfig {
    fn default() -> Self {
        ForestGenConfig {
            n: 1000,
            mean_chain: 10.0,
            dist: ChainDist::Geometric,
            ln_prob: 0.5,
            max_weight: 1_000,
            seed: 42,
        }
    }
}

/// The four named configurations used across the evaluation (DESIGN §5).
pub fn paper_configs(n: usize, seed: u64) -> Vec<(&'static str, ForestGenConfig)> {
    vec![
        (
            "C1 shallow-short",
            ForestGenConfig {
                n,
                mean_chain: 10.0,
                dist: ChainDist::Geometric,
                ln_prob: 0.05,
                seed,
                ..Default::default()
            },
        ),
        (
            "C2 deep-short",
            ForestGenConfig {
                n,
                mean_chain: 10.0,
                dist: ChainDist::Geometric,
                ln_prob: 0.95,
                seed,
                ..Default::default()
            },
        ),
        (
            "C3 long-chains",
            ForestGenConfig {
                n,
                mean_chain: 1000.0,
                dist: ChainDist::Uniform,
                ln_prob: 0.5,
                seed,
                ..Default::default()
            },
        ),
        (
            "C4 tiny-trees",
            ForestGenConfig {
                n,
                mean_chain: 1.1,
                dist: ChainDist::Geometric,
                ln_prob: 0.5,
                seed,
                ..Default::default()
            },
        ),
    ]
}

/// A generated forest plus the machinery for connector update streams.
pub struct GeneratedForest {
    cfg: ForestGenConfig,
    rng: SplitMix64,
    /// Shuffling bijection applied to all emitted vertex ids.
    perm: Vec<u32>,
    /// `(start, len)` of each chain in unshuffled id space.
    pub chains: Vec<(u32, u32)>,
    /// Chain-internal edges (shuffled ids).
    pub chain_edges: Vec<(u32, u32, u64)>,
    /// Current connector edge per chain (shuffled ids; `None` = detached).
    connectors: Vec<Option<(u32, u32, u64)>>,
}

impl GeneratedForest {
    /// Generate a forest according to `cfg`.
    pub fn generate(cfg: ForestGenConfig) -> Self {
        assert!(cfg.n >= 1);
        assert!(cfg.mean_chain >= 1.0);
        let mut rng = SplitMix64::new(cfg.seed);
        let perm = random_permutation(cfg.n, cfg.seed ^ 0xBEEF);

        // Carve [0, n) into chains.
        let mut chains: Vec<(u32, u32)> = Vec::new();
        let mut at = 0u32;
        while (at as usize) < cfg.n {
            let len = sample_len(&mut rng, &cfg).min(cfg.n as u64 - at as u64) as u32;
            chains.push((at, len));
            at += len;
        }

        let mut g = GeneratedForest {
            cfg,
            rng,
            perm,
            chains,
            chain_edges: Vec::new(),
            connectors: Vec::new(),
        };
        // Chain-internal edges.
        for &(start, len) in &g.chains {
            for i in 0..len.saturating_sub(1) {
                let w = g.rng.next_below(g.cfg.max_weight.max(2) - 1) + 1;
                let e = (g.map(start + i), g.map(start + i + 1), w);
                g.chain_edges.push(e);
            }
        }
        // Connectors.
        g.connectors = vec![None; g.chains.len()];
        for c in 1..g.chains.len() {
            g.connectors[c] = Some(g.fresh_connector(c));
        }
        g
    }

    #[inline]
    fn map(&self, v: u32) -> u32 {
        self.perm[v as usize]
    }

    /// The shuffled (emitted) id of unshuffled vertex `v` — lets layered
    /// generators (the request stream) place their own edges on the chain
    /// structure while speaking the same id space as [`Self::edges`].
    pub fn shuffled_id(&self, v: u32) -> u32 {
        self.map(v)
    }

    /// Draw a new connector for chain `c`: its head attaches to a random
    /// vertex of the previous chain (probability `ln`) or of a uniformly
    /// random earlier chain.
    fn fresh_connector(&mut self, c: usize) -> (u32, u32, u64) {
        let (start, _) = self.chains[c];
        let target_chain = if self.rng.next_f64() < self.cfg.ln_prob || c == 1 {
            c - 1
        } else {
            self.rng.next_below((c - 1) as u64) as usize
        };
        let (tstart, tlen) = self.chains[target_chain];
        let attach = tstart + self.rng.next_below(tlen as u64) as u32;
        let w = self.rng.next_below(self.cfg.max_weight.max(2) - 1) + 1;
        (self.map(start), self.map(attach), w)
    }

    /// All current edges (chain edges + attached connectors), shuffled ids.
    pub fn edges(&self) -> Vec<(u32, u32, u64)> {
        let mut out = self.chain_edges.clone();
        out.extend(self.connectors.iter().flatten().copied());
        out
    }

    /// Detach `k` random currently-attached connectors, returning the
    /// batch of delete edges.
    pub fn delete_batch(&mut self, k: usize) -> Vec<(u32, u32)> {
        let attached: Vec<usize> = (0..self.connectors.len())
            .filter(|&c| self.connectors[c].is_some())
            .collect();
        let mut out = Vec::new();
        let mut pool = attached;
        for _ in 0..k.min(pool.len()) {
            let i = self.rng.next_below(pool.len() as u64) as usize;
            let c = pool.swap_remove(i);
            let (u, v, _) = self.connectors[c].take().unwrap();
            out.push((u, v));
        }
        out
    }

    /// Re-attach `k` random detached chains with freshly drawn connectors,
    /// returning the batch of weighted insert edges.
    pub fn insert_batch(&mut self, k: usize) -> Vec<(u32, u32, u64)> {
        let detached: Vec<usize> = (1..self.connectors.len())
            .filter(|&c| self.connectors[c].is_none())
            .collect();
        let mut out = Vec::new();
        let mut pool = detached;
        for _ in 0..k.min(pool.len()) {
            let i = self.rng.next_below(pool.len() as u64) as usize;
            let c = pool.swap_remove(i);
            let e = self.fresh_connector(c);
            self.connectors[c] = Some(e);
            out.push(e);
        }
        out
    }

    /// Number of chains (= upper bound on detachable connectors + 1).
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// `k` uniformly random vertex pairs (path / connectivity queries).
    pub fn query_pairs(&mut self, k: usize) -> Vec<(u32, u32)> {
        (0..k)
            .map(|_| {
                (
                    self.rng.next_below(self.cfg.n as u64) as u32,
                    self.rng.next_below(self.cfg.n as u64) as u32,
                )
            })
            .collect()
    }

    /// `k` random `(vertex, neighbor)` pairs for subtree queries, drawn
    /// from the current edge set.
    pub fn query_subtrees(&mut self, k: usize) -> Vec<(u32, u32)> {
        let edges = self.edges();
        if edges.is_empty() {
            return Vec::new();
        }
        (0..k)
            .map(|_| {
                let (u, v, _) = edges[self.rng.next_below(edges.len() as u64) as usize];
                if self.rng.next_f64() < 0.5 {
                    (u, v)
                } else {
                    (v, u)
                }
            })
            .collect()
    }

    /// `k` random triples for LCA queries.
    pub fn query_triples(&mut self, k: usize) -> Vec<(u32, u32, u32)> {
        (0..k)
            .map(|_| {
                (
                    self.rng.next_below(self.cfg.n as u64) as u32,
                    self.rng.next_below(self.cfg.n as u64) as u32,
                    self.rng.next_below(self.cfg.n as u64) as u32,
                )
            })
            .collect()
    }

    /// The configuration used.
    pub fn config(&self) -> &ForestGenConfig {
        &self.cfg
    }
}

fn sample_len(rng: &mut SplitMix64, cfg: &ForestGenConfig) -> u64 {
    let m = cfg.mean_chain;
    let len = match cfg.dist {
        ChainDist::Constant => m.round(),
        ChainDist::Uniform => 1.0 + rng.next_f64() * (2.0 * m - 1.0),
        ChainDist::Geometric => {
            // Support {1, 2, ...} with mean ~m: success prob 1/m.
            let p = (1.0 / m).clamp(1e-9, 1.0);
            let u = rng.next_f64().max(1e-15);
            1.0 + (u.ln() / (1.0 - p).max(1e-15).ln()).floor()
        }
        ChainDist::Exponential => {
            let u = rng.next_f64().max(1e-15);
            (-u.ln() * m).ceil()
        }
    };
    (len.max(1.0)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn acyclic_and_valid(edges: &[(u32, u32, u64)], n: usize) {
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while p[r as usize] != r {
                r = p[r as usize];
            }
            let mut c = x;
            while p[c as usize] != r {
                let nx = p[c as usize];
                p[c as usize] = r;
                c = nx;
            }
            r
        }
        for &(u, v, w) in edges {
            assert!(u != v && (u as usize) < n && (v as usize) < n);
            assert!(w >= 1);
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            assert_ne!(ru, rv, "cycle at edge ({u},{v})");
            parent[ru as usize] = rv;
        }
    }

    #[test]
    fn all_paper_configs_generate_valid_forests() {
        for (name, cfg) in paper_configs(5_000, 7) {
            let g = GeneratedForest::generate(cfg);
            let edges = g.edges();
            acyclic_and_valid(&edges, cfg.n);
            assert!(edges.len() < cfg.n, "{name}: too many edges");
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = ForestGenConfig {
            n: 2000,
            seed: 99,
            ..Default::default()
        };
        let a = GeneratedForest::generate(cfg).edges();
        let b = GeneratedForest::generate(cfg).edges();
        assert_eq!(a, b);
        let c = GeneratedForest::generate(ForestGenConfig { seed: 100, ..cfg }).edges();
        assert_ne!(a, c);
    }

    #[test]
    fn chain_lengths_hit_the_mean() {
        for dist in [
            ChainDist::Constant,
            ChainDist::Uniform,
            ChainDist::Geometric,
            ChainDist::Exponential,
        ] {
            let cfg = ForestGenConfig {
                n: 100_000,
                mean_chain: 10.0,
                dist,
                ..Default::default()
            };
            let g = GeneratedForest::generate(cfg);
            let mean = cfg.n as f64 / g.num_chains() as f64;
            assert!(
                (5.0..20.0).contains(&mean),
                "{dist:?}: empirical mean chain length {mean}"
            );
        }
    }

    #[test]
    fn tiny_mean_gives_many_components_when_detached() {
        let cfg = ForestGenConfig {
            n: 10_000,
            mean_chain: 1.1,
            ..Default::default()
        };
        let mut g = GeneratedForest::generate(cfg);
        let dels = g.delete_batch(g.num_chains());
        assert!(
            dels.len() > 5_000,
            "mean-1.1 forests are connector-dominated"
        );
    }

    #[test]
    fn delete_insert_roundtrip_preserves_validity() {
        let cfg = ForestGenConfig {
            n: 20_000,
            mean_chain: 10.0,
            ..Default::default()
        };
        let mut g = GeneratedForest::generate(cfg);
        let e0 = g.edges().len();
        let dels = g.delete_batch(500);
        assert_eq!(dels.len(), 500);
        assert_eq!(g.edges().len(), e0 - 500);
        let ins = g.insert_batch(500);
        assert_eq!(ins.len(), 500);
        acyclic_and_valid(&g.edges(), cfg.n);
        // Deleted edges must have existed; inserted ones must be fresh.
        let edgeset: HashSet<(u32, u32)> = g
            .edges()
            .iter()
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        for (u, v, _) in ins {
            assert!(edgeset.contains(&(u.min(v), u.max(v))));
        }
    }

    #[test]
    fn deep_vs_shallow_structure() {
        // ln close to 1 chains the chains together: the maximum tree is
        // larger than with ln close to 0... both remain valid forests;
        // check connector targets differ statistically by comparing how
        // many connectors attach to the immediately preceding chain.
        let n = 30_000;
        let deep = GeneratedForest::generate(ForestGenConfig {
            n,
            ln_prob: 0.95,
            seed: 3,
            ..Default::default()
        });
        let shallow = GeneratedForest::generate(ForestGenConfig {
            n,
            ln_prob: 0.05,
            seed: 3,
            ..Default::default()
        });
        acyclic_and_valid(&deep.edges(), n);
        acyclic_and_valid(&shallow.edges(), n);
    }

    #[test]
    fn query_generators_in_range() {
        let cfg = ForestGenConfig {
            n: 1000,
            ..Default::default()
        };
        let mut g = GeneratedForest::generate(cfg);
        for (u, v) in g.query_pairs(100) {
            assert!((u as usize) < 1000 && (v as usize) < 1000);
        }
        let edges: HashSet<(u32, u32)> = g
            .edges()
            .iter()
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        for (u, p) in g.query_subtrees(100) {
            assert!(
                edges.contains(&(u.min(p), u.max(p))),
                "subtree query not an edge"
            );
        }
        assert_eq!(g.query_triples(5).len(), 5);
    }
}
