//! Shared load-driving machinery for the `rc-serve` benchmarks: the
//! `serve_load` binary (BENCH_serve.json trajectory) and the
//! `serve_throughput` criterion smoke both drive the coalescer through
//! this module.

use rc_gen::{Arrival, OpMix, RequestStream, RequestStreamConfig};
use rc_serve::{
    DispatchStats, Durability, EpochTrace, MetricsSnapshot, ObsServerConfig, PhaseTotals, RcServe,
    Request, Response, ServeConfig, ServeForest, SyncPolicy,
};
use std::io::{Read as _, Write as _};
use std::time::{Duration, Instant};

/// One load run's parameters.
#[derive(Clone)]
pub struct LoadSpec {
    /// Client threads.
    pub threads: usize,
    /// Requests per client thread.
    pub ops_per_thread: usize,
    /// Closed-loop pipeline window per thread (in-flight requests).
    pub window: usize,
    /// Open loop (pace by the stream's arrival process, fire-and-forget)
    /// vs closed loop (windowed pipelining).
    pub open_loop: bool,
    /// Stream configuration (forest, mix, skew, arrivals).
    pub stream: RequestStreamConfig,
    /// Server batching policy.
    pub server: ServeConfig,
    /// Run with a WAL under the given sync policy (a fresh store
    /// directory per run, removed afterwards). `None` = in-memory.
    pub durability: Option<SyncPolicy>,
    /// Start the live observability endpoint on an ephemeral port and
    /// scrape `/metrics` + `/health` over TCP while the load runs,
    /// asserting both answer 200 — the endpoint-under-load smoke.
    pub obs_scrape: bool,
}

/// Measured outcome of one load run.
#[derive(Clone, Debug)]
pub struct LoadResult {
    pub threads: usize,
    pub ops: usize,
    pub error_responses: usize,
    pub elapsed: Duration,
    pub ops_per_sec: f64,
    pub epochs: u64,
    pub mean_batch: f64,
    pub max_batch: usize,
    pub flushes: u64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub mean_us: f64,
    /// Full registry snapshot taken after shutdown: serve phase
    /// histograms, store/WAL counters when durable, pool counters when
    /// the `pool-metrics` feature is on.
    pub snapshot: MetricsSnapshot,
    /// Per-phase wall-time totals summed over every flight-recorder
    /// trace the run retained (the last `flight_capacity` epochs).
    pub phase: PhaseTotals,
    /// [`PhaseTotals::coverage`]: fraction of recorded epoch wall time
    /// the phase spans account for.
    pub phase_coverage: f64,
    /// Cumulative adaptive-dispatch counters: per-(family, engine)
    /// decisions and query counts plus the explore total.
    pub dispatch: DispatchStats,
    /// The learned cost model (per-octave table + crossover estimates)
    /// as the `/costmodel` JSON body, captured after shutdown.
    pub cost_model_json: String,
}

/// The default serving workload: a query-heavy mix over a Zipf-skewed
/// vertex population — the traffic shape the coalescer exists for.
pub fn default_stream(n: usize, seed: u64) -> RequestStreamConfig {
    RequestStreamConfig {
        forest: rc_gen::ForestGenConfig {
            n,
            seed,
            ..Default::default()
        },
        mix: OpMix::query_heavy(),
        zipf_exponent: 0.8,
        arrival: Arrival::Closed,
        invalid_frac: 0.0,
        cpt_terminals: 8,
    }
}

/// A coalescing policy tuned for windowed closed-loop load: drain the
/// moment the whole aggregate window is queued (every client blocked),
/// with a short linger bounding the wait when clients straggle. Pinned to
/// `pipeline_depth: 0` — strict phase alternation, the baseline the
/// pipelined mode is measured against.
pub fn coalesced_policy(threads: usize, window: usize) -> ServeConfig {
    ServeConfig {
        max_epoch_ops: (threads * window).max(1024),
        drain_threshold: (threads * window).max(1),
        max_linger: Duration::from_micros(50),
        pipeline_depth: 0,
        ..ServeConfig::default()
    }
}

/// The same batching policy with MVCC pipelining at depth 1: epoch E's
/// query phase overlaps epoch E+1's update phase on a second thread.
pub fn pipelined_policy(threads: usize, window: usize) -> ServeConfig {
    ServeConfig {
        pipeline_depth: 1,
        ..coalesced_policy(threads, window)
    }
}

/// Issue one blocking HTTP/1.0 GET against the observability endpoint
/// and return the status line.
fn obs_get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    let mut conn = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    conn.set_write_timeout(Some(Duration::from_secs(2)))?;
    conn.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut body = String::new();
    conn.read_to_string(&mut body)?;
    Ok(body.lines().next().unwrap_or("").to_string())
}

/// Execute one load run: build the forest from the stream, start a fresh
/// server, drive it from `threads` clients, shut down, report.
pub fn run_load(spec: &LoadSpec) -> LoadResult {
    run_load_reusing(spec, &mut Vec::new())
}

/// [`run_load`] with a caller-provided flight-recorder scratch buffer,
/// so sweeps that run many configurations back to back reuse one
/// allocation for the per-epoch trace dump instead of growing a fresh
/// `Vec` per run.
pub fn run_load_reusing(spec: &LoadSpec, scratch: &mut Vec<EpochTrace>) -> LoadResult {
    let probe = RequestStream::new_partitioned(spec.stream.clone(), 0, spec.threads);
    // With durability, the initial forest is installed as the bootstrap
    // snapshot of a fresh store directory (start_durable builds it from
    // the snapshot, so no separate throwaway build) — the timed section
    // measures pure WAL overhead, not the initial snapshot write.
    let store_dir = spec.durability.map(|sync| {
        static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rc-bench-wal-{}-{}",
            std::process::id(),
            RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (dir, sync)
    });
    let server = match &store_dir {
        None => {
            let forest = ServeForest::build_edges(
                probe.num_vertices(),
                &probe.initial_edges(),
                rc_core::BuildOptions::default(),
            )
            .expect("generated forest is valid");
            RcServe::start(forest, spec.server.clone())
        }
        Some((dir, sync)) => {
            let boot =
                rc_core::ForestState::from_edges(probe.num_vertices(), &probe.initial_edges());
            let durability = Durability::new(dir, boot.n).sync_policy(*sync);
            RcServe::start_durable(spec.server.clone(), durability, Some(&boot))
                .expect("fresh durable store")
                .0
        }
    };

    // The live endpoint binds before the timed section so scrapes land
    // mid-load; the listener thread is torn down before shutdown.
    let obs = spec
        .obs_scrape
        .then(|| {
            server
                .serve_obs(ObsServerConfig::default())
                .expect("bind observability endpoint")
        })
        .map(|srv| {
            let addr = srv.local_addr();
            (srv, addr)
        });

    // Pre-generate every thread's request tape (and open-loop arrival
    // schedule) outside the timed section, so the measurement is the
    // serving path, not the generator's Zipf sampling.
    let tapes: Vec<(Vec<Request>, Vec<u64>)> = (0..spec.threads)
        .map(|t| {
            let mut stream = RequestStream::new_partitioned(spec.stream.clone(), t, spec.threads);
            let ops: Vec<Request> = (0..spec.ops_per_thread)
                .map(|_| Request::from_stream(stream.next_op()))
                .collect();
            let delays: Vec<u64> = if spec.open_loop {
                (0..spec.ops_per_thread)
                    .map(|_| stream.next_delay_ns())
                    .collect()
            } else {
                Vec::new()
            };
            (ops, delays)
        })
        .collect();

    let t0 = Instant::now();
    let workers: Vec<_> = tapes
        .into_iter()
        .map(|(ops, delays)| {
            let client = server.client();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut errors = 0usize;
                if spec.open_loop {
                    // Open loop: pace submissions, collect handles, wait at
                    // the end so latency includes queueing delay.
                    let mut handles = Vec::with_capacity(ops.len());
                    let mut next_at = Instant::now();
                    for (req, gap) in ops.into_iter().zip(delays) {
                        next_at += Duration::from_nanos(gap);
                        let now = Instant::now();
                        if next_at > now {
                            std::thread::sleep(next_at - now);
                        }
                        handles.push(client.submit(req));
                    }
                    for h in handles {
                        if matches!(h.wait(), Response::Updated(Err(_))) {
                            errors += 1;
                        }
                    }
                } else {
                    let mut ops = ops.into_iter();
                    loop {
                        let chunk: Vec<Request> = ops.by_ref().take(spec.window.max(1)).collect();
                        if chunk.is_empty() {
                            break;
                        }
                        let handles: Vec<_> =
                            chunk.into_iter().map(|req| client.submit(req)).collect();
                        for h in handles {
                            if matches!(h.wait(), Response::Updated(Err(_))) {
                                errors += 1;
                            }
                        }
                    }
                }
                errors
            })
        })
        .collect();
    // Scrape the endpoint while the client threads are still driving
    // load: the worker threads above run concurrently with these GETs.
    if let Some((_, addr)) = &obs {
        for path in ["/metrics", "/health"] {
            let status = obs_get(*addr, path).expect("scrape observability endpoint");
            assert!(
                status.contains("200"),
                "GET {path} under load answered {status:?}, expected 200"
            );
        }
    }
    let error_responses: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = t0.elapsed();

    let audit = server.client();
    if let Some((mut srv, _)) = obs {
        srv.stop();
    }
    server.shutdown();
    if let Some((dir, _)) = &store_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    let stats = audit.stats();
    // Telemetry reads are direct shared-state accessors, valid after
    // shutdown — by which point every epoch's trace has been published.
    let snapshot = audit.metrics_snapshot();
    let dispatch = audit.dispatch_stats();
    let cost_model_json = audit.cost_model_json();
    audit.flight_dump_into(scratch);
    let phase = PhaseTotals::from_traces(scratch);
    let phase_coverage = phase.coverage();
    if std::env::var("RC_SERVE_DEBUG").is_ok() {
        for e in audit.epoch_history().iter().rev().take(8).rev() {
            eprintln!(
                "debug epoch {}: batch {} (u {} q {}, {} flushes) update {:.3} ms query {:.3} ms",
                e.epoch,
                e.batch,
                e.updates,
                e.queries,
                e.flushes,
                e.update_ns as f64 / 1e6,
                e.query_ns as f64 / 1e6
            );
        }
    }
    let ops = spec.threads * spec.ops_per_thread;
    LoadResult {
        threads: spec.threads,
        ops,
        error_responses,
        elapsed,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        epochs: stats.epochs,
        mean_batch: stats.mean_batch,
        max_batch: stats.max_batch,
        flushes: stats.flushes,
        p50_us: stats.latency.p50_ns as f64 / 1e3,
        p95_us: stats.latency.p95_ns as f64 / 1e3,
        p99_us: stats.latency.p99_ns as f64 / 1e3,
        mean_us: stats.latency.mean_ns as f64 / 1e3,
        snapshot,
        phase,
        phase_coverage,
        dispatch,
        cost_model_json,
    }
}
