//! `rc-repl` replication driver: apply-lag under load across follower
//! counts, and failover (promotion) time as a function of replica
//! history size, writing `BENCH_repl.json` so both curves are tracked
//! across PRs.
//!
//! Scale via `RC_BENCH_SCALE` (`tiny` for CI smoke, `large` for a full
//! machine); `RC_REPL_OUT` overrides the output path.

use rc_bench::{scale, Table};
use rc_core::ForestState;
use rc_repl::{Follower, FollowerConfig, LeaderConfig, ReplLeader};
use rc_serve::{Durability, RcServe, Request, Response, ServeConfig, SyncPolicy};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("rc-repl-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn boot_state(n: usize) -> ForestState {
    let edges: Vec<(u32, u32, u64)> = (1..n as u32)
        .map(|v| (v - 1, v, (v as u64 % 9) + 1))
        .collect();
    ForestState::from_edges(n, &edges)
}

/// Update-only tape: links, cuts, reweights (invalid ops commit nothing
/// and ship nothing, which is fine — replication cost tracks committed
/// records).
fn tape(n: usize, seed: u64, i: u64) -> Request {
    let h = splitmix(seed.wrapping_mul(0xabcd).wrapping_add(i));
    let u = (h >> 8) as u32 % n as u32;
    let v = (h >> 28) as u32 % n as u32;
    let w = (h >> 48) % 1000;
    match h % 4 {
        0 => Request::Link { u, v, w },
        1 => Request::Cut { u, v },
        2 => Request::UpdateEdgeWeight { u, v, w },
        _ => Request::UpdateVertexWeight { v, w },
    }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        drain_threshold: 64,
        max_linger: Duration::from_micros(200),
        ..ServeConfig::default()
    }
}

struct LagRow {
    followers: usize,
    ops: usize,
    ops_per_sec: f64,
    records: u64,
    max_lag: u64,
    mean_lag: f64,
    catchup_ms: f64,
}

/// Drive `ops` updates through a replicated leader with `followers`
/// attached; sample lag per chunk and time the post-load catch-up.
fn run_apply_lag(n: usize, followers: usize, ops: usize, seed: u64) -> LagRow {
    let ldir = dir(&format!("lag-l-{followers}-{ops}"));
    let (server, _) = RcServe::start_durable(
        serve_cfg(),
        Durability::new(&ldir, n).sync_policy(SyncPolicy::PerEpoch),
        Some(&boot_state(n)),
    )
    .expect("leader starts");
    let leader = ReplLeader::start(&server, LeaderConfig::new(&ldir, n)).expect("repl leader");
    let fdirs: Vec<_> = (0..followers)
        .map(|f| dir(&format!("lag-f{f}-{followers}-{ops}")))
        .collect();
    let flw: Vec<Follower> = fdirs
        .iter()
        .map(|d| {
            Follower::start(FollowerConfig::new(leader.local_addr().to_string(), d, n))
                .expect("follower starts")
        })
        .collect();
    // Wait for every follower to install the bootstrap basis.
    let sync_deadline = Instant::now() + Duration::from_secs(30);
    while !flw.iter().all(|f| f.is_synced()) {
        assert!(Instant::now() < sync_deadline, "followers never synced");
        std::thread::sleep(Duration::from_millis(2));
    }

    let client = server.client();
    let t0 = Instant::now();
    let mut lag_samples: Vec<u64> = Vec::new();
    let mut done = 0usize;
    while done < ops {
        let chunk = (ops - done).min(64);
        let handles: Vec<_> = (0..chunk)
            .map(|i| client.submit(tape(n, seed, (done + i) as u64)))
            .collect();
        done += chunk;
        for h in handles {
            let _ = h.wait();
        }
        lag_samples.push(flw.iter().map(|f| f.lag()).max().unwrap_or(0));
    }
    let elapsed = t0.elapsed();

    // Catch-up: how long until every follower drains the residual lag.
    let committed = leader.committed();
    let t1 = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(60);
    while !flw.iter().all(|f| f.applied() >= committed) {
        assert!(Instant::now() < deadline, "followers never caught up");
        std::thread::sleep(Duration::from_micros(200));
    }
    let catchup = t1.elapsed();

    let records = flw.iter().map(|f| f.applied()).max().unwrap_or(0);
    let row = LagRow {
        followers,
        ops,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
        records,
        max_lag: lag_samples.iter().copied().max().unwrap_or(0),
        mean_lag: lag_samples.iter().sum::<u64>() as f64 / lag_samples.len().max(1) as f64,
        catchup_ms: catchup.as_secs_f64() * 1e3,
    };
    for f in flw {
        f.stop();
    }
    drop(leader);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    for d in fdirs {
        let _ = std::fs::remove_dir_all(&d);
    }
    row
}

struct FailoverRow {
    ops: usize,
    replica_epochs: u64,
    promote_ms: f64,
    first_answer_ms: f64,
}

/// Replicate `ops` updates, kill the leader, and time follower →
/// serving-leader promotion (snapshot + WAL-suffix recovery) plus the
/// first answered query on the promoted server.
fn run_failover(n: usize, ops: usize, seed: u64) -> FailoverRow {
    let ldir = dir(&format!("fo-l-{ops}"));
    let fdir = dir(&format!("fo-f-{ops}"));
    let (server, _) = RcServe::start_durable(
        serve_cfg(),
        Durability::new(&ldir, n).sync_policy(SyncPolicy::PerEpoch),
        Some(&boot_state(n)),
    )
    .expect("leader starts");
    let leader = ReplLeader::start(&server, LeaderConfig::new(&ldir, n)).expect("repl leader");
    let follower = Follower::start(FollowerConfig::new(
        leader.local_addr().to_string(),
        &fdir,
        n,
    ))
    .expect("follower starts");

    let client = server.client();
    let mut done = 0usize;
    while done < ops {
        let chunk = (ops - done).min(64);
        let handles: Vec<_> = (0..chunk)
            .map(|i| client.submit(tape(n, seed, (done + i) as u64)))
            .collect();
        done += chunk;
        for h in handles {
            let _ = h.wait();
        }
    }
    let committed = leader.committed();
    let deadline = Instant::now() + Duration::from_secs(60);
    while follower.applied() < committed {
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_micros(200));
    }

    // Leader dies; the follower becomes the leader.
    drop(leader);
    server.shutdown();
    let t0 = Instant::now();
    let (promoted, report) = follower.promote(serve_cfg()).expect("promotion");
    let promote_ms = t0.elapsed().as_secs_f64() * 1e3;
    let resp = promoted
        .client()
        .submit(Request::Connected { u: 0, v: 1 })
        .wait();
    assert!(matches!(resp, Response::Bool(_)));
    let first_answer_ms = t0.elapsed().as_secs_f64() * 1e3;
    promoted.shutdown();
    let row = FailoverRow {
        ops,
        replica_epochs: report.last_epoch,
        promote_ms,
        first_answer_ms,
    };
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
    row
}

fn main() {
    let (n, lag_ops, failover_ops): (usize, usize, Vec<usize>) = match scale() {
        "large" => (100_000, 20_000, vec![2_000, 10_000, 40_000]),
        "tiny" => (1_000, 400, vec![100, 400]),
        _ => (10_000, 4_000, vec![500, 2_000, 8_000]),
    };
    println!("# repl_load — n={n}, lag ops={lag_ops}, failover sweep {failover_ops:?}");

    let t = Table::new(
        "Apply lag under load (leader + K followers, per-epoch fsync both sides)",
        &[
            "followers",
            "ops",
            "leader ops/sec",
            "records",
            "max lag",
            "mean lag",
            "catch-up ms",
        ],
    );
    let mut lag_rows = Vec::new();
    for followers in [1usize, 2, 3] {
        let row = run_apply_lag(n, followers, lag_ops, 42);
        t.row(&[
            row.followers.to_string(),
            row.ops.to_string(),
            format!("{:.0}", row.ops_per_sec),
            row.records.to_string(),
            row.max_lag.to_string(),
            format!("{:.1}", row.mean_lag),
            format!("{:.2}", row.catchup_ms),
        ]);
        lag_rows.push(row);
    }

    let t = Table::new(
        "Failover: follower → leader promotion vs replica history",
        &["ops", "replica epochs", "promote ms", "first answer ms"],
    );
    let mut fo_rows = Vec::new();
    for &ops in &failover_ops {
        let row = run_failover(n, ops, 7);
        t.row(&[
            row.ops.to_string(),
            row.replica_epochs.to_string(),
            format!("{:.2}", row.promote_ms),
            format!("{:.2}", row.first_answer_ms),
        ]);
        fo_rows.push(row);
    }

    // ---- BENCH_repl.json ----
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"repl_load\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"apply_lag\": [");
    for (i, r) in lag_rows.iter().enumerate() {
        let comma = if i + 1 == lag_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"followers\": {}, \"ops\": {}, \"leader_ops_per_sec\": {:.1}, \
             \"records\": {}, \"max_lag_epochs\": {}, \"mean_lag_epochs\": {:.2}, \
             \"catchup_ms\": {:.3}}}{comma}",
            r.followers, r.ops, r.ops_per_sec, r.records, r.max_lag, r.mean_lag, r.catchup_ms
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"failover\": [");
    for (i, r) in fo_rows.iter().enumerate() {
        let comma = if i + 1 == fo_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"ops\": {}, \"replica_epochs\": {}, \"promote_ms\": {:.3}, \
             \"first_answer_ms\": {:.3}}}{comma}",
            r.ops, r.replica_epochs, r.promote_ms, r.first_answer_ms
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let out = std::env::var("RC_REPL_OUT").unwrap_or_else(|_| "BENCH_repl.json".into());
    std::fs::write(&out, json).expect("write BENCH_repl.json");
    println!("\nwrote {out}");
}
