//! `rc-serve` load driver: pipelined vs coalesced vs forced size-1
//! epochs across a thread sweep (closed loop), plus an offered-load sweep
//! (open loop) tracing the latency-vs-load curve per mode, writing
//! `BENCH_serve.json` so the serving-throughput trajectory is tracked
//! across PRs.
//!
//! Scale via `RC_BENCH_SCALE` (`tiny` for CI smoke, `large` for a full
//! machine); `RC_SERVE_OUT` overrides the output path.

use rc_bench::serve_driver::{
    coalesced_policy, default_stream, pipelined_policy, run_load_reusing, LoadResult, LoadSpec,
};
use rc_bench::{scale, Table};
use rc_gen::Arrival;
use rc_serve::{DispatchMode, ServeConfig, SyncPolicy};
use std::fmt::Write as _;

struct Row {
    mode: &'static str,
    loop_kind: &'static str,
    durability: &'static str,
    /// Open-loop offered load in ops/sec (0 for closed loop).
    offered: f64,
    r: LoadResult,
}

fn main() {
    // Window sizes chosen so the top thread count keeps thousands of
    // requests in flight: on a single-core box the coalescing win is pure
    // amortization (shared marked sweeps + one propagation per epoch), so
    // the epochs must be large for the batch work bound to bite.
    let (n, ops_per_thread, window) = match scale() {
        "large" => (1_000_000, 6_000, 1_024),
        "tiny" => (5_000, 500, 256),
        _ => (20_000, 6_000, 1_024),
    };
    let threads_sweep: Vec<usize> = [1usize, 2, 4, 8].into_iter().filter(|&t| t <= 8).collect();
    let machine_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "# serve_load — n={n}, {ops_per_thread} ops/thread, window {window}, \
         machine parallelism {machine_parallelism}"
    );
    let t = Table::new(
        "Pipelined vs coalesced vs size-1 epochs (closed loop) + WAL + offered-load sweep",
        &[
            "mode",
            "loop",
            "wal",
            "threads",
            "offered/s",
            "ops/sec",
            "mean batch",
            "max batch",
            "epochs",
            "p50 us",
            "p95 us",
            "p99 us",
            "errors",
        ],
    );
    let print_row = |t: &Table, row: &Row| {
        t.row(&[
            row.mode.into(),
            row.loop_kind.into(),
            row.durability.into(),
            row.r.threads.to_string(),
            if row.offered > 0.0 {
                format!("{:.0}", row.offered)
            } else {
                "-".into()
            },
            format!("{:.0}", row.r.ops_per_sec),
            format!("{:.1}", row.r.mean_batch),
            row.r.max_batch.to_string(),
            row.r.epochs.to_string(),
            format!("{:.1}", row.r.p50_us),
            format!("{:.1}", row.r.p95_us),
            format!("{:.1}", row.r.p99_us),
            row.r.error_responses.to_string(),
        ]);
    };

    let mut rows: Vec<Row> = Vec::new();
    // One flight-recorder scratch buffer shared by every run in the
    // sweep — each run's per-epoch trace dump reuses this allocation.
    let mut scratch = Vec::new();
    for &threads in &threads_sweep {
        let stream = default_stream(n, 42 + threads as u64);
        // Coalesced (strict alternation), closed loop — the baseline.
        let coalesced = run_load_reusing(
            &LoadSpec {
                threads,
                ops_per_thread,
                window,
                open_loop: false,
                stream: stream.clone(),
                server: coalesced_policy(threads, window),
                durability: None,
                obs_scrape: false,
            },
            &mut scratch,
        );
        rows.push(Row {
            mode: "coalesced",
            loop_kind: "closed",
            durability: "none",
            offered: 0.0,
            r: coalesced,
        });
        // Pipelined (depth 1), closed loop — epoch E's query phase
        // overlaps epoch E+1's update phase.
        let pipelined = run_load_reusing(
            &LoadSpec {
                threads,
                ops_per_thread,
                window,
                open_loop: false,
                stream: stream.clone(),
                server: pipelined_policy(threads, window),
                durability: None,
                obs_scrape: false,
            },
            &mut scratch,
        );
        rows.push(Row {
            mode: "pipelined",
            loop_kind: "closed",
            durability: "none",
            offered: 0.0,
            r: pipelined,
        });
        // Coalesced + WAL (per-epoch fsync), closed loop: the durability
        // overhead at the same batching policy. This run also binds the
        // live observability endpoint and scrapes /metrics + /health over
        // TCP mid-load — the durable endpoint-under-load smoke.
        let walled = run_load_reusing(
            &LoadSpec {
                threads,
                ops_per_thread,
                window,
                open_loop: false,
                stream: stream.clone(),
                server: coalesced_policy(threads, window),
                durability: Some(SyncPolicy::PerEpoch),
                obs_scrape: true,
            },
            &mut scratch,
        );
        rows.push(Row {
            mode: "coalesced",
            loop_kind: "closed",
            durability: "wal_per_epoch",
            offered: 0.0,
            r: walled,
        });
        // Forced size-1 epochs, closed loop.
        let size1 = run_load_reusing(
            &LoadSpec {
                threads,
                ops_per_thread,
                window,
                open_loop: false,
                stream: stream.clone(),
                server: ServeConfig::unbatched(),
                durability: None,
                obs_scrape: false,
            },
            &mut scratch,
        );
        rows.push(Row {
            mode: "size1",
            loop_kind: "closed",
            durability: "none",
            offered: 0.0,
            r: size1,
        });
        for row in rows.iter().rev().take(4).rev() {
            print_row(&t, row);
        }
    }

    // Offered-load sweep at the top thread count: open-loop Poisson
    // arrivals at 30/60/90% of the coalesced closed-loop throughput, for
    // both modes — the latency-vs-offered-load curve that shows where the
    // overlap pays (the update-phase shadow leaves the pipelined server
    // headroom the alternating one spends blocked).
    let top = *threads_sweep.last().unwrap();
    let closed_rate = rows
        .iter()
        .find(|r| {
            r.mode == "coalesced"
                && r.loop_kind == "closed"
                && r.durability == "none"
                && r.r.threads == top
        })
        .map(|r| r.r.ops_per_sec)
        .unwrap_or(0.0);
    let stream = default_stream(n, 42 + top as u64);
    for &frac in &[0.3f64, 0.6, 0.9] {
        let offered = (closed_rate * frac).max(1_000.0);
        let per_thread = offered / top as f64;
        let mut open_stream = stream.clone();
        open_stream.arrival = Arrival::Steady {
            mean_gap_ns: (1e9 / per_thread) as u64,
        };
        for (mode, server) in [
            ("coalesced", coalesced_policy(top, window)),
            ("pipelined", pipelined_policy(top, window)),
        ] {
            let r = run_load_reusing(
                &LoadSpec {
                    threads: top,
                    ops_per_thread,
                    window,
                    open_loop: true,
                    stream: open_stream.clone(),
                    server,
                    durability: None,
                    obs_scrape: false,
                },
                &mut scratch,
            );
            rows.push(Row {
                mode,
                loop_kind: "open",
                durability: "none",
                offered,
                r,
            });
            print_row(&t, rows.last().unwrap());
        }
    }

    // Tracing-overhead check at the top thread count: the same coalesced
    // closed-loop config with the default 1-in-64 sampler vs tracing
    // fully disabled (sample 0, slow capture off), best-of-2 each so one
    // scheduler hiccup doesn't decide the ratio. The sampled path must
    // stay within noise of the untraced path — per-request cost when a
    // request is not sampled is two relaxed atomic stores.
    let overhead_stream = default_stream(n, 42 + top as u64);
    let best_tput = |server: ServeConfig, scratch: &mut Vec<_>| -> f64 {
        (0..2)
            .map(|_| {
                run_load_reusing(
                    &LoadSpec {
                        threads: top,
                        ops_per_thread,
                        window,
                        open_loop: false,
                        stream: overhead_stream.clone(),
                        server: server.clone(),
                        durability: None,
                        obs_scrape: false,
                    },
                    scratch,
                )
                .ops_per_sec
            })
            .fold(0.0f64, f64::max)
    };
    let traced_tput = best_tput(
        ServeConfig {
            trace_sample: 64,
            ..coalesced_policy(top, window)
        },
        &mut scratch,
    );
    let untraced_tput = best_tput(
        ServeConfig {
            trace_sample: 0,
            slow_request_threshold: std::time::Duration::ZERO,
            ..coalesced_policy(top, window)
        },
        &mut scratch,
    );
    let tracing_overhead_ratio = untraced_tput / traced_tput.max(1e-9);
    println!(
        "tracing overhead at {top} threads: 1-in-64 sampling costs {:.1}% \
         ({traced_tput:.0} ops/s traced vs {untraced_tput:.0} untraced)",
        (tracing_overhead_ratio - 1.0) * 100.0
    );
    // Debug builds are too noisy (and too slow) for a 3% bound; the CI
    // release run enforces it.
    if cfg!(not(debug_assertions)) {
        assert!(
            tracing_overhead_ratio <= 1.03,
            "1-in-64 request tracing cost more than 3% of throughput: \
             {traced_tput:.0} ops/s traced vs {untraced_tput:.0} untraced \
             (ratio {tracing_overhead_ratio:.3})"
        );
    }

    // Adaptive dispatch on a small-k-heavy mix: a tiny per-thread window
    // keeps each epoch's per-family batch down to a handful of queries,
    // where the batched engines' parallel setup dominates and the learned
    // cost model should route to the cheap single-query engines. The same
    // tape runs once with the model pinned to always-batched and once
    // adaptive (20% exploration so the table fills fast) — the ratio is
    // the payoff the profiler buys at small k.
    let small_window = 8;
    let small_k_stream = default_stream(n, 4242);
    let small_k_run = |mode: DispatchMode, scratch: &mut Vec<_>| {
        run_load_reusing(
            &LoadSpec {
                threads: top,
                ops_per_thread,
                window: small_window,
                open_loop: false,
                stream: small_k_stream.clone(),
                server: ServeConfig {
                    dispatch_mode: mode,
                    explore_frac: 0.2,
                    ..coalesced_policy(top, small_window)
                },
                durability: None,
                obs_scrape: false,
            },
            scratch,
        )
    };
    let batched_small_k = small_k_run(DispatchMode::AlwaysBatched, &mut scratch);
    let adaptive_small_k = small_k_run(DispatchMode::Adaptive, &mut scratch);
    let adaptive_ratio = adaptive_small_k.ops_per_sec / batched_small_k.ops_per_sec.max(1e-9);
    let non_batched_decisions: u64 = (0..rc_serve::FAMILY_NAMES.len())
        .map(|f| {
            adaptive_small_k.dispatch.decisions[f][1] + adaptive_small_k.dispatch.decisions[f][2]
        })
        .sum();
    let table_learned =
        adaptive_small_k.cost_model_json.contains("\"ns_per_op\":") && non_batched_decisions > 0;
    println!(
        "adaptive vs always-batched on small-k mix (window {small_window}): {adaptive_ratio:.2}x \
         ({:.0} ops/s adaptive vs {:.0} batched, {} non-batched decisions, {} explored)",
        adaptive_small_k.ops_per_sec,
        batched_small_k.ops_per_sec,
        non_batched_decisions,
        adaptive_small_k.dispatch.explored,
    );
    // Debug builds are too noisy for a throughput bound; CI's release run
    // enforces both halves of the acceptance criterion: the model learned
    // a real table (populated non-batched cells via exploration) and the
    // adaptive run is at worst within noise of always-batched (on boxes
    // with real parallelism it should win outright).
    if cfg!(not(debug_assertions)) {
        assert!(
            table_learned,
            "adaptive run never learned: no populated table cells or no \
             non-batched decisions ({})",
            adaptive_small_k.cost_model_json
        );
        assert!(
            adaptive_ratio >= 0.8,
            "adaptive dispatch lost more than 20% to always-batched on the \
             small-k mix: {adaptive_ratio:.3}"
        );
    }
    for (mode, r) in [
        ("always_batched", &batched_small_k),
        ("adaptive", &adaptive_small_k),
    ] {
        rows.push(Row {
            mode,
            loop_kind: "closed",
            durability: "none",
            offered: 0.0,
            r: r.clone(),
        });
        print_row(&t, rows.last().unwrap());
    }

    // Acceptance metrics: pipelined vs coalesced, coalesced vs size-1,
    // and the WAL tax, at the top thread count.
    let tput = |mode: &str, loop_kind: &str, durability: &str| {
        rows.iter()
            .find(|r| {
                r.mode == mode
                    && r.loop_kind == loop_kind
                    && r.durability == durability
                    && r.r.threads == top
            })
            .map(|r| r.r.ops_per_sec)
            .unwrap_or(0.0)
    };
    let speedup = tput("coalesced", "closed", "none") / tput("size1", "closed", "none").max(1e-9);
    let overlap =
        tput("pipelined", "closed", "none") / tput("coalesced", "closed", "none").max(1e-9);
    let wal_relative = tput("coalesced", "closed", "wal_per_epoch")
        / tput("coalesced", "closed", "none").max(1e-9);
    let max_batch_top = rows
        .iter()
        .find(|r| {
            r.mode == "coalesced"
                && r.loop_kind == "closed"
                && r.durability == "none"
                && r.r.threads == top
        })
        .map(|r| r.r.max_batch)
        .unwrap_or(0);
    println!(
        "\ncoalesced vs size-1 at {top} threads: {speedup:.2}x (max coalesced batch {max_batch_top})"
    );
    println!(
        "pipelined vs coalesced at {top} threads: {overlap:.2}x \
         (machine parallelism {machine_parallelism})"
    );
    println!(
        "WAL (per-epoch fsync) keeps {:.0}% of in-memory throughput",
        wal_relative * 100.0
    );

    // Telemetry acceptance: the pipelined run's flight-recorder phase
    // breakdown should account for >= 90% of recorded epoch wall time —
    // otherwise the instrumentation is missing a phase.
    let find_top = |mode: &str, durability: &str| {
        rows.iter().find(|r| {
            r.mode == mode
                && r.loop_kind == "closed"
                && r.durability == durability
                && r.r.threads == top
        })
    };
    let pipelined_top = find_top("pipelined", "none").expect("pipelined top row exists");
    let walled_top = find_top("coalesced", "wal_per_epoch").expect("walled top row exists");
    let fsync_p99_us = walled_top
        .r
        .snapshot
        .histogram("wal_fsync_ns")
        .map(|s| s.p99_ns as f64 / 1e3)
        .unwrap_or(0.0);
    println!(
        "pipelined phase coverage at {top} threads: {:.1}% \
         (backpressure {:.1} ms, handoff {:.1} ms over {} recorded epochs); \
         WAL fsync p99 {fsync_p99_us:.1} us",
        pipelined_top.r.phase_coverage * 100.0,
        pipelined_top.r.phase.backpressure_ns as f64 / 1e6,
        pipelined_top.r.phase.handoff_ns as f64 / 1e6,
        pipelined_top.r.phase.epochs,
    );

    // ---- BENCH_serve.json ----
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_load\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"ops_per_thread\": {ops_per_thread},");
    let _ = writeln!(json, "  \"window\": {window},");
    let _ = writeln!(json, "  \"mix\": \"query_heavy\",");
    let _ = writeln!(json, "  \"machine_parallelism\": {machine_parallelism},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"loop\": \"{}\", \"durability\": \"{}\", \
             \"threads\": {}, \"offered_ops_per_sec\": {:.1}, \"ops\": {}, \
             \"elapsed_s\": {:.4}, \"ops_per_sec\": {:.1}, \"epochs\": {}, \
             \"mean_batch\": {:.1}, \"max_batch\": {}, \"flushes\": {}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}, \
             \"error_responses\": {}, \"phase_coverage\": {:.4}, \
             \"backpressure_ms\": {:.3}, \"handoff_ms\": {:.3}}}{comma}",
            row.mode,
            row.loop_kind,
            row.durability,
            row.r.threads,
            row.offered,
            row.r.ops,
            row.r.elapsed.as_secs_f64(),
            row.r.ops_per_sec,
            row.r.epochs,
            row.r.mean_batch,
            row.r.max_batch,
            row.r.flushes,
            row.r.p50_us,
            row.r.p95_us,
            row.r.p99_us,
            row.r.mean_us,
            row.r.error_responses,
            row.r.phase_coverage,
            row.r.phase.backpressure_ns as f64 / 1e6,
            row.r.phase.handoff_ns as f64 / 1e6,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"speedup_coalesced_vs_size1_at_{top}_threads\": {speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"pipelined_vs_coalesced_at_{top}_threads\": {overlap:.3},"
    );
    let _ = writeln!(
        json,
        "  \"wal_per_epoch_relative_throughput_at_{top}_threads\": {wal_relative:.3},"
    );
    let _ = writeln!(
        json,
        "  \"max_coalesced_batch_at_{top}_threads\": {max_batch_top},"
    );
    let _ = writeln!(
        json,
        "  \"tracing_overhead_ratio_at_{top}_threads\": {tracing_overhead_ratio:.4},"
    );
    let _ = writeln!(
        json,
        "  \"adaptive_vs_batched_small_k_at_{top}_threads\": {adaptive_ratio:.3},"
    );
    // Adaptive-dispatch telemetry for the small-k run: where each family's
    // queries were routed (decision fractions per engine) and the learned
    // cost model itself — per-octave ns/op table plus the fitted
    // per-family crossover points.
    let _ = writeln!(json, "  \"dispatch\": {{");
    let _ = writeln!(json, "    \"small_k_window\": {small_window},");
    let _ = writeln!(json, "    \"explore_frac\": 0.2,");
    let _ = writeln!(
        json,
        "    \"decisions\": {},",
        adaptive_small_k.dispatch.total
    );
    let _ = writeln!(
        json,
        "    \"explored\": {},",
        adaptive_small_k.dispatch.explored
    );
    let _ = writeln!(json, "    \"engine_fractions\": {{");
    for (f, name) in rc_serve::FAMILY_NAMES.iter().enumerate() {
        let comma = if f + 1 == rc_serve::FAMILY_NAMES.len() {
            ""
        } else {
            ","
        };
        let d = &adaptive_small_k.dispatch.decisions[f];
        let total = (d[0] + d[1] + d[2]) as f64;
        let frac = |c: u64| {
            if total > 0.0 {
                c as f64 / total
            } else {
                0.0
            }
        };
        let _ = writeln!(
            json,
            "      \"{name}\": {{\"batched\": {:.3}, \"independent\": {:.3}, \
             \"sequential\": {:.3}}}{comma}",
            frac(d[0]),
            frac(d[1]),
            frac(d[2]),
        );
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(
        json,
        "    \"cost_model\": {}",
        adaptive_small_k.cost_model_json
    );
    let _ = writeln!(json, "  }},");
    // Full telemetry for the pipelined closed-loop run at the top thread
    // count: the per-phase breakdown of where epoch wall time went, plus
    // the complete metrics snapshot (phase histograms, stall counters,
    // pool counters when compiled in). The fsync p99 comes from the WAL
    // run at the same thread count — the in-memory runs never fsync.
    let p = &pipelined_top.r.phase;
    let _ = writeln!(json, "  \"telemetry\": {{");
    let _ = writeln!(json, "    \"mode\": \"pipelined\",");
    let _ = writeln!(json, "    \"threads\": {top},");
    let _ = writeln!(json, "    \"recorded_epochs\": {},", p.epochs);
    let _ = writeln!(
        json,
        "    \"phase_coverage\": {:.4},",
        pipelined_top.r.phase_coverage
    );
    let _ = writeln!(json, "    \"phase_totals_ns\": {{");
    let _ = writeln!(json, "      \"drain\": {},", p.drain_ns);
    let _ = writeln!(json, "      \"admit\": {},", p.admit_ns);
    let _ = writeln!(json, "      \"commit\": {},", p.commit_ns);
    let _ = writeln!(json, "      \"wal\": {},", p.wal_ns);
    let _ = writeln!(json, "      \"publish\": {},", p.publish_ns);
    let _ = writeln!(json, "      \"backpressure\": {},", p.backpressure_ns);
    let _ = writeln!(json, "      \"handoff\": {},", p.handoff_ns);
    let _ = writeln!(json, "      \"query\": {},", p.query_ns);
    let _ = writeln!(json, "      \"respond\": {},", p.respond_ns);
    let _ = writeln!(json, "      \"wall\": {}", p.wall_ns);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"family_ns\": {{");
    for (i, name) in rc_serve::FAMILY_NAMES.iter().enumerate() {
        let comma = if i + 1 == rc_serve::FAMILY_NAMES.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "      \"{name}\": {}{comma}", p.family_ns[i]);
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"wal_fsync_p99_us\": {fsync_p99_us:.3},");
    let _ = writeln!(
        json,
        "    \"snapshot\": {}",
        pipelined_top.r.snapshot.to_json()
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("RC_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
