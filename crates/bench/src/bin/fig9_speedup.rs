//! Figure 9: query speedup vs thread count.
//!
//! The paper reports decent speedups for path/LCA and the weakest scaling
//! for batched subtree queries (atomics under contention).

use rayon::prelude::*;
use rc_bench::*;
use rc_core::SumAgg;
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

fn main() {
    println!("# Figure 9 — query speedup vs threads");
    let n = fixed_n();
    let k = *batch_sizes().last().unwrap();
    let cfg = paper_configs(n, 33).remove(0).1;
    let mut g = GeneratedForest::generate(cfg);
    let edges: Vec<(u32, u32, i64)> = g
        .edges()
        .iter()
        .map(|&(u, v, w)| (u, v, w as i64))
        .collect();
    let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
    f.batch_link(&edges).unwrap();
    let pairs = g.query_pairs(k);
    let subs = g.query_subtrees(k);
    let triples = g.query_triples(k);

    let t = Table::new(
        &format!("Speedup at k = {k}"),
        &[
            "threads",
            "path ms",
            "subtree-batched ms",
            "LCA ms",
            "subtree-indep ms",
        ],
    );
    for threads in thread_counts() {
        let (d1, d2, d3, d4) = with_threads(threads, || {
            let (_x, d1) = time_once(|| f.batch_path_aggregate(&pairs));
            let (_x, d2) = time_once(|| f.batch_subtree_aggregate(&subs));
            let (_x, d3) = time_once(|| f.batch_lca(&triples));
            let (_x, d4) = time_once(|| {
                subs.par_iter()
                    .map(|&(u, p)| f.subtree_aggregate(u, p))
                    .collect::<Vec<_>>()
            });
            (d1, d2, d3, d4)
        });
        t.row(&[threads.to_string(), ms(d1), ms(d2), ms(d3), ms(d4)]);
    }
}
