//! Run every figure harness in sequence (convenience entry point).

fn run(name: &str) {
    let exe = std::env::current_exe().unwrap();
    let dir = exe.parent().unwrap();
    let status = std::process::Command::new(dir.join(name))
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
    assert!(status.success(), "{name} failed");
}

fn main() {
    for fig in [
        "fig6_build",
        "fig7_updates",
        "fig8_queries",
        "fig9_speedup",
        "fig10_msf",
        "fig11_crossover",
        "fig12_ternary",
    ] {
        run(fig);
    }
}
