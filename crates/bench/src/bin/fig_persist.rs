//! Durability benchmarks for the `rc-store` layer, writing
//! `BENCH_persist.json`:
//!
//! 1. **WAL overhead** — coalesced serve throughput with the WAL off vs
//!    each [`SyncPolicy`] (per-epoch fsync / interval / never), same
//!    batching policy and workload.
//! 2. **Recovery vs log length** — a durable server commits streams of
//!    growing length (compaction disabled), then [`Store::open`] replays
//!    the whole WAL in epoch batches; recovery wall time is the metric.
//! 3. **Snapshot throughput** — `export_state` → encode → write
//!    (extract side) and read → decode → batch build (restore side) over
//!    a size sweep, in MB/s of snapshot bytes.
//!
//! Scale via `RC_BENCH_SCALE` (`tiny` for CI smoke); `RC_PERSIST_OUT`
//! overrides the output path.

use rc_bench::serve_driver::{coalesced_policy, run_load, LoadSpec};
use rc_bench::{scale, time_once, Table};
use rc_core::{BuildOptions, DynamicForest, ForestState};
use rc_gen::{ForestGenConfig, OpMix, RequestStream, RequestStreamConfig};
use rc_serve::{Durability, RcServe, Request, ServeConfig, SyncPolicy};
use rc_store::{snapshot, Store, StoreConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rc-fig-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn update_stream(n: usize, seed: u64) -> RequestStreamConfig {
    RequestStreamConfig {
        forest: ForestGenConfig {
            n,
            seed,
            ..Default::default()
        },
        mix: OpMix::update_heavy(),
        ..Default::default()
    }
}

struct WalRow {
    policy: &'static str,
    ops_per_sec: f64,
    p99_us: f64,
    /// `wal_fsync_ns` p99 from the run's metrics snapshot (0 when the
    /// policy never fsyncs inside the run).
    fsync_p99_us: f64,
    /// `store_append_ns` p99: serialize + buffered write per epoch.
    append_p99_us: f64,
    fsyncs: u64,
    append_bytes: u64,
}

/// §1: serve throughput with and without the WAL.
fn wal_overhead(n: usize, ops_per_thread: usize) -> Vec<WalRow> {
    let threads = 4;
    let window = 256;
    let policies: [(&'static str, Option<SyncPolicy>); 4] = [
        ("none", None),
        ("wal_per_epoch", Some(SyncPolicy::PerEpoch)),
        (
            "wal_interval_5ms",
            Some(SyncPolicy::Interval(Duration::from_millis(5))),
        ),
        ("wal_never", Some(SyncPolicy::Never)),
    ];
    let t = Table::new(
        "WAL overhead (coalesced, closed loop, update-heavy mix)",
        &[
            "durability",
            "ops/sec",
            "p99 us",
            "relative",
            "fsync p99 us",
            "append p99 us",
        ],
    );
    // Untimed warmup so the first measured row is not paying cold-cache /
    // first-allocation costs the later rows skip.
    let _ = run_load(&LoadSpec {
        threads,
        ops_per_thread: (ops_per_thread / 4).max(64),
        window,
        open_loop: false,
        stream: update_stream(n, 4242),
        server: coalesced_policy(threads, window),
        durability: None,
        obs_scrape: false,
    });
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    for (name, durability) in policies {
        let r = run_load(&LoadSpec {
            threads,
            ops_per_thread,
            window,
            open_loop: false,
            stream: update_stream(n, 4242),
            server: coalesced_policy(threads, window),
            durability,
            obs_scrape: false,
        });
        if durability.is_none() {
            baseline = r.ops_per_sec;
        }
        let fsync_p99_us = r
            .snapshot
            .histogram("wal_fsync_ns")
            .map(|s| s.p99_ns as f64 / 1e3)
            .unwrap_or(0.0);
        let append_p99_us = r
            .snapshot
            .histogram("store_append_ns")
            .map(|s| s.p99_ns as f64 / 1e3)
            .unwrap_or(0.0);
        t.row(&[
            name.into(),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.1}", r.p99_us),
            format!("{:.2}", r.ops_per_sec / baseline.max(1e-9)),
            format!("{:.1}", fsync_p99_us),
            format!("{:.1}", append_p99_us),
        ]);
        rows.push(WalRow {
            policy: name,
            ops_per_sec: r.ops_per_sec,
            p99_us: r.p99_us,
            fsync_p99_us,
            append_p99_us,
            fsyncs: r.snapshot.counter("wal_fsyncs_total").unwrap_or(0),
            append_bytes: r.snapshot.counter("store_append_bytes_total").unwrap_or(0),
        });
    }
    rows
}

struct RecoveryRow {
    ops: usize,
    epochs: u64,
    wal_bytes: u64,
    recover_ms: f64,
    replayed_ops: u64,
}

/// §2: build a WAL by serving `ops` updates, then time recovery.
fn recovery_sweep(n: usize, ops_sweep: &[usize]) -> Vec<RecoveryRow> {
    let t = Table::new(
        "Recovery time vs log length (snapshotless: full WAL replay)",
        &[
            "ops",
            "wal epochs",
            "wal KiB",
            "recover ms",
            "Kops/s replayed",
        ],
    );
    let mut rows = Vec::new();
    for &ops in ops_sweep {
        let dir = bench_dir(&format!("recovery-{ops}"));
        let durability = || {
            Durability::new(&dir, n)
                .sync_policy(SyncPolicy::Never)
                .compact_threshold(u64::MAX) // keep the whole log
        };
        let mut stream = RequestStream::new(update_stream(n, 77));
        let boot = ForestState::from_edges(n, &stream.initial_edges());
        {
            let (server, _) = RcServe::start_durable(
                ServeConfig {
                    drain_threshold: 256,
                    ..ServeConfig::default()
                },
                durability(),
                Some(&boot),
            )
            .expect("fresh durable store");
            let client = server.client();
            let mut pending = Vec::with_capacity(256);
            let mut submitted = 0usize;
            while submitted < ops {
                let burst = 256.min(ops - submitted);
                for _ in 0..burst {
                    // Only updates reach the WAL; queries would dilute the
                    // log-length axis.
                    let op = loop {
                        let op = stream.next_op();
                        if op.is_update() {
                            break op;
                        }
                    };
                    pending.push(client.submit(Request::from_stream(op)));
                }
                submitted += burst;
                for h in pending.drain(..) {
                    h.wait();
                }
            }
            server.shutdown();
        }
        let wal_bytes = std::fs::metadata(dir.join(rc_store::WAL_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        let (recovered, elapsed) = time_once(|| {
            Store::open(
                StoreConfig::new(&dir, n)
                    .sync_policy(SyncPolicy::Never)
                    .compact_threshold(u64::MAX),
            )
            .expect("recover")
        });
        let row = RecoveryRow {
            ops,
            epochs: recovered.report.replayed_epochs,
            wal_bytes,
            recover_ms: elapsed.as_secs_f64() * 1e3,
            replayed_ops: recovered.report.replayed_ops,
        };
        t.row(&[
            ops.to_string(),
            row.epochs.to_string(),
            format!("{:.1}", wal_bytes as f64 / 1024.0),
            format!("{:.2}", row.recover_ms),
            format!(
                "{:.0}",
                row.replayed_ops as f64 / elapsed.as_secs_f64().max(1e-9) / 1e3
            ),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
        rows.push(row);
    }
    rows
}

struct SnapshotRow {
    n: usize,
    bytes: u64,
    write_ms: f64,
    restore_ms: f64,
}

/// §3: snapshot write and restore throughput over a size sweep.
fn snapshot_sweep(sizes: &[usize]) -> Vec<SnapshotRow> {
    let t = Table::new(
        "Snapshot throughput (export+write vs read+batch-rebuild)",
        &[
            "n",
            "snap MiB",
            "write ms",
            "write MB/s",
            "restore ms",
            "restore MB/s",
        ],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let dir = bench_dir(&format!("snapshot-{n}"));
        std::fs::create_dir_all(&dir).unwrap();
        let stream = RequestStream::new(update_stream(n, 99));
        let mut state = ForestState::from_edges(n, &stream.initial_edges());
        for v in 0..n {
            state.weights[v] = (v as u64).wrapping_mul(0x9E37);
        }
        state.marks = (0..n as u32).step_by(64).collect();
        let forest = state
            .build_std_forest(BuildOptions::default())
            .expect("valid generated forest");

        let (path, write_t) = time_once(|| {
            let exported = forest.export_state();
            snapshot::write_snapshot(&dir, 1, &exported).expect("write snapshot")
        });
        let bytes = std::fs::metadata(&path).unwrap().len();
        let (restored, restore_t) = time_once(|| {
            let (_, s) = snapshot::read_snapshot(&path).expect("read snapshot");
            s.build_std_forest(BuildOptions::default())
                .expect("rebuild")
        });
        assert_eq!(restored.export_state(), state, "snapshot round trip");
        let mb = bytes as f64 / 1e6;
        let row = SnapshotRow {
            n,
            bytes,
            write_ms: write_t.as_secs_f64() * 1e3,
            restore_ms: restore_t.as_secs_f64() * 1e3,
        };
        t.row(&[
            n.to_string(),
            format!("{:.2}", bytes as f64 / (1 << 20) as f64),
            format!("{:.2}", row.write_ms),
            format!("{:.0}", mb / write_t.as_secs_f64().max(1e-9)),
            format!("{:.2}", row.restore_ms),
            format!("{:.0}", mb / restore_t.as_secs_f64().max(1e-9)),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
        rows.push(row);
    }
    rows
}

fn main() {
    let (n, wal_ops, recovery_sweep_ops, snap_sizes): (usize, usize, Vec<usize>, Vec<usize>) =
        match scale() {
            "large" => (
                200_000,
                8_000,
                vec![2_000, 8_000, 32_000, 128_000],
                vec![100_000, 400_000, 1_600_000],
            ),
            "tiny" => (4_000, 400, vec![200, 800], vec![5_000, 20_000]),
            _ => (
                50_000,
                4_000,
                vec![1_000, 4_000, 16_000, 64_000],
                vec![50_000, 200_000, 800_000],
            ),
        };
    println!("# fig_persist — n={n}, scale {}", scale());

    let wal_rows = wal_overhead(n, wal_ops / 4);
    let recovery_rows = recovery_sweep(n, &recovery_sweep_ops);
    let snap_rows = snapshot_sweep(&snap_sizes);

    // ---- BENCH_persist.json ----
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fig_persist\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"wal_overhead\": [");
    for (i, r) in wal_rows.iter().enumerate() {
        let comma = if i + 1 == wal_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"durability\": \"{}\", \"ops_per_sec\": {:.1}, \"p99_us\": {:.1}, \
             \"relative\": {:.4}, \"fsync_p99_us\": {:.3}, \"append_p99_us\": {:.3}, \
             \"fsyncs\": {}, \"append_bytes\": {}}}{comma}",
            r.policy,
            r.ops_per_sec,
            r.p99_us,
            r.ops_per_sec / wal_rows[0].ops_per_sec.max(1e-9),
            r.fsync_p99_us,
            r.append_p99_us,
            r.fsyncs,
            r.append_bytes,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"recovery\": [");
    for (i, r) in recovery_rows.iter().enumerate() {
        let comma = if i + 1 == recovery_rows.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"ops\": {}, \"wal_epochs\": {}, \"wal_bytes\": {}, \
             \"recover_ms\": {:.3}, \"replayed_ops\": {}}}{comma}",
            r.ops, r.epochs, r.wal_bytes, r.recover_ms, r.replayed_ops,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"snapshot\": [");
    for (i, r) in snap_rows.iter().enumerate() {
        let comma = if i + 1 == snap_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"bytes\": {}, \"write_ms\": {:.3}, \"restore_ms\": {:.3}}}{comma}",
            r.n, r.bytes, r.write_ms, r.restore_ms,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let out = std::env::var("RC_PERSIST_OUT").unwrap_or_else(|_| "BENCH_persist.json".into());
    std::fs::write(&out, json).expect("write BENCH_persist.json");
    println!("wrote {out}");
}
