//! Figure 7: batch insertions + deletions vs batch size.
//!
//! Fixed n, k connector edges deleted and re-inserted per batch, for a
//! bushy config (C1) and the many-tiny-trees config (C4, mean 1.1) which
//! the paper reports as faster ("deletion of edges results in many
//! isolated forests"). Compares against the static build cost (the paper
//! reports roughly 2x).

use rc_bench::*;
use rc_core::SumAgg;
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

fn main() {
    println!("# Figure 7 — batch insert/delete");
    let n = fixed_n();
    let t = Table::new(
        "Update time vs batch size k (delete k + insert k connectors)",
        &[
            "config",
            "k",
            "cut ms",
            "link ms",
            "total ms",
            "us per edge",
        ],
    );
    for (name, cfg) in paper_configs(n, 7) {
        if !(name.starts_with("C1") || name.starts_with("C4")) {
            continue;
        }
        for k in batch_sizes() {
            let mut g = GeneratedForest::generate(cfg);
            let edges: Vec<(u32, u32, i64)> = g
                .edges()
                .iter()
                .map(|&(u, v, w)| (u, v, w as i64))
                .collect();
            let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
            f.batch_link(&edges).unwrap();
            let dels = g.delete_batch(k);
            let ins: Vec<(u32, u32, i64)> = g
                .insert_batch(k)
                .iter()
                .map(|&(u, v, w)| (u, v, w as i64))
                .collect();
            if dels.is_empty() {
                continue;
            }
            let (_, d_cut) = time_once(|| f.batch_cut(&dels).unwrap());
            let (_, d_link) = time_once(|| f.batch_link(&ins).unwrap());
            let total = d_cut + d_link;
            t.row(&[
                name.into(),
                k.to_string(),
                ms(d_cut),
                ms(d_link),
                ms(total),
                format!(
                    "{:.2}",
                    total.as_secs_f64() * 1e6 / (dels.len() + ins.len()) as f64
                ),
            ]);
        }
    }
    println!("\n(static build reference for the 2x comparison: see fig6_build)");
}
