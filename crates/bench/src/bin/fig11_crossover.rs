//! Figure 11: independent parallel subtree queries vs the batched
//! algorithm at large n — the batched version wins for large k.

use rayon::prelude::*;
use rc_bench::*;
use rc_core::SumAgg;
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

fn main() {
    println!("# Figure 11 — subtree vs batched subtree crossover");
    let n = match scale() {
        "large" => 1_000_000,
        "tiny" => 50_000,
        _ => 300_000,
    };
    let cfg = paper_configs(n, 5).remove(0).1;
    let mut g = GeneratedForest::generate(cfg);
    let edges: Vec<(u32, u32, i64)> = g
        .edges()
        .iter()
        .map(|&(u, v, w)| (u, v, w as i64))
        .collect();
    let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
    f.batch_link(&edges).unwrap();

    let t = Table::new(
        &format!("n = {n}"),
        &["k", "independent ms", "batched ms", "batched/independent"],
    );
    let mut ks = batch_sizes();
    ks.push(ks.last().unwrap() * 10);
    for k in ks {
        let subs = g.query_subtrees(k);
        let (_a, d_ind) = time_once(|| {
            subs.par_iter()
                .map(|&(u, p)| f.subtree_aggregate(u, p))
                .collect::<Vec<_>>()
        });
        let (_b, d_bat) = time_once(|| f.batch_subtree_aggregate(&subs));
        t.row(&[
            k.to_string(),
            ms(d_ind),
            ms(d_bat),
            format!("{:.2}", d_bat.as_secs_f64() / d_ind.as_secs_f64()),
        ]);
    }
}
