//! Figure 10: batch-incremental MSF.
//!
//! Time vs batch size with the paper's breakdown: compressed-path-tree
//! generation ~ batch-insertion cost, Kruskal negligible.

use rc_bench::*;
use rc_msf::IncrementalMsf;
use rc_parlay::rng::SplitMix64;

fn main() {
    println!("# Figure 10 — incremental MSF");
    let n = fixed_n();
    let t = Table::new(
        "Incremental MSF batch times (ms)",
        &[
            "k",
            "total",
            "cpt gen",
            "kruskal",
            "forest update",
            "inserted",
            "evicted",
        ],
    );
    for k in batch_sizes() {
        let mut rng = SplitMix64::new(77);
        let mut msf = IncrementalMsf::new(n);
        // Warm up with a random spanning structure.
        let warm: Vec<(u32, u32, u64)> = (1..n as u32)
            .map(|v| {
                (
                    rng.next_below(v as u64) as u32,
                    v,
                    1 + rng.next_below(1_000_000),
                )
            })
            .collect();
        msf.insert_batch(&warm);
        // The measured batch.
        let batch: Vec<(u32, u32, u64)> = (0..k)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                    1 + rng.next_below(1_000_000),
                )
            })
            .collect();
        let (stats, tm) = msf.insert_batch_timed(&batch);
        t.row(&[
            k.to_string(),
            ms(tm.total),
            ms(tm.cpt),
            ms(tm.kruskal),
            ms(tm.forest_update),
            stats.inserted.to_string(),
            stats.evicted.to_string(),
        ]);
    }
}
