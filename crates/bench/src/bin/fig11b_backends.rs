//! Figure 11b — the backend crossover: batched RC-tree queries vs the
//! sequential link-cut baseline, per query family, across a batch-size
//! sweep.
//!
//! This is the experiment the paper frames its headline claim around:
//! answering a batch of k queries with one `O(k log(1 + n/k))` marked
//! sweep beats k independent `O(log n)` sequential operations once k is
//! large enough. Three series per family:
//!
//! * `rc_batched` — one native batch call on the RC forest;
//! * `rc_independent` — k single-query calls on the RC forest (each
//!   walks its own ancestor chains);
//! * `lct_sequential` — k single operations on the splay link-cut tree.
//!
//! Writes `BENCH_crossover.json` (override with `RC_CROSSOVER_OUT`);
//! scale via `RC_BENCH_SCALE` (`tiny` for the CI smoke).

use rc_bench::{ms, scale, Table};
use rc_core::{BuildOptions, DynamicForest, RcForest, StdAgg};
use rc_gen::{ForestGenConfig, RequestStream, RequestStreamConfig};
use rc_lct::LctForest;
use rc_parlay::rng::SplitMix64;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const BACKENDS: [&str; 3] = ["rc_batched", "rc_independent", "lct_sequential"];

struct Sample {
    family: &'static str,
    backend: &'static str,
    k: usize,
    d: Duration,
}

/// Median of `reps` runs (more reps at small k to tame noise).
fn measure(k: usize, mut f: impl FnMut()) -> Duration {
    let reps = (2_000 / k.max(1)).clamp(1, 9);
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let n = match scale() {
        "large" => 1_000_000,
        "tiny" => 20_000,
        _ => 200_000,
    };
    let mut ks = rc_bench::batch_sizes();
    ks.push(ks.last().unwrap() * 10);
    println!("# Figure 11b — RC batched vs LCT sequential vs RC independent (n = {n})");

    // Degree-capped initial forest shared by both backends.
    let stream = RequestStream::new(RequestStreamConfig {
        forest: ForestGenConfig {
            n,
            seed: 0xF11B,
            max_weight: 1_000,
            ..Default::default()
        },
        ..Default::default()
    });
    let initial = stream.initial_edges();
    let mut rc = RcForest::<StdAgg>::build_edges(n, &initial, BuildOptions::default()).unwrap();
    let mut lct = LctForest::with_max_degree(n, Some(3));
    DynamicForest::batch_link(&mut lct, &initial).unwrap();

    let mut rng = SplitMix64::new(0xF11B_5EED);
    let mut samples: Vec<Sample> = Vec::new();
    let max_k = *ks.last().unwrap();
    let rnd = |rng: &mut SplitMix64| rng.next_below(n as u64) as u32;
    let pairs: Vec<(u32, u32)> = (0..max_k).map(|_| (rnd(&mut rng), rnd(&mut rng))).collect();
    let triples: Vec<(u32, u32, u32)> = (0..max_k)
        .map(|_| (rnd(&mut rng), rnd(&mut rng), rnd(&mut rng)))
        .collect();
    let subs: Vec<(u32, u32)> = (0..max_k)
        .map(|_| {
            let (u, v, _) = initial[rng.next_below(initial.len() as u64) as usize];
            if rng.next_f64() < 0.5 {
                (u, v)
            } else {
                (v, u)
            }
        })
        .collect();

    // ---- query families ----
    for family in ["connected", "path_sum", "bottleneck", "lca", "subtree_sum"] {
        let t = Table::new(
            &format!("{family} (n = {n})"),
            &[
                "k",
                "rc batched ms",
                "rc independent ms",
                "lct ms",
                "lct/batched",
            ],
        );
        for &k in &ks {
            let mut row: Vec<Duration> = Vec::new();
            for backend in BACKENDS {
                let d = match family {
                    "connected" => {
                        let q = &pairs[..k];
                        match backend {
                            "rc_batched" => measure(k, || {
                                std::hint::black_box(DynamicForest::batch_connected(&mut rc, q));
                            }),
                            "rc_independent" => measure(k, || {
                                for &(u, v) in q {
                                    std::hint::black_box(DynamicForest::connected(&mut rc, u, v));
                                }
                            }),
                            _ => measure(k, || {
                                for &(u, v) in q {
                                    std::hint::black_box(lct.connected(u, v));
                                }
                            }),
                        }
                    }
                    "path_sum" => {
                        let q = &pairs[..k];
                        match backend {
                            "rc_batched" => measure(k, || {
                                std::hint::black_box(DynamicForest::batch_path_sum(&mut rc, q));
                            }),
                            "rc_independent" => measure(k, || {
                                for &(u, v) in q {
                                    std::hint::black_box(DynamicForest::path_sum(&mut rc, u, v));
                                }
                            }),
                            _ => measure(k, || {
                                for &(u, v) in q {
                                    std::hint::black_box(lct.path_sum(u, v));
                                }
                            }),
                        }
                    }
                    "bottleneck" => {
                        let q = &pairs[..k];
                        match backend {
                            "rc_batched" => measure(k, || {
                                std::hint::black_box(DynamicForest::batch_path_extrema(&mut rc, q));
                            }),
                            "rc_independent" => measure(k, || {
                                for &(u, v) in q {
                                    std::hint::black_box(DynamicForest::path_extrema(
                                        &mut rc, u, v,
                                    ));
                                }
                            }),
                            _ => measure(k, || {
                                for &(u, v) in q {
                                    std::hint::black_box(lct.path_extrema(u, v));
                                }
                            }),
                        }
                    }
                    "lca" => {
                        let q = &triples[..k];
                        match backend {
                            "rc_batched" => measure(k, || {
                                std::hint::black_box(DynamicForest::batch_lca(&mut rc, q));
                            }),
                            "rc_independent" => measure(k, || {
                                for &(u, v, r) in q {
                                    std::hint::black_box(DynamicForest::lca(&mut rc, u, v, r));
                                }
                            }),
                            _ => measure(k, || {
                                for &(u, v, r) in q {
                                    std::hint::black_box(lct.lca(u, v, r));
                                }
                            }),
                        }
                    }
                    _ => {
                        let q = &subs[..k];
                        match backend {
                            "rc_batched" => measure(k, || {
                                std::hint::black_box(DynamicForest::batch_subtree_sum(&mut rc, q));
                            }),
                            "rc_independent" => measure(k, || {
                                for &(v, p) in q {
                                    std::hint::black_box(DynamicForest::subtree_sum(&mut rc, v, p));
                                }
                            }),
                            _ => measure(k, || {
                                for &(v, p) in q {
                                    std::hint::black_box(lct.subtree_sum(v, p));
                                }
                            }),
                        }
                    }
                };
                samples.push(Sample {
                    family,
                    backend,
                    k,
                    d,
                });
                row.push(d);
            }
            t.row(&[
                k.to_string(),
                ms(row[0]),
                ms(row[1]),
                ms(row[2]),
                format!(
                    "{:.2}",
                    row[2].as_secs_f64() / row[0].as_secs_f64().max(1e-12)
                ),
            ]);
        }
    }

    // ---- update family: cut k edges, relink them ----
    {
        let t = Table::new(
            &format!("updates: cut+relink (n = {n})"),
            &[
                "k",
                "rc batched ms",
                "rc independent ms",
                "lct ms",
                "lct/batched",
            ],
        );
        for &k in &ks {
            let k = k.min(initial.len());
            // Distinct random edges of the (restored) initial forest.
            let mut idx: Vec<usize> = (0..initial.len()).collect();
            for i in 0..k {
                let j = i + rng.next_below((idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let batch: Vec<(u32, u32, u64)> = idx[..k].iter().map(|&i| initial[i]).collect();
            let cuts: Vec<(u32, u32)> = batch.iter().map(|&(u, v, _)| (u, v)).collect();
            let mut row: Vec<Duration> = Vec::new();
            // rc batched: one batch_cut + one batch_link.
            let t0 = Instant::now();
            DynamicForest::batch_cut(&mut rc, &cuts).unwrap();
            DynamicForest::batch_link(&mut rc, &batch).unwrap();
            row.push(t0.elapsed());
            // rc independent: singles.
            let t0 = Instant::now();
            for &(u, v) in &cuts {
                DynamicForest::cut(&mut rc, u, v).unwrap();
            }
            for &(u, v, w) in &batch {
                DynamicForest::link(&mut rc, u, v, w).unwrap();
            }
            row.push(t0.elapsed());
            // lct: singles.
            let t0 = Instant::now();
            for &(u, v) in &cuts {
                lct.cut(u, v).unwrap();
            }
            for &(u, v, w) in &batch {
                lct.link(u, v, w).unwrap();
            }
            row.push(t0.elapsed());
            for (i, backend) in BACKENDS.iter().enumerate() {
                samples.push(Sample {
                    family: "updates",
                    backend,
                    k,
                    d: row[i],
                });
            }
            t.row(&[
                k.to_string(),
                ms(row[0]),
                ms(row[1]),
                ms(row[2]),
                format!(
                    "{:.2}",
                    row[2].as_secs_f64() / row[0].as_secs_f64().max(1e-12)
                ),
            ]);
        }
    }

    // ---- BENCH_crossover.json ----
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fig11b_backends\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(
        json,
        "  \"backends\": [\"rc_batched\", \"rc_independent\", \"lct_sequential\"],"
    );
    let _ = writeln!(json, "  \"series\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let secs = s.d.as_secs_f64();
        let _ = writeln!(
            json,
            "    {{\"family\": \"{}\", \"backend\": \"{}\", \"k\": {}, \"ms\": {:.4}, \
             \"ops_per_sec\": {:.1}}}{comma}",
            s.family,
            s.backend,
            s.k,
            secs * 1e3,
            s.k as f64 / secs.max(1e-12),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let out = std::env::var("RC_CROSSOVER_OUT").unwrap_or_else(|_| "BENCH_crossover.json".into());
    std::fs::write(&out, json).expect("write BENCH_crossover.json");
    println!("\nwrote {out}");
}
