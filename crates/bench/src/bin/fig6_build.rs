//! Figure 6: static RC-tree construction.
//!
//! Series: build time vs n for the four forest configurations; randomized
//! IS vs deterministic chain-coloring MIS; thread-count speedup; and the
//! depth-insensitivity observation ("the depth of the tree does not
//! affect the generation time").

use rc_bench::*;
use rc_core::{BuildOptions, ContractionMode, RcForest, SumAgg};
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

fn build_once(n: usize, edges: &[(u32, u32, u64)], mode: ContractionMode) -> std::time::Duration {
    let e64: Vec<(u32, u32, i64)> = edges.iter().map(|&(u, v, w)| (u, v, w as i64)).collect();
    let (_f, d) = time_once(|| {
        let mut t = TernaryForest::<SumAgg<i64>>::new(n, 0);
        // Deterministic mode applies to the static core build; exercise it
        // by building the inner forest directly when no ternarization is
        // needed. For the general pipeline we time ternary construction.
        let _ = mode;
        t.batch_link(&e64).unwrap();
        t
    });
    d
}

fn main() {
    println!("# Figure 6 — static tree construction");
    let t = Table::new(
        "Build time vs n (ternarized pipeline, all configs)",
        &["config", "n", "edges", "build ms", "ms per 100k vertices"],
    );
    for n in build_sizes() {
        for (name, cfg) in paper_configs(n, 1) {
            let g = GeneratedForest::generate(cfg);
            let edges = g.edges();
            let d = build_once(n, &edges, ContractionMode::Randomized);
            t.row(&[
                name.into(),
                n.to_string(),
                edges.len().to_string(),
                ms(d),
                format!("{:.3}", d.as_secs_f64() * 1e3 / (n as f64 / 1e5)),
            ]);
        }
    }

    let n = fixed_n();
    let t2 = Table::new(
        "Randomized IS vs deterministic chain-coloring MIS (core forest, degree-capped chains)",
        &["mode", "n", "build ms", "levels"],
    );
    // Pure chains are degree <= 2: buildable without ternarization in both modes.
    let edges: Vec<(u32, u32, i64)> = (0..n as u32 - 1).map(|i| (i, i + 1, 1)).collect();
    for (label, mode) in [
        ("randomized", ContractionMode::Randomized),
        ("deterministic MIS", ContractionMode::Deterministic),
    ] {
        let (f, d) = time_once(|| {
            RcForest::<SumAgg<i64>>::build_edges(
                n,
                &edges,
                BuildOptions {
                    mode,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        t2.row(&[
            label.into(),
            n.to_string(),
            ms(d),
            f.num_levels().to_string(),
        ]);
    }

    let t3 = Table::new(
        "Thread-count speedup (config C1)",
        &["threads", "build ms", "speedup"],
    );
    let cfg = paper_configs(n, 2).remove(0).1;
    let edges = GeneratedForest::generate(cfg).edges();
    let mut base = None;
    for threads in thread_counts() {
        let d = with_threads(threads, || {
            build_once(n, &edges, ContractionMode::Randomized)
        });
        let b = *base.get_or_insert(d.as_secs_f64());
        t3.row(&[
            threads.to_string(),
            ms(d),
            format!("{:.2}x", b / d.as_secs_f64()),
        ]);
    }

    let t4 = Table::new(
        "Depth insensitivity (ln sweep, n fixed)",
        &["ln", "build ms"],
    );
    for lnp in [0.05, 0.5, 0.95] {
        let cfg = rc_gen::ForestGenConfig {
            n,
            ln_prob: lnp,
            seed: 3,
            ..Default::default()
        };
        let edges = GeneratedForest::generate(cfg).edges();
        let d = build_once(n, &edges, ContractionMode::Randomized);
        t4.row(&[format!("{lnp}"), ms(d)]);
    }
}
