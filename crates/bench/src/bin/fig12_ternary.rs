//! Extension figure: ternarization overhead (Theorems 4.1–4.2) — inner
//! edges per real operation and translation time.

use rc_bench::*;
use rc_core::SumAgg;
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

fn main() {
    println!("# Figure 12 (extension) — ternarization overhead");
    let n = fixed_n();
    let t = Table::new(
        "Inner-forest growth per real operation",
        &[
            "k",
            "inner edges before",
            "after k links",
            "after k cuts",
            "inner/real ratio",
        ],
    );
    for k in batch_sizes() {
        let cfg = paper_configs(n, 11).remove(0).1;
        let mut g = GeneratedForest::generate(cfg);
        let edges: Vec<(u32, u32, i64)> = g
            .edges()
            .iter()
            .map(|&(u, v, w)| (u, v, w as i64))
            .collect();
        let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
        f.batch_link(&edges).unwrap();
        let before = f.inner().num_edges();
        let dels = g.delete_batch(k);
        let ins: Vec<(u32, u32, i64)> = g
            .insert_batch(k)
            .iter()
            .map(|&(u, v, w)| (u, v, w as i64))
            .collect();
        f.batch_cut(&dels).unwrap();
        let after_cuts = f.inner().num_edges();
        f.batch_link(&ins).unwrap();
        let after_links = f.inner().num_edges();
        t.row(&[
            k.to_string(),
            before.to_string(),
            after_links.to_string(),
            after_cuts.to_string(),
            format!(
                "{:.2}",
                f.inner().num_edges() as f64 / f.num_edges().max(1) as f64
            ),
        ]);
    }
    println!("\nTheorem 4.2: each real add contributes exactly 3 inner edges;");
    println!("each real delete removes at most 5 and adds at most 2.");
}
