//! Figure 9b — end-to-end speedup vs thread count on the persistent pool.
//!
//! The companion to `fig9_speedup` (which sweeps query batches on the
//! ternary forest only): this bin sweeps **threads × {build, updates, each
//! query family}** on both the RC forest and the ternary forest, and
//! writes the machine-readable `BENCH_speedup.json` so the repo's
//! multi-thread perf trajectory is tracked from the moment the executor
//! became a real pool. The paper's Fig. 9 frames the same claim: batched
//! dynamic-tree operations should scale with threads.
//!
//! Per (backend, family, threads) cell the JSON records the median wall
//! time and the speedup against the 1-thread run of the same cell.
//! `machine_parallelism` is recorded too: on hosts with fewer cores than
//! the sweep's thread counts the pool is oversubscribed and speedups
//! flatten at the hardware limit — the field is what makes those numbers
//! interpretable.
//!
//! Output: `BENCH_speedup.json` (override with `RC_SPEEDUP_OUT`); scale
//! via `RC_BENCH_SCALE` (`tiny` for the CI smoke).

use rc_bench::{ms, scale, speedup_thread_counts, with_threads, Table};
use rc_core::{BuildOptions, DynamicForest, RcForest, StdAgg};
use rc_gen::{ForestGenConfig, RequestStream, RequestStreamConfig};
use rc_parlay::rng::SplitMix64;
use rc_ternary::TernaryStdForest;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const FAMILIES: [&str; 6] = [
    "build",
    "updates",
    "connected",
    "path_sum",
    "lca",
    "subtree_sum",
];

struct Sample {
    backend: &'static str,
    family: &'static str,
    threads: usize,
    d: Duration,
}

/// Median of `reps` runs.
fn measure(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Workload shared by both backends.
struct Workload {
    n: usize,
    initial: Vec<(u32, u32, u64)>,
    pairs: Vec<(u32, u32)>,
    triples: Vec<(u32, u32, u32)>,
    subs: Vec<(u32, u32)>,
    cut_batch: Vec<(u32, u32, u64)>,
}

impl Workload {
    fn generate(n: usize, k: usize) -> Workload {
        let stream = RequestStream::new(RequestStreamConfig {
            forest: ForestGenConfig {
                n,
                seed: 0xF19B,
                max_weight: 1_000,
                ..Default::default()
            },
            ..Default::default()
        });
        let initial = stream.initial_edges();
        let mut rng = SplitMix64::new(0xF19B_5EED);
        let rnd = |rng: &mut SplitMix64| rng.next_below(n as u64) as u32;
        let pairs: Vec<(u32, u32)> = (0..k).map(|_| (rnd(&mut rng), rnd(&mut rng))).collect();
        let triples: Vec<(u32, u32, u32)> = (0..k)
            .map(|_| (rnd(&mut rng), rnd(&mut rng), rnd(&mut rng)))
            .collect();
        let subs: Vec<(u32, u32)> = (0..k)
            .map(|_| {
                let (u, v, _) = initial[rng.next_below(initial.len() as u64) as usize];
                if rng.next_f64() < 0.5 {
                    (u, v)
                } else {
                    (v, u)
                }
            })
            .collect();
        // Distinct random edges of the initial forest for the update family.
        let mut idx: Vec<usize> = (0..initial.len()).collect();
        let kk = k.min(initial.len());
        for i in 0..kk {
            let j = i + rng.next_below((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        let cut_batch: Vec<(u32, u32, u64)> = idx[..kk].iter().map(|&i| initial[i]).collect();
        Workload {
            n,
            initial,
            pairs,
            triples,
            subs,
            cut_batch,
        }
    }
}

/// Run every family at `threads` threads on one backend; `build` constructs
/// a fresh forest from the initial edges (timed as the "build" family).
fn run_backend<B, F>(w: &Workload, threads: usize, reps: usize, build: F) -> Vec<Duration>
where
    B: DynamicForest,
    F: Fn(&Workload) -> B + Sync + Send,
{
    with_threads(threads, || {
        let mut out = Vec::with_capacity(FAMILIES.len());
        // build — the previous rep's forest is dropped *outside* the timed
        // region: deallocation is sequential and would otherwise dampen
        // the build family's speedup at every thread count.
        let mut forest = None;
        let mut times: Vec<Duration> = (0..reps.max(1))
            .map(|_| {
                forest = None;
                let t0 = Instant::now();
                forest = Some(build(w));
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        out.push(times[times.len() / 2]);
        let mut f = forest.expect("build ran at least once");
        // updates: cut a batch of tree edges, then relink them (forest is
        // restored, so the query families below see the same structure).
        let cuts: Vec<(u32, u32)> = w.cut_batch.iter().map(|&(u, v, _)| (u, v)).collect();
        out.push(measure(reps, || {
            f.batch_cut(&cuts).expect("cut existing edges");
            f.batch_link(&w.cut_batch).expect("relink the same edges");
        }));
        // query families
        out.push(measure(reps, || {
            std::hint::black_box(f.batch_connected(&w.pairs));
        }));
        out.push(measure(reps, || {
            std::hint::black_box(f.batch_path_sum(&w.pairs));
        }));
        out.push(measure(reps, || {
            std::hint::black_box(f.batch_lca(&w.triples));
        }));
        out.push(measure(reps, || {
            std::hint::black_box(f.batch_subtree_sum(&w.subs));
        }));
        out
    })
}

fn main() {
    let (n, reps) = match scale() {
        "large" => (1_000_000, 3),
        "tiny" => (20_000, 3),
        _ => (200_000, 3),
    };
    let k = match scale() {
        "large" => 100_000,
        "tiny" => 1_000,
        _ => 10_000,
    };
    let threads = speedup_thread_counts();
    let machine = std::thread::available_parallelism().map_or(1, |x| x.get());
    println!(
        "# Figure 9b — speedup vs threads (n = {n}, k = {k}, machine parallelism = {machine})"
    );

    let w = Workload::generate(n, k);
    let mut samples: Vec<Sample> = Vec::new();

    for backend in ["rc", "ternary"] {
        let t = Table::new(
            &format!("{backend} (n = {n}, k = {k})"),
            &[
                "threads",
                "build ms",
                "updates ms",
                "connected ms",
                "path_sum ms",
                "lca ms",
                "subtree_sum ms",
            ],
        );
        // Untimed warmup: the first-ever build in the process pays the
        // allocator's page faults, which would otherwise be billed to the
        // 1-thread cells and fake a "speedup" at higher thread counts.
        let _ = match backend {
            "rc" => run_backend(&w, 1, 1, |w: &Workload| {
                RcForest::<StdAgg>::build_edges(w.n, &w.initial, BuildOptions::default())
                    .expect("valid initial forest")
            }),
            _ => run_backend(&w, 1, 1, |w: &Workload| {
                let mut f = TernaryStdForest::new_std(w.n);
                DynamicForest::batch_link(&mut f, &w.initial).expect("valid initial forest");
                f
            }),
        };
        for &threads in &threads {
            let ds = match backend {
                "rc" => run_backend(&w, threads, reps, |w: &Workload| {
                    RcForest::<StdAgg>::build_edges(w.n, &w.initial, BuildOptions::default())
                        .expect("valid initial forest")
                }),
                _ => run_backend(&w, threads, reps, |w: &Workload| {
                    let mut f = TernaryStdForest::new_std(w.n);
                    DynamicForest::batch_link(&mut f, &w.initial).expect("valid initial forest");
                    f
                }),
            };
            let mut row = vec![threads.to_string()];
            for (family, &d) in FAMILIES.iter().zip(&ds) {
                samples.push(Sample {
                    backend,
                    family,
                    threads,
                    d,
                });
                row.push(ms(d));
            }
            t.row(&row);
        }
    }

    // ---- BENCH_speedup.json ----
    let base_ms = |backend: &str, family: &str| {
        samples
            .iter()
            .find(|s| s.backend == backend && s.family == family && s.threads == 1)
            .map(|s| s.d.as_secs_f64())
            .unwrap_or(0.0)
    };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fig9b_speedup\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"k\": {k},");
    let _ = writeln!(json, "  \"machine_parallelism\": {machine},");
    let _ = writeln!(
        json,
        "  \"threads\": [{}],",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"series\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let secs = s.d.as_secs_f64();
        let speedup = base_ms(s.backend, s.family) / secs.max(1e-12);
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"family\": \"{}\", \"threads\": {}, \"ms\": {:.4}, \
             \"speedup_vs_1t\": {:.3}}}{comma}",
            s.backend,
            s.family,
            s.threads,
            secs * 1e3,
            speedup,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let out = std::env::var("RC_SPEEDUP_OUT").unwrap_or_else(|_| "BENCH_speedup.json".into());
    std::fs::write(&out, json).expect("write BENCH_speedup.json");
    println!("\nwrote {out}");
}
