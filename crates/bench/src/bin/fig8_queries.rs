//! Figure 8: batch query times vs batch size.
//!
//! Series per k: batch path sums, subtree queries (independent, in
//! parallel), batched subtree queries, and batch LCA — the paper reports
//! LCA about an order of magnitude slower than path/subtree.

use rayon::prelude::*;
use rc_bench::*;
use rc_core::SumAgg;
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

pub fn setup(n: usize) -> (TernaryForest<SumAgg<i64>>, GeneratedForest) {
    let cfg = paper_configs(n, 21).remove(0).1;
    let g = GeneratedForest::generate(cfg);
    let edges: Vec<(u32, u32, i64)> = g
        .edges()
        .iter()
        .map(|&(u, v, w)| (u, v, w as i64))
        .collect();
    let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
    f.batch_link(&edges).unwrap();
    (f, g)
}

fn main() {
    println!("# Figure 8 — batch query time vs k");
    let n = fixed_n();
    let (f, mut g) = setup(n);
    let t = Table::new(
        "Query batch times (ms)",
        &[
            "k",
            "path (batch)",
            "subtree (indep-parallel)",
            "subtree (batched)",
            "LCA (batch)",
        ],
    );
    for k in batch_sizes() {
        let pairs = g.query_pairs(k);
        let subs = g.query_subtrees(k);
        let triples = g.query_triples(k);

        let (_r1, d_path) = time_once(|| f.batch_path_aggregate(&pairs));
        let (_r2, d_sub_ind) = time_once(|| {
            subs.par_iter()
                .map(|&(u, p)| f.subtree_aggregate(u, p))
                .collect::<Vec<_>>()
        });
        let (_r3, d_sub_batch) = time_once(|| f.batch_subtree_aggregate(&subs));
        let (_r4, d_lca) = time_once(|| f.batch_lca(&triples));
        t.row(&[
            k.to_string(),
            ms(d_path),
            ms(d_sub_ind),
            ms(d_sub_batch),
            ms(d_lca),
        ]);
    }
}
