//! Benchmark harness regenerating the paper's evaluation (Figs 6–11).
//!
//! Every figure has a binary (`fig6_build` … `fig12_ternary`) printing the
//! series the paper plots as a markdown/CSV table. Scale defaults target a
//! laptop-class machine; set `RC_BENCH_SCALE=large` for bigger inputs.
//! EXPERIMENTS.md records paper-shape vs measured-shape per figure.

pub mod serve_driver;

use std::time::{Duration, Instant};

/// Median wall time of `reps` runs of `f` (re-preparing state via `setup`).
pub fn time_median<S, F: FnMut(&mut S), P: FnMut() -> S>(
    mut setup: P,
    mut f: F,
    reps: usize,
) -> Duration {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let mut s = setup();
        let t0 = Instant::now();
        f(&mut s);
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    times[times.len() / 2]
}

/// Wall time of a single run.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Run `f` on a scoped rayon pool with `threads` workers.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
        .install(f)
}

/// Scale selector for the figure binaries.
pub fn scale() -> &'static str {
    match std::env::var("RC_BENCH_SCALE").as_deref() {
        Ok("large") => "large",
        Ok("tiny") => "tiny",
        _ => "default",
    }
}

/// `n` values for build-time sweeps (Fig 6).
pub fn build_sizes() -> Vec<usize> {
    match scale() {
        "large" => vec![100_000, 300_000, 1_000_000, 3_000_000],
        "tiny" => vec![5_000, 10_000],
        _ => vec![20_000, 50_000, 100_000, 200_000],
    }
}

/// Fixed `n` for update/query sweeps (Figs 7–9).
pub fn fixed_n() -> usize {
    match scale() {
        "large" => 1_000_000,
        "tiny" => 20_000,
        _ => 100_000,
    }
}

/// Batch sizes `k` for update/query sweeps.
pub fn batch_sizes() -> Vec<usize> {
    match scale() {
        "large" => vec![100, 1_000, 10_000, 100_000],
        "tiny" => vec![10, 100, 1_000],
        _ => vec![10, 100, 1_000, 10_000],
    }
}

/// Threads to sweep (the machine's cores, plus 1 for speedup baselines).
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(2, |x| x.get());
    let mut out = vec![1];
    let mut t = 2;
    while t <= max {
        out.push(t);
        t *= 2;
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

/// Threads to sweep for the `fig9b_speedup` scaling trajectory: always
/// 1, 2 and 4 (so `BENCH_speedup.json` records comparable points across
/// machines — on hosts with fewer cores the pool is oversubscribed, which
/// the file's `machine_parallelism` field makes visible), plus higher
/// powers of two and the machine size on larger hosts.
pub fn speedup_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |x| x.get());
    let mut out = vec![1, 2, 4];
    let mut t = 8;
    while t <= max {
        out.push(t);
        t *= 2;
    }
    if max > 4 && *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

/// Markdown table printer.
pub struct Table {
    cols: Vec<String>,
}

impl Table {
    /// Start a table; prints the header immediately.
    pub fn new(title: &str, cols: &[&str]) -> Self {
        println!("\n### {title}\n");
        println!("| {} |", cols.join(" | "));
        println!(
            "|{}|",
            cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        Table {
            cols: cols.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Print one row.
    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.cols.len());
        println!("| {} |", cells.join(" | "));
    }
}

/// Milliseconds with 3 digits.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}
