//! Criterion smoke for the `rc-serve` coalescer: end-to-end closed-loop
//! load, coalesced vs forced size-1 epochs. The full trajectory (thread
//! sweeps, open loop, BENCH_serve.json) lives in the `serve_load` binary;
//! this bench keeps the serving path on the CI radar.

use criterion::{criterion_group, criterion_main, Criterion};
use rc_bench::serve_driver::{coalesced_policy, default_stream, run_load, LoadSpec};
use rc_serve::ServeConfig;

fn bench_serve(c: &mut Criterion) {
    let tiny = rc_bench::scale() == "tiny";
    let (n, ops) = if tiny { (2_000, 150) } else { (20_000, 1_000) };
    let threads = 4;
    let window = 32;
    let mut g = c.benchmark_group("serve_throughput");
    g.bench_function("coalesced/closed-4t", |b| {
        b.iter(|| {
            run_load(&LoadSpec {
                threads,
                ops_per_thread: ops,
                window,
                open_loop: false,
                stream: default_stream(n, 7),
                server: coalesced_policy(threads, window),
                durability: None,
                obs_scrape: false,
            })
            .ops
        })
    });
    g.bench_function("size1/closed-4t", |b| {
        b.iter(|| {
            run_load(&LoadSpec {
                threads,
                ops_per_thread: ops,
                window,
                open_loop: false,
                stream: default_stream(n, 7),
                server: ServeConfig::unbatched(),
                durability: None,
                obs_scrape: false,
            })
            .ops
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench_serve
}
criterion_main!(benches);
