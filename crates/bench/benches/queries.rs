//! Criterion benchmarks for the batch query families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::SumAgg;
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

fn setup(n: usize) -> (TernaryForest<SumAgg<i64>>, GeneratedForest) {
    let cfg = paper_configs(n, 9).remove(0).1;
    let g = GeneratedForest::generate(cfg);
    let edges: Vec<(u32, u32, i64)> = g
        .edges()
        .iter()
        .map(|&(u, v, w)| (u, v, w as i64))
        .collect();
    let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
    f.batch_link(&edges).unwrap();
    (f, g)
}

fn bench_queries(c: &mut Criterion) {
    let n = 100_000usize;
    let (f, mut g) = setup(n);
    let mut grp = c.benchmark_group("queries");
    for k in [100usize, 10_000] {
        let pairs = g.query_pairs(k);
        let subs = g.query_subtrees(k);
        let triples = g.query_triples(k);
        grp.bench_with_input(BenchmarkId::new("batch_connected", k), &k, |b, _| {
            b.iter(|| f.batch_connected(&pairs));
        });
        grp.bench_with_input(BenchmarkId::new("batch_path_sum", k), &k, |b, _| {
            b.iter(|| f.batch_path_aggregate(&pairs));
        });
        grp.bench_with_input(BenchmarkId::new("batch_subtree", k), &k, |b, _| {
            b.iter(|| f.batch_subtree_aggregate(&subs));
        });
        grp.bench_with_input(BenchmarkId::new("batch_lca", k), &k, |b, _| {
            b.iter(|| f.batch_lca(&triples));
        });
        grp.bench_with_input(BenchmarkId::new("compressed_path_tree", k), &k, |b, _| {
            let terms: Vec<u32> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
            b.iter(|| f.compressed_path_tree(&terms));
        });
    }
    grp.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries
}
criterion_main!(benches);
