//! Criterion micro-benchmarks for the parallel substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_parlay::rng::SplitMix64;

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    for n in [10_000usize, 1_000_000] {
        g.bench_with_input(BenchmarkId::new("exclusive_u64", n), &n, |b, &n| {
            let xs: Vec<u64> = (0..n as u64).collect();
            b.iter(|| {
                let mut ys = xs.clone();
                rc_parlay::scan::scan_exclusive_u64(&mut ys)
            });
        });
    }
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    c.bench_function("pack_index_1M", |b| {
        b.iter(|| rc_parlay::pack::pack_index(1_000_000, |i| i % 3 == 0));
    });
}

fn bench_semisort(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    let pairs: Vec<(u64, u32)> = (0..200_000u32)
        .map(|i| (rng.next_below(5_000), i))
        .collect();
    c.bench_function("group_by_200k", |b| {
        b.iter(|| rc_parlay::semisort::group_by_key(&pairs, 7));
    });
}

fn bench_hashtable(c: &mut Criterion) {
    c.bench_function("concurrent_map_insert_get_100k", |b| {
        b.iter(|| {
            let m = rc_parlay::hashtable::ConcurrentMap::with_capacity(100_000);
            rc_parlay::parallel_for(100_000, |i| {
                m.insert(i as u64, i as u64);
            });
            rc_parlay::parallel_for(100_000, |i| {
                assert!(m.get(i as u64).is_some());
            });
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scan, bench_pack, bench_semisort, bench_hashtable
}
criterion_main!(benches);
