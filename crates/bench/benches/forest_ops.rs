//! Criterion benchmarks for RC-forest construction and batch updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::{BuildOptions, RcForest, SumAgg};
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    for n in [10_000usize, 100_000] {
        // Degree-<=2 chain forest: direct core build.
        let edges: Vec<(u32, u32, i64)> = (0..n as u32 - 1)
            .filter(|i| i % 97 != 0)
            .map(|i| (i, i + 1, 1))
            .collect();
        g.bench_with_input(BenchmarkId::new("core_paths", n), &n, |b, &n| {
            b.iter(|| {
                RcForest::<SumAgg<i64>>::build_edges(n, &edges, BuildOptions::default()).unwrap()
            });
        });
        let cfg = paper_configs(n, 5).remove(0).1;
        let tedges: Vec<(u32, u32, i64)> = GeneratedForest::generate(cfg)
            .edges()
            .iter()
            .map(|&(u, v, w)| (u, v, w as i64))
            .collect();
        g.bench_with_input(BenchmarkId::new("ternary_treegen", n), &n, |b, &n| {
            b.iter(|| {
                let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
                f.batch_link(&tedges).unwrap();
                f
            });
        });
    }
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut grp = c.benchmark_group("updates");
    let n = 100_000usize;
    for k in [100usize, 10_000] {
        grp.bench_with_input(BenchmarkId::new("cut_link_roundtrip", k), &k, |b, &k| {
            let cfg = paper_configs(n, 5).remove(0).1;
            let mut g = GeneratedForest::generate(cfg);
            let edges: Vec<(u32, u32, i64)> = g
                .edges()
                .iter()
                .map(|&(u, v, w)| (u, v, w as i64))
                .collect();
            let mut f = TernaryForest::<SumAgg<i64>>::new(n, 0);
            f.batch_link(&edges).unwrap();
            let dels = g.delete_batch(k);
            let ins: Vec<(u32, u32, i64)> = g
                .insert_batch(k)
                .iter()
                .map(|&(u, v, w)| (u, v, w as i64))
                .collect();
            // Pre-detach so each iteration cuts freshly-present edges.
            f.batch_cut(&dels).unwrap();
            f.batch_link(&ins).unwrap();
            b.iter(|| {
                f.batch_cut(&ins.iter().map(|&(u, v, _)| (u, v)).collect::<Vec<_>>())
                    .unwrap();
                f.batch_link(&ins).unwrap();
            });
        });
    }
    grp.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_updates
}
criterion_main!(benches);
