//! Mixed batch-query workload: interleaved subtree / path-sum / LCA /
//! connectivity batches against one live forest.
//!
//! This is the steady-state serving shape the marked-subtree engine's
//! pooled scratch arenas target: every batch checks the same arenas out of
//! the forest's pool instead of re-allocating and re-hashing its marked
//! subtree, so the win shows up here rather than in single-family
//! microbenches. Sizes follow `RC_BENCH_SCALE` (`tiny` keeps CI fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::SumAgg;
use rc_gen::{paper_configs, GeneratedForest};
use rc_ternary::TernaryForest;

struct Workload {
    forest: TernaryForest<SumAgg<i64>>,
    subtrees: Vec<(u32, u32)>,
    pairs: Vec<(u32, u32)>,
    triples: Vec<(u32, u32, u32)>,
}

fn setup(n: usize, k: usize) -> Workload {
    let cfg = paper_configs(n, 9).remove(0).1;
    let mut g = GeneratedForest::generate(cfg);
    let edges: Vec<(u32, u32, i64)> = g
        .edges()
        .iter()
        .map(|&(u, v, w)| (u, v, w as i64))
        .collect();
    let mut forest = TernaryForest::<SumAgg<i64>>::new(n, 0);
    forest.batch_link(&edges).unwrap();
    Workload {
        forest,
        subtrees: g.query_subtrees(k),
        pairs: g.query_pairs(k),
        triples: g.query_triples(k),
    }
}

fn bench_mixed(c: &mut Criterion) {
    let n = match rc_bench::scale() {
        "large" => 1_000_000,
        "tiny" => 10_000,
        _ => 100_000,
    };
    let ks: &[usize] = match rc_bench::scale() {
        "tiny" => &[256],
        _ => &[256, 4096],
    };
    let mut grp = c.benchmark_group("mixed_queries");
    for &k in ks {
        let w = setup(n, k);
        // One iteration = four different batch families back to back, the
        // pattern that exercises scratch-pool reuse across query kinds.
        grp.bench_with_input(BenchmarkId::new("interleaved_4x", k), &k, |b, _| {
            b.iter(|| {
                let s = w.forest.batch_subtree_aggregate(&w.subtrees);
                let p = w.forest.batch_path_aggregate(&w.pairs);
                let l = w.forest.batch_lca(&w.triples);
                let c = w.forest.batch_connected(&w.pairs);
                (s.len(), p.len(), l.len(), c.len())
            });
        });
        // Single-family baseline on the same forest, for ratio tracking.
        grp.bench_with_input(BenchmarkId::new("path_only", k), &k, |b, _| {
            b.iter(|| w.forest.batch_path_aggregate(&w.pairs));
        });
    }
    grp.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mixed
}
criterion_main!(benches);
