//! Batch-incremental minimum spanning forests (paper §5.8).
//!
//! Maintains the MSF of a growing weighted graph under *batches* of new
//! edges. Per batch: build the compressed path tree of the new edges'
//! endpoints over the current MSF (it preserves path maxima and carries,
//! per compressed edge, the identity of the heaviest underlying tree
//! edge), append the new edges, run Kruskal on the `O(k)`-size graph, and
//! translate the result into batch cut/link operations on the dynamic
//! forest. As in the paper, Kruskal's `O(k log k)` is noise next to the
//! compressed-tree generation and the dynamic insertion (Fig. 10).

use rc_core::{EdgeRef, MaxEdgeAgg, Vertex};
use rc_ternary::TernaryForest;
use std::collections::HashMap;

/// Union–find with path compression (also used by the Kruskal baseline).
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Disjoint singletons `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; false when already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }
}

/// Offline Kruskal — the test oracle and the paper's inner MSF subroutine.
/// Returns the selected edges (indices into `edges`).
pub fn kruskal(n: usize, edges: &[(u32, u32, u64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| (edges[i].2, edges[i].0, edges[i].1));
    let mut uf = UnionFind::new(n);
    let mut out = Vec::new();
    for i in order {
        let (u, v, _) = edges[i];
        if u != v && uf.union(u, v) {
            out.push(i);
        }
    }
    out
}

/// Statistics of one incremental batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// New edges accepted into the MSF.
    pub inserted: usize,
    /// Old MSF edges evicted by the cycle rule.
    pub evicted: usize,
    /// New edges rejected outright.
    pub rejected: usize,
    /// Vertices in the compressed path tree.
    pub cpt_vertices: usize,
}

/// A batch-incremental MSF over `n` vertices (arbitrary degree — the
/// forest is ternarized internally).
///
/// ```
/// use rc_msf::IncrementalMsf;
/// let mut msf = IncrementalMsf::new(4);
/// msf.insert_batch(&[(0, 1, 10), (1, 2, 20), (0, 2, 5)]);
/// // The triangle keeps its two lightest edges.
/// assert_eq!(msf.total_weight(), 15);
/// ```
pub struct IncrementalMsf {
    forest: TernaryForest<MaxEdgeAgg<u64>>,
    weights: HashMap<(u32, u32), u64>,
    total: u64,
}

impl IncrementalMsf {
    /// Empty MSF on `n` vertices.
    pub fn new(n: usize) -> Self {
        IncrementalMsf {
            // Chain weight 0: dummy edges never win a path-max query.
            forest: TernaryForest::new(n, 0),
            weights: HashMap::new(),
            total: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.forest.num_vertices()
    }

    /// Current number of MSF edges.
    pub fn num_edges(&self) -> usize {
        self.forest.num_edges()
    }

    /// Sum of the weights of the current MSF edges.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Current MSF edge list `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32, u64)> {
        self.weights.iter().map(|(&(u, v), &w)| (u, v, w)).collect()
    }

    /// The underlying dynamic forest (for benchmarking internals).
    pub fn forest(&self) -> &TernaryForest<MaxEdgeAgg<u64>> {
        &self.forest
    }

    /// Insert a batch of weighted edges, maintaining the MSF. Duplicate
    /// pairs within a batch keep only the lightest copy. Edges between
    /// already-connected vertices may evict the heaviest tree edge on
    /// their path (the cycle rule).
    pub fn insert_batch(&mut self, new_edges: &[(u32, u32, u64)]) -> BatchStats {
        self.insert_batch_timed(new_edges).0
    }

    /// [`IncrementalMsf::insert_batch`] with per-phase wall times —
    /// the breakdown the paper plots in Fig. 10.
    pub fn insert_batch_timed(
        &mut self,
        new_edges: &[(u32, u32, u64)],
    ) -> (BatchStats, BatchTimings) {
        let mut timings = BatchTimings::default();
        let t_all = std::time::Instant::now();
        let stats = self.insert_batch_inner(new_edges, &mut timings);
        timings.total = t_all.elapsed();
        (stats, timings)
    }

    fn insert_batch_inner(
        &mut self,
        new_edges: &[(u32, u32, u64)],
        timings: &mut BatchTimings,
    ) -> BatchStats {
        let mut stats = BatchStats::default();
        // Normalize + intra-batch dedup (keep lightest).
        let mut best: HashMap<(u32, u32), u64> = HashMap::new();
        for &(u, v, w) in new_edges {
            if u == v {
                stats.rejected += 1;
                continue;
            }
            let k = (u.min(v), u.max(v));
            let e = best.entry(k).or_insert(w);
            if w < *e {
                *e = w;
            }
        }
        let batch: Vec<(u32, u32, u64)> = best.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        if batch.is_empty() {
            return stats;
        }

        // 1. Compressed path tree over the endpoints.
        let t0 = std::time::Instant::now();
        let endpoints: Vec<Vertex> = batch.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        let cpt = self.forest.compressed_path_tree(&endpoints);
        stats.cpt_vertices = cpt.vertices.len();
        timings.cpt = t0.elapsed();

        // 2. Kruskal over compressed old edges + new edges, on the cpt's
        //    compact vertex space.
        let t1 = std::time::Instant::now();
        let mut index: HashMap<u32, u32> = HashMap::new();
        let id_of = |x: u32, index: &mut HashMap<u32, u32>| -> u32 {
            let next = index.len() as u32;
            *index.entry(x).or_insert(next)
        };
        enum Tag {
            Old(Option<EdgeRef<u64>>),
            New(u32, u32, u64),
        }
        let mut karcs: Vec<(u32, u32, u64, Tag)> = Vec::new();
        for (a, b, agg) in &cpt.edges {
            let ia = id_of(*a, &mut index);
            let ib = id_of(*b, &mut index);
            let w = agg.map_or(0, |e| e.w); // all-dummy paths are weightless
            karcs.push((ia, ib, w, Tag::Old(*agg)));
        }
        for &(u, v, w) in &batch {
            let iu = id_of(u, &mut index);
            let iv = id_of(v, &mut index);
            karcs.push((iu, iv, w, Tag::New(u, v, w)));
        }
        // Stable preference: on ties keep old edges (fewer updates).
        let mut order: Vec<usize> = (0..karcs.len()).collect();
        order.sort_by_key(|&i| {
            let tie = match karcs[i].3 {
                Tag::Old(_) => 0u8,
                Tag::New(..) => 1,
            };
            (karcs[i].2, tie, i)
        });
        let mut uf = UnionFind::new(index.len());
        let mut cuts: Vec<(u32, u32)> = Vec::new();
        let mut links: Vec<(u32, u32, u64)> = Vec::new();
        for i in order {
            let (a, b, _, ref tag) = karcs[i];
            let joined = uf.union(a, b);
            match tag {
                Tag::Old(agg) => {
                    if !joined {
                        // Evict the heaviest real edge under this
                        // compressed edge.
                        let e = agg.expect("evictable compressed edge has a real max edge");
                        let (u, v) = (self.forest.owner_of(e.u), self.forest.owner_of(e.v));
                        cuts.push((u, v));
                    }
                }
                Tag::New(u, v, w) => {
                    if joined {
                        links.push((*u, *v, *w));
                    } else {
                        stats.rejected += 1;
                    }
                }
            }
        }

        timings.kruskal = t1.elapsed();

        // 3. Apply to the dynamic forest.
        let t2 = std::time::Instant::now();
        stats.evicted = cuts.len();
        stats.inserted = links.len();
        for &(u, v) in &cuts {
            let k = (u.min(v), u.max(v));
            let w = self.weights.remove(&k).expect("evicted edge tracked");
            self.total -= w;
        }
        self.forest
            .batch_cut(&cuts)
            .expect("evicted edges exist in the forest");
        self.forest
            .batch_link(&links)
            .expect("accepted edges are acyclic");
        for &(u, v, w) in &links {
            self.weights.insert((u.min(v), u.max(v)), w);
            self.total += w;
        }
        timings.forest_update = t2.elapsed();
        stats
    }
}

/// Per-phase wall times of one incremental batch (Fig. 10's breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchTimings {
    /// Compressed-path-tree generation.
    pub cpt: std::time::Duration,
    /// Kruskal on the O(k) compressed graph.
    pub kruskal: std::time::Duration,
    /// Batch cut + link on the dynamic forest.
    pub forest_update: std::time::Duration,
    /// Whole batch.
    pub total: std::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_parlay::rng::SplitMix64;

    fn msf_weight_oracle(n: usize, edges: &[(u32, u32, u64)]) -> u64 {
        kruskal(n, edges).into_iter().map(|i| edges[i].2).sum()
    }

    #[test]
    fn triangle_keeps_two_lightest() {
        let mut m = IncrementalMsf::new(3);
        let s = m.insert_batch(&[(0, 1, 10), (1, 2, 20), (0, 2, 5)]);
        assert_eq!(m.total_weight(), 15);
        assert_eq!(s.inserted + s.rejected, 3);
        assert_eq!(m.num_edges(), 2);
    }

    #[test]
    fn eviction_across_batches() {
        let mut m = IncrementalMsf::new(4);
        m.insert_batch(&[(0, 1, 10), (1, 2, 20), (2, 3, 30)]);
        assert_eq!(m.total_weight(), 60);
        // A lighter shortcut evicts the heaviest path edge (2,3).
        let s = m.insert_batch(&[(0, 3, 5)]);
        assert_eq!(s.inserted, 1);
        assert_eq!(s.evicted, 1);
        assert_eq!(m.total_weight(), 35);
        assert!(m.edges().iter().all(|&(u, v, _)| (u, v) != (2, 3)));
    }

    #[test]
    fn duplicate_edges_keep_lightest() {
        let mut m = IncrementalMsf::new(2);
        m.insert_batch(&[(0, 1, 9), (1, 0, 4), (0, 1, 7)]);
        assert_eq!(m.total_weight(), 4);
        assert_eq!(m.num_edges(), 1);
    }

    #[test]
    fn matches_offline_kruskal_on_random_graphs() {
        let mut rng = SplitMix64::new(2025);
        for trial in 0..5 {
            let n = 120usize;
            let mut all: Vec<(u32, u32, u64)> = Vec::new();
            let mut m = IncrementalMsf::new(n);
            for _batch in 0..8 {
                let k = 1 + rng.next_below(40) as usize;
                let mut batch = Vec::with_capacity(k);
                for _ in 0..k {
                    let u = rng.next_below(n as u64) as u32;
                    let v = rng.next_below(n as u64) as u32;
                    if u == v {
                        continue;
                    }
                    let w = 1 + rng.next_below(10_000);
                    batch.push((u, v, w));
                }
                all.extend(batch.iter().copied());
                m.insert_batch(&batch);
                assert_eq!(
                    m.total_weight(),
                    msf_weight_oracle(n, &all),
                    "trial {trial}: weight diverged after batch {_batch}"
                );
            }
            m.forest().validate().unwrap();
        }
    }

    #[test]
    fn disconnected_components_merge() {
        let mut m = IncrementalMsf::new(6);
        m.insert_batch(&[(0, 1, 1), (2, 3, 1), (4, 5, 1)]);
        assert_eq!(m.num_edges(), 3);
        let s = m.insert_batch(&[(1, 2, 2), (3, 4, 2)]);
        assert_eq!(s.inserted, 2);
        assert_eq!(s.evicted, 0);
        assert_eq!(m.total_weight(), 7);
    }

    #[test]
    fn kruskal_baseline_sanity() {
        let edges = vec![(0u32, 1u32, 4u64), (1, 2, 2), (2, 0, 3), (2, 3, 9)];
        let chosen = kruskal(4, &edges);
        let w: u64 = chosen.iter().map(|&i| edges[i].2).sum();
        assert_eq!(w, 2 + 3 + 9);
    }
}
