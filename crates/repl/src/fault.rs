//! A fault-injecting TCP proxy for the replication stream.
//!
//! Sits between a follower and the leader and perturbs the
//! leader→follower byte stream according to a seeded [`FaultPlan`]:
//! torn cuts at an exact byte offset (mid-frame), duplicated frames
//! (retransmission), and delayed frames (reordering). The
//! follower→leader direction (Hello, Acks) is copied verbatim so the
//! handshake itself stays well-formed — the faults model a flaky
//! *stream*, not a byzantine follower.
//!
//! A plan applies to the **first** proxied connection only; every later
//! connection is passed through clean. That makes each injected fault a
//! one-shot: the follower hits it, drops the session, reconnects
//! through the proxy, and must recover — without the test livelocking
//! on a fault that re-fires forever.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What to do to the first leader→follower stream through the proxy.
///
/// All fields independent; `None` everywhere is a transparent proxy.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Sever both directions after exactly this many leader→follower
    /// payload bytes — typically mid-frame, leaving the follower a torn
    /// tail.
    pub cut_at: Option<u64>,
    /// Send this frame (0-based index in the leader→follower stream)
    /// twice back-to-back.
    pub duplicate_frame: Option<u64>,
    /// Hold this frame back and deliver it *after* the following frame
    /// — a reordering the follower must detect via `prev_epoch`.
    pub delay_frame: Option<u64>,
}

struct ProxyShared {
    target: SocketAddr,
    plan: FaultPlan,
    /// Set once the plan has been consumed by the first connection.
    plan_spent: AtomicBool,
    stop: AtomicBool,
}

/// A running proxy; see the module docs.
pub struct FaultProxy {
    shared: Arc<ProxyShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral localhost port, forwarding connections to
    /// `target` with `plan` applied to the first one.
    pub fn start(target: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            target,
            plan,
            plan_spent: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("rc-repl-proxy".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn fault proxy");
        Ok(FaultProxy {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The address followers should dial instead of the leader's.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has the fault plan fired yet?
    pub fn plan_spent(&self) -> bool {
        self.shared.plan_spent.load(Ordering::SeqCst)
    }

    /// Stop accepting; in-flight pumps die with their sockets.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Self-connect to unblock accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(client) = conn else { continue };
        let faulted = !shared.plan_spent.swap(true, Ordering::SeqCst);
        let plan = if faulted {
            shared.plan
        } else {
            FaultPlan::default()
        };
        let target = shared.target;
        // Detached: each pump dies when its sockets do, and the whole
        // proxy process is test-scoped.
        let _ = std::thread::Builder::new()
            .name("rc-repl-proxy-conn".into())
            .spawn(move || proxy_connection(client, target, plan));
    }
}

fn proxy_connection(client: TcpStream, target: SocketAddr, plan: FaultPlan) {
    let Ok(upstream) = TcpStream::connect(target) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    // follower → leader: verbatim copy (Hello + Acks are never faulted).
    let up = std::thread::Builder::new()
        .name("rc-repl-proxy-up".into())
        .spawn(move || copy_until_eof(client_r, upstream))
        .expect("spawn proxy upstream pump");
    // leader → follower: frame-aware, with the plan applied.
    pump_frames(upstream_r, client, plan);
    let _ = up.join();
}

fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                if to.write_all(&buf[..k]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Read whole frames off the leader and forward them, applying torn
/// cuts (byte-exact), duplication, and delay (frame-indexed).
fn pump_frames(mut from: TcpStream, mut to: TcpStream, plan: FaultPlan) {
    let mut sent: u64 = 0; // leader→follower payload bytes delivered
    let mut frame_idx: u64 = 0;
    let mut held: Option<Vec<u8>> = None; // the delayed frame, if any
    while let Some(frame) = read_raw_frame(&mut from) {
        let mut out: Vec<&[u8]> = Vec::new();
        if plan.delay_frame == Some(frame_idx) && held.is_none() {
            held = Some(frame);
            frame_idx += 1;
            continue;
        }
        out.push(&frame);
        if plan.duplicate_frame == Some(frame_idx) {
            out.push(&frame);
        }
        let released = held.take();
        if let Some(h) = &released {
            out.push(h); // the delayed frame lands *after* this one
        }
        for bytes in out {
            if let Some(cut) = plan.cut_at {
                let remaining = cut.saturating_sub(sent) as usize;
                if remaining < bytes.len() {
                    // Deliver the torn prefix, then sever mid-frame.
                    let _ = to.write_all(&bytes[..remaining]);
                    shutdown_both(&from, &to);
                    return;
                }
            }
            if to.write_all(bytes).is_err() {
                shutdown_both(&from, &to);
                return;
            }
            sent += bytes.len() as u64;
        }
        frame_idx += 1;
    }
    shutdown_both(&from, &to);
}

fn shutdown_both(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Read one raw frame (header + payload) without decoding it.
fn read_raw_frame(from: &mut TcpStream) -> Option<Vec<u8>> {
    use rc_store::frame::{FRAME_HEADER, MAX_FRAME_LEN};
    let mut header = [0u8; FRAME_HEADER];
    from.read_exact(&mut header).ok()?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN as usize {
        return None;
    }
    let mut frame = vec![0u8; FRAME_HEADER + len];
    frame[..FRAME_HEADER].copy_from_slice(&header);
    from.read_exact(&mut frame[FRAME_HEADER..]).ok()?;
    Some(frame)
}
