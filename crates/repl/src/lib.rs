//! `rc-repl` — WAL-shipping replication for the rc-serve tier.
//!
//! A leader [`rc_serve::RcServe`] commits an epoch (update batch applied,
//! WAL barrier passed) and the [`ReplLeader`] sidecar streams the
//! committed [`rc_store::EpochRecord`] — in the same CRC-framed encoding
//! the WAL uses on disk — to every connected [`Follower`]. Followers
//! append each record to their *own* durable store, replay it
//! batch-parallel through [`rc_store::replay_epoch`] (the recovery
//! path), and acknowledge; they serve read-only queries stamped with the
//! applied epoch, at client-visible bounded staleness.
//!
//! ```text
//!  clients ──► RcServe (leader) ──► WAL ──► snapshots
//!                  │ commit tap
//!                  ▼
//!              ReplLeader ──TCP──► Follower 1 ──► replica WAL + forest ──► reads
//!                          ──TCP──► Follower 2 ──► …
//! ```
//!
//! The pieces:
//!
//! - [`wire`] — the framed message protocol (Hello / Snap / Rec / Ack)
//!   with `prev_epoch` chaining so gaps and reordering are detected.
//! - [`ReplLeader`] — accepts followers, serves snapshot + WAL-suffix
//!   catch-up, then streams live commits from the serve tier's commit
//!   tap.
//! - [`Follower`] — reconnect loop with exponential backoff + jitter,
//!   durable apply, bounded-staleness `/ready`, and
//!   [`Follower::promote`] into a full [`rc_serve::RcServe`] via the
//!   existing snapshot+suffix recovery.
//! - [`FaultProxy`] — a seeded fault-injection proxy (torn cuts,
//!   duplicated and delayed frames) that the failover oracle drives.
//!
//! Leaders that replicate should run with [`rc_store::SyncPolicy::PerEpoch`]
//! or `Interval` so committed records are visible to catch-up scans of
//! the WAL file; see [`leader`] for the caveat on `Never`.

pub mod fault;
pub mod follower;
pub mod leader;
pub mod wire;

pub use fault::{FaultPlan, FaultProxy};
pub use follower::{Follower, FollowerConfig};
pub use leader::{LeaderConfig, ReplLeader};
pub use wire::{decode_message, encode_message, read_message, write_message, Message};
