//! The replication follower: batch-replay a leader's epoch stream onto
//! a local replica and serve staleness-bounded reads.
//!
//! A follower owns its **own** durable [`Store`] (so its replica
//! survives restarts and can be promoted) plus an in-memory
//! [`ServeForest`]. Each shipped record is appended to the local WAL,
//! then replayed through [`rc_store::replay_epoch`] — steady-state
//! apply *is* the recovery path's batch-parallel replay, one epoch at a
//! time — and only then acknowledged, so an `Ack` always means
//! "locally durable *and* applied".
//!
//! Reads ([`Follower::query`]) answer against the replica through the
//! same one-batch-call-per-family fan-out the leader uses, stamped with
//! the applied epoch they observed. Staleness is client-visible: the
//! `repl_follower_lag_epochs` gauge tracks `leader_committed − applied`,
//! and the follower's `/ready` ([`Follower::serve_obs`]) returns 503
//! while disconnected or while lag exceeds
//! [`FollowerConfig::staleness_bound`].
//!
//! On leader loss the follower reconnects with exponential backoff plus
//! deterministic jitter, resuming from its last applied epoch; the
//! leader serves the catch-up suffix (snapshot + WAL records).
//! [`Follower::promote`] turns the replica into a leader-capable
//! [`RcServe`] via the existing snapshot+suffix recovery over the
//! follower's own store directory.

use crate::wire::{read_message, write_message, Message};
use rc_core::DynamicForest;
use rc_obs::{
    splitmix64, EpochTrace, HealthView, MetricsRegistry, MetricsSnapshot, ObsServer,
    ObsServerConfig, ObsSource, TraceDump,
};
use rc_serve::{answer_read_only, RcServe, Request, Response, ServeConfig, ServeForest};
use rc_store::{
    replay_epoch, RecoveryReport, Store, StoreConfig, StoreError, SyncPolicy, WAL_FILE,
};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Connection, durability and staleness knobs for one follower.
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// The leader's replication listen address
    /// ([`crate::ReplLeader::local_addr`]).
    pub leader_addr: String,
    /// The follower's own store directory (WAL + snapshots of the
    /// replica; survives restarts, feeds promotion).
    pub dir: PathBuf,
    /// Vertex count (must match the leader's).
    pub n: usize,
    /// Maximum tolerated `leader_committed − applied` before the
    /// follower reports itself unready (`/ready` → 503).
    pub staleness_bound: u64,
    /// Sync policy of the follower's own WAL.
    pub sync: SyncPolicy,
    /// Compaction threshold of the follower's own WAL, in bytes.
    pub compact_bytes: u64,
    /// First reconnect backoff; doubles per consecutive failure.
    pub retry_base: Duration,
    /// Backoff ceiling.
    pub retry_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub retry_seed: u64,
    /// Fault injection for staleness tests: sleep this long before
    /// applying each shipped record, so the applied epoch visibly lags
    /// the leader's committed epoch.
    #[doc(hidden)]
    pub apply_delay: Duration,
}

impl FollowerConfig {
    /// Follow `leader_addr` with a replica store in `dir`, per-epoch
    /// local sync, staleness bound 8, and 25 ms–1 s backoff.
    pub fn new(leader_addr: impl Into<String>, dir: impl Into<PathBuf>, n: usize) -> Self {
        FollowerConfig {
            leader_addr: leader_addr.into(),
            dir: dir.into(),
            n,
            staleness_bound: 8,
            sync: SyncPolicy::PerEpoch,
            compact_bytes: 8 << 20,
            retry_base: Duration::from_millis(25),
            retry_cap: Duration::from_secs(1),
            retry_seed: 0,
            apply_delay: Duration::ZERO,
        }
    }

    /// Replace the staleness bound.
    pub fn staleness_bound(mut self, epochs: u64) -> Self {
        self.staleness_bound = epochs;
        self
    }

    fn store_config(&self) -> StoreConfig {
        StoreConfig::new(&self.dir, self.n)
            .sync_policy(self.sync)
            .compact_threshold(self.compact_bytes)
    }
}

/// The replica the apply loop mutates and queries read: forest + the
/// follower's own durable store, swapped wholesale on snapshot install.
struct Replica {
    forest: ServeForest,
    store: Store,
}

struct FollowerShared {
    cfg: FollowerConfig,
    stop: AtomicBool,
    connected: AtomicBool,
    /// Has this replica ever had a basis — a snapshot installed, an
    /// epoch applied, or durable state recovered at start? Until then
    /// its (empty) forest does not correspond to *any* leader version,
    /// so the follower reports itself unready.
    synced: AtomicBool,
    /// Last epoch applied to (and durable in) the replica.
    applied: AtomicU64,
    /// Leader's newest committed epoch, from the last shipped record.
    leader_committed: AtomicU64,
    replica: RwLock<Option<Replica>>,
    /// Current session's socket, for unblocking reads on stop.
    live_stream: Mutex<Option<TcpStream>>,
    registry: MetricsRegistry,
    lag_gauge: Arc<rc_obs::Gauge>,
    applied_gauge: Arc<rc_obs::Gauge>,
    connected_gauge: Arc<rc_obs::Gauge>,
    applied_total: Arc<rc_obs::Counter>,
    reconnects_total: Arc<rc_obs::Counter>,
    snap_installs_total: Arc<rc_obs::Counter>,
}

impl FollowerShared {
    fn lag(&self) -> u64 {
        self.leader_committed
            .load(Ordering::SeqCst)
            .saturating_sub(self.applied.load(Ordering::SeqCst))
    }

    fn update_lag_gauge(&self) {
        self.lag_gauge.set(self.lag() as i64);
        self.applied_gauge
            .set(self.applied.load(Ordering::SeqCst) as i64);
    }

    fn is_ready(&self) -> bool {
        self.synced.load(Ordering::SeqCst)
            && self.connected.load(Ordering::SeqCst)
            && self.lag() <= self.cfg.staleness_bound
    }
}

/// A running follower (see the module docs).
pub struct Follower {
    shared: Arc<FollowerShared>,
    thread: Option<JoinHandle<()>>,
}

impl Follower {
    /// Recover any previous replica state from `cfg.dir` (the follower's
    /// own snapshot + WAL suffix), then start the replication loop.
    pub fn start(cfg: FollowerConfig) -> Result<Follower, StoreError> {
        let recovered = Store::open(cfg.store_config())?;
        let applied = recovered.report.last_epoch;
        // A basis exists if anything durable was recovered: an applied
        // epoch, or an installed snapshot (possibly still at epoch 0).
        let synced = applied > 0
            || rc_store::snapshot::list_snapshots(&cfg.dir)
                .map(|s| !s.is_empty())
                .unwrap_or(false);
        let registry = MetricsRegistry::new();
        let shared = Arc::new(FollowerShared {
            stop: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            synced: AtomicBool::new(synced),
            applied: AtomicU64::new(applied),
            leader_committed: AtomicU64::new(applied),
            replica: RwLock::new(Some(Replica {
                forest: recovered.forest,
                store: recovered.store,
            })),
            live_stream: Mutex::new(None),
            lag_gauge: registry.gauge("repl_follower_lag_epochs"),
            applied_gauge: registry.gauge("repl_follower_applied_epoch"),
            connected_gauge: registry.gauge("repl_follower_connected"),
            applied_total: registry.counter("repl_follower_records_applied_total"),
            reconnects_total: registry.counter("repl_follower_reconnects_total"),
            snap_installs_total: registry.counter("repl_follower_snapshot_installs_total"),
            registry,
            cfg,
        });
        shared.update_lag_gauge();
        let run_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("rc-repl-follower".into())
            .spawn(move || run(run_shared))
            .expect("spawn repl follower");
        Ok(Follower {
            shared,
            thread: Some(thread),
        })
    }

    /// Last epoch applied to (and durable in) the replica.
    pub fn applied(&self) -> u64 {
        self.shared.applied.load(Ordering::SeqCst)
    }

    /// The leader's newest committed epoch, as of the last record this
    /// follower received.
    pub fn leader_committed(&self) -> u64 {
        self.shared.leader_committed.load(Ordering::SeqCst)
    }

    /// Current staleness in epochs (`leader_committed − applied`).
    pub fn lag(&self) -> u64 {
        self.shared.lag()
    }

    /// Is the replication session currently established?
    pub fn is_connected(&self) -> bool {
        self.shared.connected.load(Ordering::SeqCst)
    }

    /// Has the replica ever acquired a basis (snapshot installed, epoch
    /// applied, or durable state recovered)? Until then its forest does
    /// not correspond to any leader version and reads are vacuous.
    pub fn is_synced(&self) -> bool {
        self.shared.synced.load(Ordering::SeqCst)
    }

    /// Connected *and* within the staleness bound — what `/ready`
    /// reports.
    pub fn is_ready(&self) -> bool {
        self.shared.is_ready()
    }

    /// Answer read-only requests against the replica, returning the
    /// applied epoch the answers observed (the read's version stamp)
    /// alongside the responses. Updates answer [`Response::Rejected`] —
    /// a follower is read-only until promoted.
    pub fn query(&self, requests: &[Request]) -> (u64, Vec<Response>) {
        let guard = self
            .shared
            .replica
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let stamp = self.shared.applied.load(Ordering::SeqCst);
        let replica = guard.as_ref().expect("replica present while running");
        (stamp, answer_read_only(&replica.forest, requests))
    }

    /// Point-in-time snapshot of the follower's replication metrics
    /// (`repl_follower_lag_epochs`, `repl_follower_applied_epoch`,
    /// `repl_follower_connected`, apply/reconnect/snapshot counters).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.registry.snapshot()
    }

    /// Start the follower's observability endpoint: the standard rc-obs
    /// routes, with `/ready` answering 200 only while connected and
    /// within the staleness bound and `/metrics` carrying the
    /// replication gauges.
    pub fn serve_obs(&self, cfg: ObsServerConfig) -> std::io::Result<ObsServer> {
        ObsServer::start(
            cfg,
            Arc::new(FollowerObs {
                shared: Arc::clone(&self.shared),
            }),
        )
    }

    /// Stop replicating: close the session, join the loop, flush + close
    /// the replica store. The directory remains ready for a later
    /// [`Follower::start`] or [`Follower::promote`].
    pub fn stop(mut self) {
        self.stop_inner();
        if let Some(replica) = self
            .shared
            .replica
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = replica.store.close();
        }
    }

    /// Promote this follower to a serving leader: stop replication,
    /// flush + close the replica store, then bring the directory up
    /// through [`RcServe::start_durable`] — the existing snapshot +
    /// WAL-suffix recovery path. Every epoch this follower acknowledged
    /// is durable in its store, so it survives into the promoted server.
    pub fn promote(
        mut self,
        serve_cfg: ServeConfig,
    ) -> Result<(RcServe, RecoveryReport), StoreError> {
        self.stop_inner();
        let store_cfg = self.shared.cfg.store_config();
        if let Some(replica) = self
            .shared
            .replica
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            replica.store.close()?;
        }
        RcServe::start_durable(serve_cfg, store_cfg, None)
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock a session read; the loop re-checks `stop` on error.
        if let Some(stream) = self
            .shared
            .live_stream
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_inner();
            if let Some(replica) = self
                .shared
                .replica
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                let _ = replica.store.close();
            }
        }
    }
}

/// `/metrics`, `/health`, `/ready` adapter for the follower.
struct FollowerObs {
    shared: Arc<FollowerShared>,
}

impl ObsSource for FollowerObs {
    fn metrics(&self) -> MetricsSnapshot {
        self.shared.registry.snapshot()
    }

    fn flight(&self) -> Vec<EpochTrace> {
        Vec::new()
    }

    fn traces(&self) -> TraceDump {
        TraceDump::default()
    }

    fn health(&self) -> HealthView {
        let connected = self.shared.connected.load(Ordering::SeqCst);
        let lag = self.shared.lag();
        let bound = self.shared.cfg.staleness_bound;
        HealthView {
            healthy: !self.shared.stop.load(Ordering::SeqCst),
            ready: self.shared.is_ready(),
            stalls: self.shared.reconnects_total.get(),
            detail: format!(
                "follower connected={connected} applied={} lag={lag} bound={bound}",
                self.shared.applied.load(Ordering::SeqCst)
            ),
        }
    }
}

/// The reconnect loop: connect, replicate until the session drops, back
/// off (exponential + deterministic jitter), repeat.
fn run(shared: Arc<FollowerShared>) {
    let mut attempt: u32 = 0;
    while !shared.stop.load(Ordering::SeqCst) {
        match TcpStream::connect(&shared.cfg.leader_addr) {
            Ok(stream) => {
                *shared.live_stream.lock().unwrap_or_else(|e| e.into_inner()) =
                    stream.try_clone().ok();
                shared.connected.store(true, Ordering::SeqCst);
                shared.connected_gauge.set(1);
                attempt = 0;
                let _ = session(&shared, stream);
                shared.connected.store(false, Ordering::SeqCst);
                shared.connected_gauge.set(0);
                shared
                    .live_stream
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                if !shared.stop.load(Ordering::SeqCst) {
                    shared.reconnects_total.inc();
                }
            }
            Err(_) => {
                shared.reconnects_total.inc();
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Exponential backoff with deterministic jitter: base · 2^k
        // capped, plus up to one extra base drawn from the seed — spreads
        // a fleet of followers that lost the same leader at the same
        // instant.
        let base = shared.cfg.retry_base.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.min(16));
        let jitter_ns = splitmix64(
            shared
                .cfg
                .retry_seed
                .wrapping_add(attempt as u64)
                .wrapping_add(1),
        ) % base.as_nanos().max(1) as u64;
        let delay = exp.min(shared.cfg.retry_cap) + Duration::from_nanos(jitter_ns);
        attempt = attempt.saturating_add(1);
        // Sleep in small slices so stop stays responsive.
        let deadline = std::time::Instant::now() + delay;
        while std::time::Instant::now() < deadline && !shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// One replication session: handshake, then apply records until the
/// stream errors, the leader disconnects, or the chain breaks.
fn session(shared: &Arc<FollowerShared>, mut stream: TcpStream) -> std::io::Result<()> {
    write_message(
        &mut stream,
        &Message::Hello {
            last_applied: shared.applied.load(Ordering::SeqCst),
            n: shared.cfg.n as u64,
        },
    )?;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_message(&mut stream)? {
            Message::Snap { epoch, state } => {
                install_snapshot(shared, epoch, &state)?;
                write_message(&mut stream, &Message::Ack { epoch })?;
            }
            Message::Rec {
                prev_epoch,
                leader_committed,
                record,
            } => {
                shared
                    .leader_committed
                    .fetch_max(leader_committed.max(record.epoch), Ordering::SeqCst);
                shared.update_lag_gauge();
                let applied = shared.applied.load(Ordering::SeqCst);
                if record.epoch <= applied {
                    continue; // duplicate (catch-up overlap or a replayed frame)
                }
                if prev_epoch != applied {
                    // A gap or reordering (lost/delayed frame): resync
                    // by dropping the session and reconnecting from the
                    // applied epoch rather than silently skipping.
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "stream gap: record {} chains from {prev_epoch} \
                             but applied is {applied}",
                            record.epoch
                        ),
                    ));
                }
                if !shared.cfg.apply_delay.is_zero() {
                    std::thread::sleep(shared.cfg.apply_delay);
                }
                let epoch = record.epoch;
                {
                    let mut guard = shared.replica.write().unwrap_or_else(|e| e.into_inner());
                    let replica = guard.as_mut().expect("replica present while running");
                    replica.store.append_epoch(&record)?;
                    replay_epoch(&mut replica.forest, &record).map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("epoch {epoch} does not apply to the replica: {e}"),
                        )
                    })?;
                    if replica.store.wants_compaction() {
                        let state = replica.forest.export_state();
                        replica
                            .store
                            .compact(&state)
                            .map_err(std::io::Error::other)?;
                    }
                    shared.applied.store(epoch, Ordering::SeqCst);
                }
                shared.synced.store(true, Ordering::SeqCst);
                shared.applied_total.inc();
                shared.update_lag_gauge();
                write_message(&mut stream, &Message::Ack { epoch })?;
            }
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected message from leader: {other:?}"),
                ));
            }
        }
    }
}

/// Full-state catch-up: replace the replica (forest + store directory)
/// with the shipped snapshot, then reopen the store on top of it so
/// later appends extend a consistent log.
fn install_snapshot(
    shared: &Arc<FollowerShared>,
    epoch: u64,
    state: &rc_core::ForestState,
) -> std::io::Result<()> {
    let mut guard = shared.replica.write().unwrap_or_else(|e| e.into_inner());
    // Close the old store (flushing its tail), wipe the stale log +
    // snapshots, install the shipped snapshot as the new base.
    if let Some(replica) = guard.take() {
        let _ = replica.store.close();
    }
    let dir = &shared.cfg.dir;
    let _ = std::fs::remove_file(dir.join(WAL_FILE));
    if let Ok(snaps) = rc_store::snapshot::list_snapshots(dir) {
        for (_, path) in snaps {
            let _ = std::fs::remove_file(path);
        }
    }
    rc_store::snapshot::write_snapshot(dir, epoch, state)?;
    let recovered = Store::open(shared.cfg.store_config()).map_err(std::io::Error::other)?;
    *guard = Some(Replica {
        forest: recovered.forest,
        store: recovered.store,
    });
    shared.applied.store(epoch, Ordering::SeqCst);
    drop(guard);
    shared.synced.store(true, Ordering::SeqCst);
    shared.snap_installs_total.inc();
    shared.update_lag_gauge();
    Ok(())
}
