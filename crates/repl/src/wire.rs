//! The replication wire protocol: CRC-framed messages over a plain TCP
//! stream.
//!
//! Every message is one [`rc_store::frame`] frame — `len | crc32 |
//! payload`, the exact codec the WAL uses on disk — so a shipped epoch
//! record is integrity-checked by the same checksum twice: once in the
//! leader's log, once on the wire. The payload is a 1-byte tag followed
//! by the message fields:
//!
//! | tag | message | direction | fields |
//! |-----|---------|-----------|--------|
//! | 1 | `Hello` | follower → leader | `last_applied: u64`, `n: u64` |
//! | 2 | `Snap` | leader → follower | [`rc_store::codec::encode_snapshot`] bytes |
//! | 3 | `Rec` | leader → follower | `prev_epoch: u64`, `leader_committed: u64`, [`rc_store::codec::encode_epoch`] bytes |
//! | 4 | `Ack` | follower → leader | `epoch: u64` |
//!
//! `Rec.prev_epoch` chains consecutive records (the epoch of the record
//! shipped immediately before, or the resume point for the first): a
//! follower that receives a record whose `prev_epoch` is not its applied
//! epoch has observed reordering or a gap (a fault-injection proxy can
//! produce both) and must drop the connection and resume from its last
//! applied epoch rather than silently skip epochs.

use rc_core::ForestState;
use rc_store::codec::{decode_epoch, decode_snapshot, encode_epoch, encode_snapshot};
use rc_store::frame::{crc32, encode_frame, FRAME_HEADER, MAX_FRAME_LEN};
use rc_store::EpochRecord;
use std::io::{Read, Write};

/// One replication message (see the module docs for the wire layout).
#[derive(Debug)]
pub enum Message {
    /// Follower's opening handshake: resume after `last_applied`, over a
    /// forest of `n` vertices (the leader refuses a mismatched `n`).
    Hello { last_applied: u64, n: u64 },
    /// Full-state catch-up: install this snapshot, then resume the
    /// record stream after `epoch`.
    Snap { epoch: u64, state: ForestState },
    /// One committed epoch. `prev_epoch` chains the stream (see module
    /// docs); `leader_committed` is the leader's newest committed epoch
    /// at send time — the follower's staleness reference.
    Rec {
        prev_epoch: u64,
        leader_committed: u64,
        record: EpochRecord,
    },
    /// Follower acknowledgment: `epoch` is locally durable and applied.
    Ack { epoch: u64 },
}

const TAG_HELLO: u8 = 1;
const TAG_SNAP: u8 = 2;
const TAG_REC: u8 = 3;
const TAG_ACK: u8 = 4;

/// Encode `msg` as one frame, appended to `out`.
pub fn encode_message(out: &mut Vec<u8>, msg: &Message) {
    let mut payload = Vec::new();
    match msg {
        Message::Hello { last_applied, n } => {
            payload.push(TAG_HELLO);
            payload.extend_from_slice(&last_applied.to_le_bytes());
            payload.extend_from_slice(&n.to_le_bytes());
        }
        Message::Snap { epoch, state } => {
            payload.push(TAG_SNAP);
            payload.extend_from_slice(&encode_snapshot(*epoch, state));
        }
        Message::Rec {
            prev_epoch,
            leader_committed,
            record,
        } => {
            payload.push(TAG_REC);
            payload.extend_from_slice(&prev_epoch.to_le_bytes());
            payload.extend_from_slice(&leader_committed.to_le_bytes());
            payload.extend_from_slice(&encode_epoch(record));
        }
        Message::Ack { epoch } => {
            payload.push(TAG_ACK);
            payload.extend_from_slice(&epoch.to_le_bytes());
        }
    }
    encode_frame(out, &payload);
}

fn proto_err(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("repl wire: {what}"),
    )
}

fn le_u64(payload: &[u8], at: usize) -> std::io::Result<u64> {
    payload
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
        .ok_or_else(|| proto_err("short message"))
}

/// Decode one message payload (the bytes inside a checksum-verified
/// frame).
pub fn decode_message(payload: &[u8]) -> std::io::Result<Message> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| proto_err("empty payload"))?;
    match tag {
        TAG_HELLO => Ok(Message::Hello {
            last_applied: le_u64(body, 0)?,
            n: le_u64(body, 8)?,
        }),
        TAG_SNAP => {
            let (epoch, state) =
                decode_snapshot(body).map_err(|e| proto_err(&format!("bad snapshot: {e}")))?;
            Ok(Message::Snap { epoch, state })
        }
        TAG_REC => {
            let prev_epoch = le_u64(body, 0)?;
            let leader_committed = le_u64(body, 8)?;
            let record = decode_epoch(body.get(16..).ok_or_else(|| proto_err("short record"))?)
                .map_err(|e| proto_err(&format!("bad epoch record: {e}")))?;
            Ok(Message::Rec {
                prev_epoch,
                leader_committed,
                record,
            })
        }
        TAG_ACK => Ok(Message::Ack {
            epoch: le_u64(body, 0)?,
        }),
        other => Err(proto_err(&format!("unknown tag {other}"))),
    }
}

/// Write one message to the stream (one frame, one `write_all`).
pub fn write_message(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut buf = Vec::new();
    encode_message(&mut buf, msg);
    w.write_all(&buf)
}

/// Read one frame's header + payload from the stream, verify length
/// bound and checksum, and decode the message. The length bound is
/// checked *before* allocating, so a corrupted or hostile header cannot
/// force an over-allocation.
pub fn read_message(r: &mut impl Read) -> std::io::Result<Message> {
    let mut header = [0u8; FRAME_HEADER];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let want_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_FRAME_LEN as usize {
        return Err(proto_err(&format!("frame length {len} out of bounds")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != want_crc {
        return Err(proto_err("frame checksum mismatch"));
    }
    decode_message(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_store::FlushRecord;

    #[test]
    fn every_message_roundtrips() {
        let msgs = [
            Message::Hello {
                last_applied: 42,
                n: 1000,
            },
            Message::Snap {
                epoch: 7,
                state: ForestState::from_edges(4, &[(0, 1, 5), (1, 2, 9)]),
            },
            Message::Rec {
                prev_epoch: 6,
                leader_committed: 9,
                record: EpochRecord {
                    epoch: 7,
                    flushes: vec![FlushRecord {
                        links: vec![(0, 3, 11)],
                        cuts: vec![(1, 2)],
                        ..Default::default()
                    }],
                },
            },
            Message::Ack { epoch: 7 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode_message(&mut buf, m);
        }
        let mut cursor = std::io::Cursor::new(buf);
        for want in &msgs {
            let got = read_message(&mut cursor).unwrap();
            match (want, &got) {
                (
                    Message::Hello { last_applied, n },
                    Message::Hello {
                        last_applied: la2,
                        n: n2,
                    },
                ) => assert_eq!((last_applied, n), (la2, n2)),
                (
                    Message::Snap { epoch, state },
                    Message::Snap {
                        epoch: e2,
                        state: s2,
                    },
                ) => {
                    assert_eq!(epoch, e2);
                    assert_eq!(state, s2);
                }
                (
                    Message::Rec {
                        prev_epoch,
                        leader_committed,
                        record,
                    },
                    Message::Rec {
                        prev_epoch: p2,
                        leader_committed: lc2,
                        record: r2,
                    },
                ) => {
                    assert_eq!((prev_epoch, leader_committed), (p2, lc2));
                    assert_eq!(record.epoch, r2.epoch);
                    assert_eq!(record.flushes.len(), r2.flushes.len());
                }
                (Message::Ack { epoch }, Message::Ack { epoch: e2 }) => assert_eq!(epoch, e2),
                (w, g) => panic!("mismatched roundtrip: {w:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn corrupt_frames_error_instead_of_panicking() {
        let mut buf = Vec::new();
        encode_message(&mut buf, &Message::Ack { epoch: 3 });
        // Flip a payload bit: checksum must catch it.
        let at = buf.len() - 1;
        buf[at] ^= 0x40;
        assert!(read_message(&mut std::io::Cursor::new(&buf)).is_err());
        // A hostile length header must not allocate 4 GiB.
        let huge = [0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        assert!(read_message(&mut std::io::Cursor::new(&huge[..])).is_err());
    }
}
