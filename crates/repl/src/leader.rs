//! The replication leader: stream committed epochs to N followers.
//!
//! [`ReplLeader::start`] taps a running [`RcServe`]'s commit stream
//! ([`RcServe::subscribe_commits`]) and binds a TCP listener. Each
//! follower connection handshakes with its last applied epoch and gets:
//!
//! 1. **Catch-up** — if the follower is older than the leader WAL's base
//!    epoch (its missing epochs were compacted away), the leader ships
//!    the newest snapshot first ([`crate::wire::Message::Snap`]), then
//!    the WAL suffix after it, read with the *read-only* scan
//!    ([`rc_store::wal::read_records`]) so the live log is never touched.
//! 2. **Live stream** — every committed epoch from the tap, in order,
//!    each chained to its predecessor (`prev_epoch`) so a follower can
//!    detect reordered or lost frames and resync by reconnecting.
//!
//! The connection is registered with the tap *before* the WAL is read,
//! so every epoch is either in the suffix read or in the live channel
//! (duplicates in the overlap are filtered by epoch). One caveat
//! follows from reading the log file: under [`rc_store::SyncPolicy::Never`]
//! committed frames can sit in the leader's user-space buffer where the
//! catch-up scan cannot see them — run a replicating leader with
//! `PerEpoch` or `Interval` sync, which write every append to the file.

use crate::wire::{read_message, write_message, Message};
use rc_obs::{MetricsRegistry, MetricsSnapshot};
use rc_serve::{CommitEvent, RcServe};
use rc_store::{snapshot, wal, WAL_FILE};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where the leader listens and where its durable store lives.
#[derive(Clone, Debug)]
pub struct LeaderConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port; use
    /// [`ReplLeader::local_addr`] to discover it).
    pub bind: String,
    /// The leader server's store directory — the WAL + snapshots that
    /// serve follower catch-up. Must be the same directory the
    /// [`RcServe`] was started durable on.
    pub store_dir: PathBuf,
    /// Vertex count; a follower whose `Hello` disagrees is refused.
    pub n: usize,
}

impl LeaderConfig {
    /// Ephemeral local bind over the given store directory.
    pub fn new(store_dir: impl Into<PathBuf>, n: usize) -> Self {
        LeaderConfig {
            bind: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            n,
        }
    }
}

struct LeaderShared {
    cfg: LeaderConfig,
    stop: AtomicBool,
    /// Newest committed (state-changing) epoch the leader knows of —
    /// stamped into every shipped record as the staleness reference.
    committed: AtomicU64,
    /// Highest epoch any follower has acknowledged.
    acked: AtomicU64,
    /// Live per-connection forwarding channels; the broadcaster prunes
    /// senders whose handler hung up.
    conns: Mutex<Vec<mpsc::Sender<CommitEvent>>>,
    registry: MetricsRegistry,
    connections: Arc<rc_obs::Gauge>,
    records_sent: Arc<rc_obs::Counter>,
    snapshots_sent: Arc<rc_obs::Counter>,
}

/// A running replication leader (see the module docs).
pub struct ReplLeader {
    shared: Arc<LeaderShared>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    broadcaster: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ReplLeader {
    /// Bind the listener, tap `server`'s commit stream, and start
    /// accepting followers.
    pub fn start(server: &RcServe, cfg: LeaderConfig) -> std::io::Result<ReplLeader> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let tap = server.subscribe_commits();
        // Seed the committed watermark from the durable state so a
        // follower connecting before the next commit still sees an
        // accurate staleness reference.
        let durable_committed = {
            let (_, records) =
                wal::read_records(&cfg.store_dir.join(WAL_FILE)).unwrap_or((0, Vec::new()));
            let snap_epoch = snapshot::list_snapshots(&cfg.store_dir)
                .ok()
                .and_then(|s| s.last().map(|&(e, _)| e))
                .unwrap_or(0);
            records
                .last()
                .map_or(snap_epoch, |r| r.epoch.max(snap_epoch))
        };
        let registry = MetricsRegistry::new();
        let shared = Arc::new(LeaderShared {
            stop: AtomicBool::new(false),
            committed: AtomicU64::new(durable_committed),
            acked: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            connections: registry.gauge("repl_leader_connections"),
            records_sent: registry.counter("repl_leader_records_sent_total"),
            snapshots_sent: registry.counter("repl_leader_snapshots_sent_total"),
            registry,
            cfg,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let b_shared = Arc::clone(&shared);
        let broadcaster = std::thread::Builder::new()
            .name("rc-repl-broadcast".into())
            .spawn(move || broadcast_loop(b_shared, tap))
            .expect("spawn repl broadcaster");

        let a_shared = Arc::clone(&shared);
        let a_handlers = Arc::clone(&handlers);
        let accept = std::thread::Builder::new()
            .name("rc-repl-accept".into())
            .spawn(move || accept_loop(a_shared, a_handlers, listener))
            .expect("spawn repl acceptor");

        Ok(ReplLeader {
            shared,
            addr,
            accept: Some(accept),
            broadcaster: Some(broadcaster),
            handlers,
        })
    }

    /// The bound listen address (connect followers here).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Newest committed epoch the leader has observed.
    pub fn committed(&self) -> u64 {
        self.shared.committed.load(Ordering::SeqCst)
    }

    /// Highest epoch any follower has acknowledged (applied + locally
    /// durable on that follower).
    pub fn acked(&self) -> u64 {
        self.shared.acked.load(Ordering::SeqCst)
    }

    /// Live follower connections.
    pub fn connections(&self) -> usize {
        self.shared.connections.get().max(0) as usize
    }

    /// Point-in-time snapshot of the leader's replication metrics
    /// (`repl_leader_connections`, `repl_leader_records_sent_total`,
    /// `repl_leader_snapshots_sent_total`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.registry.snapshot()
    }

    /// Stop accepting and streaming: close every connection and join the
    /// worker threads. Followers see the disconnect and enter their
    /// retry loops.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.broadcaster.take() {
            let _ = h.join();
        }
        let handlers =
            std::mem::take(&mut *self.handlers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for ReplLeader {
    fn drop(&mut self) {
        if self.accept.is_some() || self.broadcaster.is_some() {
            self.stop_inner();
        }
    }
}

/// Forward every tapped commit to every live connection, pruning dead
/// ones. Exits on stop or when the served [`RcServe`] shuts down
/// (channel disconnect) — handlers then observe their own channel
/// disconnect and wind down.
fn broadcast_loop(shared: Arc<LeaderShared>, tap: mpsc::Receiver<CommitEvent>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match tap.recv_timeout(Duration::from_millis(50)) {
            Ok(ev) => {
                shared.committed.store(ev.epoch, Ordering::SeqCst);
                let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
                conns.retain(|tx| tx.send(ev.clone()).is_ok());
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Leader server gone: drop every forwarding sender so
                // handlers see Disconnected and close their sockets.
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clear();
                return;
            }
        }
    }
}

fn accept_loop(
    shared: Arc<LeaderShared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    listener: TcpListener,
) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let c_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rc-repl-conn".into())
            .spawn(move || {
                c_shared.connections.add(1);
                let _ = serve_follower(&c_shared, stream);
                c_shared.connections.add(-1);
            })
            .expect("spawn repl connection handler");
        handlers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

/// One follower connection: handshake, catch-up, live stream. Any I/O
/// or protocol error just drops the connection — the follower's retry
/// loop owns recovery.
fn serve_follower(shared: &Arc<LeaderShared>, mut stream: TcpStream) -> std::io::Result<()> {
    let Message::Hello { last_applied, n } = read_message(&mut stream)? else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "expected Hello",
        ));
    };
    if n != shared.cfg.n as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("follower n={n} != leader n={}", shared.cfg.n),
        ));
    }
    // Register with the broadcaster *before* reading the WAL: every
    // commit is then either in the suffix we read or in this channel
    // (the overlap is deduplicated by `last_sent`).
    let (tx, rx) = mpsc::channel::<CommitEvent>();
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(tx);

    // Acks flow back on the same socket; a dedicated reader keeps them
    // off the send path.
    let ack_stream = stream.try_clone()?;
    let ack_shared = Arc::clone(shared);
    let ack_reader = std::thread::Builder::new()
        .name("rc-repl-ack".into())
        .spawn(move || ack_loop(ack_shared, ack_stream))
        .expect("spawn repl ack reader");

    let result = stream_epochs(shared, &mut stream, rx, last_applied);
    // Closing the socket unblocks the ack reader's pending read.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = ack_reader.join();
    result
}

fn ack_loop(shared: Arc<LeaderShared>, mut stream: TcpStream) {
    while let Ok(msg) = read_message(&mut stream) {
        if let Message::Ack { epoch } = msg {
            shared.acked.fetch_max(epoch, Ordering::SeqCst);
        }
    }
}

fn stream_epochs(
    shared: &LeaderShared,
    stream: &mut TcpStream,
    rx: mpsc::Receiver<CommitEvent>,
    last_applied: u64,
) -> std::io::Result<()> {
    // ---- catch-up from the durable log ----
    let (base_epoch, records) = match wal::read_records(&shared.cfg.store_dir.join(WAL_FILE)) {
        Ok(scan) => scan,
        // No WAL yet (in-memory leader warming up): live stream only.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => (0, Vec::new()),
        Err(e) => return Err(e),
    };
    let mut last_sent = last_applied;
    if last_applied < base_epoch || last_applied == 0 {
        // Two cases need full state first: the follower's missing epochs
        // were compacted away, or the follower is brand new (`Hello 0`)
        // and lacks the leader's bootstrap state — epoch records only
        // make sense on top of it.
        match snapshot::load_latest(&shared.cfg.store_dir)? {
            Some((snap_epoch, state)) if snap_epoch >= base_epoch => {
                write_message(
                    stream,
                    &Message::Snap {
                        epoch: snap_epoch,
                        state,
                    },
                )?;
                shared.snapshots_sent.inc();
                last_sent = snap_epoch;
            }
            _ if last_applied < base_epoch => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "WAL base epoch {base_epoch} has no readable snapshot \
                         to catch a follower up from"
                    ),
                ));
            }
            // A fresh follower of a leader with no snapshot yet (an
            // un-bootstrapped empty store): both sides start empty, the
            // record stream alone is enough.
            _ => {}
        }
    }
    for rec in records {
        if rec.epoch <= last_sent {
            continue;
        }
        let prev = last_sent;
        last_sent = rec.epoch;
        write_message(
            stream,
            &Message::Rec {
                prev_epoch: prev,
                leader_committed: shared.committed.load(Ordering::SeqCst),
                record: rec,
            },
        )?;
        shared.records_sent.inc();
    }

    // ---- live stream ----
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(ev) => {
                if ev.epoch <= last_sent {
                    continue; // already shipped in the catch-up suffix
                }
                let prev = last_sent;
                last_sent = ev.epoch;
                write_message(
                    stream,
                    &Message::Rec {
                        prev_epoch: prev,
                        leader_committed: shared.committed.load(Ordering::SeqCst),
                        record: (*ev.record).clone(),
                    },
                )?;
                shared.records_sent.inc();
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()), // leader server gone
        }
    }
}
