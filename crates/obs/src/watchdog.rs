//! Epoch-stall watchdog: a polling thread that flags a server as
//! unhealthy when it stops making progress while work is queued.
//!
//! The watched component publishes a monotone progress counter (epoch
//! heartbeats) plus a busy flag through a [`Probe`] closure. The
//! [`Watchdog`] polls it; if the probe stays busy with no progress for
//! longer than [`WatchdogConfig::deadline`], the shared [`HealthState`]
//! flips unhealthy/not-ready, a [`StallInfo`] postmortem is frozen, an
//! `on_stall` callback fires exactly once per episode (the serve layer
//! uses it to freeze a flight dump), and one log line is emitted. When
//! progress resumes the state re-arms and `/ready` recovers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Watchdog tuning: how long "busy with no progress" must last before a
/// stall is declared, and how often to check.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Busy-with-no-progress duration that constitutes a stall.
    pub deadline: Duration,
    /// Poll cadence (defaults to `deadline / 4`, at least 1 ms).
    pub poll_interval: Duration,
}

impl WatchdogConfig {
    /// Config with the given deadline and a `deadline / 4` poll cadence.
    pub fn new(deadline: Duration) -> Self {
        WatchdogConfig {
            deadline,
            poll_interval: (deadline / 4).max(Duration::from_millis(1)),
        }
    }
}

/// One observation of the watched component.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    /// Monotone progress counter (e.g. sum of worker + executor epoch
    /// heartbeats). Any increase means the component is alive.
    pub progress: u64,
    /// Whether the component *should* be progressing (queued work, or a
    /// thread mid-phase). An idle server never stalls.
    pub busy: bool,
    /// Name of the phase the component is currently in (`"idle"`,
    /// `"wal"`, …) — recorded in the stall report.
    pub phase: &'static str,
    /// Requests currently queued.
    pub queued: u64,
}

/// Frozen description of a detected stall.
#[derive(Clone, Debug)]
pub struct StallInfo {
    /// Phase the component was stuck in when the stall was declared.
    pub phase: &'static str,
    /// Queue depth at declaration time.
    pub queued: u64,
    /// Progress counter value that stopped advancing.
    pub at_progress: u64,
    /// How long the component had been busy without progress.
    pub stalled_for: Duration,
}

/// Shared liveness state backing `/health` and `/ready`: flipped by the
/// watchdog on stall, re-armed on recovery, also consulted by the
/// failure path. All reads are relaxed atomics — cheap enough for the
/// serve hot path to ignore.
#[derive(Debug)]
pub struct HealthState {
    healthy: AtomicBool,
    ready: AtomicBool,
    stalls: AtomicU64,
    last_stall: Mutex<Option<StallInfo>>,
}

impl Default for HealthState {
    fn default() -> Self {
        HealthState {
            healthy: AtomicBool::new(true),
            ready: AtomicBool::new(true),
            stalls: AtomicU64::new(0),
            last_stall: Mutex::new(None),
        }
    }
}

impl HealthState {
    /// Currently healthy (no active stall or permanent failure).
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Currently ready to serve (healthy and not shut down).
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }

    /// Stalls declared since startup (recovered ones included).
    pub fn stall_count(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// The most recent stall report, if any stall was ever declared.
    pub fn last_stall(&self) -> Option<StallInfo> {
        self.last_stall
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Mark permanently failed (e.g. the worker died): unhealthy and
    /// not ready, with no re-arm.
    pub fn mark_failed(&self) {
        self.healthy.store(false, Ordering::Relaxed);
        self.ready.store(false, Ordering::Relaxed);
    }

    /// Declare a stall: flip unhealthy/not-ready and freeze the report.
    pub fn flag_stall(&self, info: StallInfo) {
        *self.last_stall.lock().unwrap_or_else(|e| e.into_inner()) = Some(info);
        self.stalls.fetch_add(1, Ordering::Relaxed);
        self.healthy.store(false, Ordering::Relaxed);
        self.ready.store(false, Ordering::Relaxed);
    }

    /// Progress resumed: restore healthy/ready (the stall count and
    /// last report are kept for postmortems).
    pub fn clear_stall(&self) {
        self.healthy.store(true, Ordering::Relaxed);
        self.ready.store(true, Ordering::Relaxed);
    }
}

/// The watchdog thread handle. Stops (and joins) on [`Watchdog::stop`]
/// or drop.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
    health: Arc<HealthState>,
}

impl Watchdog {
    /// Spawn the watchdog thread. `probe` is called every poll interval;
    /// `on_stall` fires once per stall episode, before `health` flips.
    pub fn spawn(
        cfg: WatchdogConfig,
        health: Arc<HealthState>,
        probe: impl Fn() -> Probe + Send + 'static,
        on_stall: impl Fn(&StallInfo) + Send + 'static,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let health2 = Arc::clone(&health);
        let thread = thread::Builder::new()
            .name("rc-obs-watchdog".into())
            .spawn(move || {
                let mut last_progress = probe().progress;
                let mut busy_since: Option<Instant> = None;
                let mut stalled = false;
                while !stop2.load(Ordering::Relaxed) {
                    thread::park_timeout(cfg.poll_interval);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let p = probe();
                    if p.progress != last_progress || !p.busy {
                        last_progress = p.progress;
                        busy_since = None;
                        if stalled {
                            stalled = false;
                            health2.clear_stall();
                            eprintln!(
                                "[rc-obs] watchdog: progress resumed (progress={}), \
                                 marking healthy again",
                                p.progress
                            );
                        }
                        continue;
                    }
                    // Busy with no progress: start or continue the clock.
                    let since = *busy_since.get_or_insert_with(Instant::now);
                    if !stalled && since.elapsed() >= cfg.deadline {
                        stalled = true;
                        let info = StallInfo {
                            phase: p.phase,
                            queued: p.queued,
                            at_progress: p.progress,
                            stalled_for: since.elapsed(),
                        };
                        eprintln!(
                            "[rc-obs] watchdog: STALL — no progress for {:?} with work \
                             queued (phase={}, queued={}, progress={}); flipping /health \
                             and /ready unhealthy",
                            info.stalled_for, info.phase, info.queued, info.at_progress
                        );
                        on_stall(&info);
                        health2.flag_stall(info);
                    }
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            thread: Some(thread),
            health,
        }
    }

    /// The health state this watchdog drives.
    pub fn health(&self) -> &Arc<HealthState> {
        &self.health
    }

    /// Signal the thread and join it (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn flags_stall_on_busy_no_progress_and_recovers() {
        let progress = Arc::new(AtomicU64::new(0));
        let busy = Arc::new(AtomicBool::new(true));
        let health = Arc::new(HealthState::default());
        let fired = Arc::new(AtomicU64::new(0));
        let (p2, b2, f2) = (Arc::clone(&progress), Arc::clone(&busy), Arc::clone(&fired));
        let mut dog = Watchdog::spawn(
            WatchdogConfig::new(Duration::from_millis(30)),
            Arc::clone(&health),
            move || Probe {
                progress: p2.load(Ordering::Relaxed),
                busy: b2.load(Ordering::Relaxed),
                phase: "wal",
                queued: 3,
            },
            move |_| {
                f2.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(health.ready(), "healthy at start");

        // Busy, progress frozen: must flip within a few deadlines.
        let t0 = Instant::now();
        while health.ready() && t0.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(!health.ready(), "watchdog flipped /ready on the stall");
        assert!(!health.healthy());
        assert_eq!(health.stall_count(), 1);
        let info = health.last_stall().expect("stall report frozen");
        assert_eq!(info.phase, "wal");
        assert_eq!(info.queued, 3);
        assert!(info.stalled_for >= Duration::from_millis(30));

        // The callback fired exactly once while stalled.
        thread::sleep(Duration::from_millis(60));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "one-shot per episode");

        // Progress resumes: health re-arms, report kept.
        progress.fetch_add(1, Ordering::Relaxed);
        let t1 = Instant::now();
        while !health.ready() && t1.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(health.ready(), "recovered after progress resumed");
        assert!(health.healthy());
        assert_eq!(health.stall_count(), 1);
        assert!(health.last_stall().is_some(), "postmortem report retained");
        dog.stop();
    }

    #[test]
    fn idle_component_never_stalls() {
        let health = Arc::new(HealthState::default());
        let _dog = Watchdog::spawn(
            WatchdogConfig::new(Duration::from_millis(10)),
            Arc::clone(&health),
            || Probe {
                progress: 0,
                busy: false,
                phase: "idle",
                queued: 0,
            },
            |_| panic!("idle must not stall"),
        );
        thread::sleep(Duration::from_millis(80));
        assert!(health.ready(), "idle server stays ready");
        assert_eq!(health.stall_count(), 0);
    }

    #[test]
    fn mark_failed_is_terminal() {
        let health = HealthState::default();
        health.mark_failed();
        assert!(!health.healthy());
        assert!(!health.ready());
        assert!(health.last_stall().is_none());
    }
}
