//! Live observability endpoint: a zero-dependency blocking
//! `std::net::TcpListener` server speaking HTTP/1.0 **and** the
//! rc-store binary frame discipline on the same port.
//!
//! Routes (all `GET`, `Connection: close`):
//!
//! | route           | body                                              |
//! |-----------------|---------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (version 0.0.4)        |
//! | `/metrics.json` | the same snapshot as JSON                         |
//! | `/health`       | liveness JSON; `503` while stalled or failed      |
//! | `/ready`        | readiness JSON; `503` while stalled/shutting down |
//! | `/flight`       | flight-recorder dump ([`EpochTrace`] array)       |
//! | `/traces`       | sampled + slow request traces ([`TraceDump`])     |
//! | `/costmodel`    | adaptive-dispatch cost model ([`ObsSource::costmodel`]) |
//!
//! A connection whose first bytes are not an HTTP method is treated as a
//! binary peer: one length-prefixed CRC-checked frame (byte-compatible
//! with the rc-store WAL codec — see [`frame`]) carrying the command
//! `DUMP_TELEMETRY`, answered with one frame whose payload is the full
//! telemetry JSON. This is the seed of the ROADMAP's sharded-serve
//! front door: the first real socket in the codebase, with the frame
//! codec the future request protocol will inherit.
//!
//! The server is deliberately boring: opt-in, one accept thread, one
//! short-lived thread per connection bounded by
//! [`ObsServerConfig::max_connections`] (excess connections get an
//! immediate `503`), and read/write deadlines on every socket so a
//! stuck scraper cannot pin a thread.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::registry::MetricsSnapshot;
use crate::reqtrace::TraceDump;
use crate::trace::{EpochTrace, FAMILY_NAMES};

/// Length-prefixed, CRC-checksummed frames — byte-compatible with the
/// rc-store WAL codec (`len: u32 LE | crc32(payload): u32 LE | payload`)
/// so the future network front door and the durability layer share one
/// wire discipline. Re-implemented here (rather than imported) because
/// rc-store depends on rc-obs, not the other way around; a root-crate
/// test pins the two codecs byte-for-byte.
pub mod frame {
    /// Upper bound on one frame's payload accepted by the endpoint
    /// (1 MiB — telemetry dumps are small; the WAL's 64 MiB bound does
    /// not apply to the observability socket).
    pub const MAX_FRAME_LEN: u32 = 1 << 20;

    /// Bytes of frame header (`len` + `crc`).
    pub const FRAME_HEADER: usize = 8;

    /// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) —
    /// identical to the rc-store WAL checksum.
    pub fn crc32(bytes: &[u8]) -> u32 {
        const TABLE: [u32; 256] = {
            let mut table = [0u32; 256];
            let mut i = 0;
            while i < 256 {
                let mut c = i as u32;
                let mut k = 0;
                while k < 8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                    k += 1;
                }
                table[i] = c;
                i += 1;
            }
            table
        };
        let mut crc = !0u32;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        !crc
    }

    /// Append one frame (header + payload) to `out`.
    pub fn encode_frame(out: &mut Vec<u8>, payload: &[u8]) {
        assert!(
            payload.len() as u64 <= MAX_FRAME_LEN as u64,
            "oversized frame"
        );
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }

    /// Decode the frame starting at `buf[at..]`. Returns the payload and
    /// the offset just past the frame, or `None` if the bytes do not
    /// form a complete checksum-valid frame.
    pub fn decode_frame(buf: &[u8], at: usize) -> Option<(&[u8], usize)> {
        let header = buf.get(at..at + FRAME_HEADER)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return None;
        }
        let start = at + FRAME_HEADER;
        let payload = buf.get(start..start + len as usize)?;
        if crc32(payload) != crc {
            return None;
        }
        Some((payload, start + len as usize))
    }
}

/// The binary command a frame peer sends to fetch the full telemetry
/// dump (mirrors the serve tier's `Request::DumpTelemetry`).
pub const DUMP_TELEMETRY_CMD: &[u8] = b"DUMP_TELEMETRY";

/// Configuration for [`ObsServer::start`]. The endpoint is opt-in; the
/// defaults bind an ephemeral loopback port with tight deadlines.
#[derive(Clone, Debug)]
pub struct ObsServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port; use
    /// [`ObsServer::local_addr`] to discover it).
    pub bind: String,
    /// Connections served concurrently; excess get an immediate `503`.
    pub max_connections: usize,
    /// Per-connection socket read deadline.
    pub read_timeout: Duration,
    /// Per-connection socket write deadline.
    pub write_timeout: Duration,
}

impl Default for ObsServerConfig {
    fn default() -> Self {
        ObsServerConfig {
            bind: "127.0.0.1:0".to_string(),
            max_connections: 4,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// Liveness/readiness view rendered by `/health` and `/ready`.
#[derive(Clone, Debug)]
pub struct HealthView {
    /// No active stall or permanent failure.
    pub healthy: bool,
    /// Healthy *and* accepting requests (false during shutdown).
    pub ready: bool,
    /// Stalls declared since startup.
    pub stalls: u64,
    /// Human-readable detail (stall phase, queue depth, …).
    pub detail: String,
}

impl HealthView {
    fn to_json(&self) -> String {
        format!(
            "{{\"healthy\":{},\"ready\":{},\"stalls\":{},\"detail\":\"{}\"}}",
            self.healthy,
            self.ready,
            self.stalls,
            crate::registry::escape_json(&self.detail)
        )
    }
}

/// What the endpoint serves — implemented by the serve tier (and by
/// test stubs). Every method is a point-in-time snapshot; the endpoint
/// calls them per request on its own threads, so implementations must
/// be cheap and never block on the epoch loop.
pub trait ObsSource: Send + Sync {
    /// Current metrics snapshot.
    fn metrics(&self) -> MetricsSnapshot;
    /// Flight-recorder dump (newest epochs, oldest first).
    fn flight(&self) -> Vec<EpochTrace>;
    /// Sampled + slow request traces.
    fn traces(&self) -> TraceDump;
    /// Liveness view.
    fn health(&self) -> HealthView;
    /// The adaptive-dispatch cost model as JSON ([`/costmodel`]), or an
    /// empty object when the source has no model (the default).
    ///
    /// [`/costmodel`]: crate::CostModel::to_json
    fn costmodel(&self) -> String {
        "{}".into()
    }
}

/// Render one [`EpochTrace`] as a JSON object (used by `/flight`).
pub fn epoch_trace_json(t: &EpochTrace) -> String {
    let mut out = format!(
        "{{\"epoch\":{},\"batch\":{},\"updates\":{},\"queries\":{},\"flushes\":{},\
         \"queue_depth\":{},\"drain_ns\":{},\"admit_ns\":{},\"commit_ns\":{},\
         \"wal_ns\":{},\"publish_ns\":{},\"backpressure_ns\":{},\"handoff_ns\":{},\
         \"query_ns\":{},\"respond_ns\":{},\"epoch_wall_ns\":{},\"failed\":{},\
         \"families\":{{",
        t.epoch,
        t.batch,
        t.updates,
        t.queries,
        t.flushes,
        t.queue_depth,
        t.drain_ns,
        t.admit_ns,
        t.commit_ns,
        t.wal_ns,
        t.publish_ns,
        t.backpressure_ns,
        t.handoff_ns,
        t.query_ns,
        t.respond_ns,
        t.epoch_wall_ns,
        t.failed,
    );
    let mut first = true;
    for (i, name) in FAMILY_NAMES.iter().enumerate() {
        if t.family_counts[i] == 0 && t.family_ns[i] == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"ns\":{}",
            name, t.family_counts[i], t.family_ns[i]
        ));
        // Dispatch fields appear only when the serve tier recorded an
        // engine choice, keeping pre-dispatch traces byte-stable.
        if t.family_engine[i] > 0 {
            let engine = crate::costmodel::ENGINE_NAMES
                .get(t.family_engine[i] as usize - 1)
                .unwrap_or(&"unknown");
            out.push_str(&format!(
                ",\"engine\":\"{}\",\"predicted_ns\":{},\"explored\":{}",
                engine,
                t.family_predicted_ns[i],
                (t.family_explored >> i) & 1 == 1
            ));
        }
        out.push('}');
    }
    out.push_str("}}");
    out
}

fn flight_json(traces: &[EpochTrace]) -> String {
    let mut out = String::from("[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&epoch_trace_json(t));
    }
    out.push(']');
    out
}

/// The full telemetry dump a binary `DUMP_TELEMETRY` frame receives.
fn full_dump_json(source: &dyn ObsSource) -> String {
    format!(
        "{{\"health\":{},\"metrics\":{},\"flight\":{},\"traces\":{}}}",
        source.health().to_json(),
        source.metrics().to_json(),
        flight_json(&source.flight()),
        source.traces().to_json()
    )
}

/// Handle to the running endpoint. Dropping it stops the accept loop
/// and joins the accept thread (in-flight connections finish on their
/// own deadlines).
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `cfg.bind` and start serving `source`.
    pub fn start(cfg: ObsServerConfig, source: Arc<dyn ObsSource>) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let inflight = Arc::new(AtomicUsize::new(0));
        let accept_thread = thread::Builder::new()
            .name("rc-obs-endpoint".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
                    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
                    if inflight.load(Ordering::Relaxed) >= cfg.max_connections {
                        let mut s = stream;
                        let _ = s.write_all(
                            b"HTTP/1.0 503 Service Unavailable\r\nConnection: close\r\n\
                              Content-Length: 9\r\n\r\nbusy\ntry\n",
                        );
                        continue;
                    }
                    inflight.fetch_add(1, Ordering::Relaxed);
                    let inflight2 = Arc::clone(&inflight);
                    let source2 = Arc::clone(&source);
                    let _ = thread::Builder::new()
                        .name("rc-obs-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &*source2);
                            inflight2.fetch_sub(1, Ordering::Relaxed);
                        });
                }
            })?;
        Ok(ObsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread (idempotent).
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(mut stream: TcpStream, source: &dyn ObsSource) -> std::io::Result<()> {
    let mut head = [0u8; 4];
    stream.read_exact(&mut head)?;
    if &head == b"GET " || &head == b"HEAD" {
        handle_http(stream, source, &head == b"GET ")
    } else if head.iter().all(|b| b.is_ascii_uppercase()) {
        // Some other HTTP method (POST, PUT, …): refuse politely.
        write_http(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n",
            true,
        )
    } else {
        handle_binary(stream, source, head)
    }
}

fn handle_http(
    mut stream: TcpStream,
    source: &dyn ObsSource,
    with_body: bool,
) -> std::io::Result<()> {
    // Read until the end of the request head (we ignore headers), with a
    // hard cap so a hostile peer cannot grow the buffer.
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !buf.windows(2).any(|w| w == b"\n\n") && !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > 4096 {
            return write_http(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain",
                "header too large\n",
                with_body,
            );
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let line = String::from_utf8_lossy(&buf);
    let path = line.split_whitespace().next().unwrap_or("");
    let health = source.health();
    let (status, ctype, body): (&str, &str, String) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            source.metrics().to_prometheus(),
        ),
        "/metrics.json" => ("200 OK", "application/json", source.metrics().to_json()),
        "/health" => (
            if health.healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            },
            "application/json",
            health.to_json(),
        ),
        "/ready" => (
            if health.ready {
                "200 OK"
            } else {
                "503 Service Unavailable"
            },
            "application/json",
            health.to_json(),
        ),
        "/flight" => ("200 OK", "application/json", flight_json(&source.flight())),
        "/traces" => ("200 OK", "application/json", source.traces().to_json()),
        "/costmodel" => ("200 OK", "application/json", source.costmodel()),
        _ => (
            "404 Not Found",
            "text/plain",
            format!(
                "no route {path}; try /metrics /metrics.json /health /ready /flight /traces /costmodel\n"
            ),
        ),
    };
    write_http_full(&mut stream, status, ctype, &body, with_body)
}

fn write_http(
    stream: &mut TcpStream,
    status: &str,
    ctype: &str,
    body: &str,
    with_body: bool,
) -> std::io::Result<()> {
    write_http_full(stream, status, ctype, body, with_body)
}

fn write_http_full(
    stream: &mut TcpStream,
    status: &str,
    ctype: &str,
    body: &str,
    with_body: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    if with_body {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

/// Binary peer: `head` already holds the first 4 bytes of the frame
/// header (the little-endian length word). Read the rest, verify the
/// CRC, answer known commands with one response frame.
fn handle_binary(
    mut stream: TcpStream,
    source: &dyn ObsSource,
    head: [u8; 4],
) -> std::io::Result<()> {
    let len = u32::from_le_bytes(head);
    if len > frame::MAX_FRAME_LEN {
        return Ok(()); // garbage length word: drop the connection
    }
    let mut rest = vec![0u8; 4 + len as usize];
    stream.read_exact(&mut rest)?;
    let mut full = Vec::with_capacity(frame::FRAME_HEADER + len as usize);
    full.extend_from_slice(&head);
    full.extend_from_slice(&rest);
    let Some((payload, _)) = frame::decode_frame(&full, 0) else {
        let mut out = Vec::new();
        frame::encode_frame(&mut out, b"ERR bad checksum");
        return stream.write_all(&out);
    };
    let mut out = Vec::new();
    if payload == DUMP_TELEMETRY_CMD {
        frame::encode_frame(&mut out, full_dump_json(source).as_bytes());
    } else {
        frame::encode_frame(&mut out, b"ERR unknown command");
    }
    stream.write_all(&out)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::reqtrace::{RequestTrace, TraceSink};

    struct StubSource {
        healthy: AtomicBool,
    }

    impl ObsSource for StubSource {
        fn metrics(&self) -> MetricsSnapshot {
            let reg = MetricsRegistry::new();
            reg.counter("serve_epochs_total").add(7);
            reg.gauge("serve_worker_heartbeat").set(3);
            reg.snapshot()
        }
        fn flight(&self) -> Vec<EpochTrace> {
            vec![EpochTrace {
                epoch: 1,
                batch: 2,
                queries: 1,
                epoch_wall_ns: 500,
                family_counts: [1, 0, 0, 0, 0, 0, 0, 0],
                family_ns: [100, 0, 0, 0, 0, 0, 0, 0],
                ..EpochTrace::default()
            }]
        }
        fn traces(&self) -> TraceDump {
            let sink = TraceSink::new(4, 4);
            sink.push(RequestTrace {
                trace_id: 11,
                sampled: true,
                e2e_ns: 900,
                ..RequestTrace::default()
            });
            sink.dump()
        }
        fn health(&self) -> HealthView {
            let healthy = self.healthy.load(Ordering::Relaxed);
            HealthView {
                healthy,
                ready: healthy,
                stalls: u64::from(!healthy),
                detail: if healthy {
                    String::new()
                } else {
                    "stalled in \"wal\"".into()
                },
            }
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    }

    fn start_stub() -> (ObsServer, Arc<StubSource>) {
        let src = Arc::new(StubSource {
            healthy: AtomicBool::new(true),
        });
        let server = ObsServer::start(ObsServerConfig::default(), src.clone()).unwrap();
        (server, src)
    }

    #[test]
    fn routes_answer_over_tcp() {
        let (server, src) = start_stub();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("Content-Type: text/plain"));
        assert!(body.contains("# TYPE serve_epochs_total counter"));
        assert!(body.contains("serve_worker_heartbeat 3"));

        let (_, json) = get(addr, "/metrics.json");
        assert!(json.contains("\"serve_epochs_total\":7"));

        let (head, body) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.0 200"));
        assert!(body.contains("\"healthy\":true"));

        let (_, flight) = get(addr, "/flight");
        assert!(flight.starts_with('['));
        assert!(flight.contains("\"epoch\":1"));
        assert!(flight.contains("\"conn\":{\"count\":1,\"ns\":100}"));

        let (_, traces) = get(addr, "/traces");
        assert!(traces.contains("\"trace_id\":11"));
        assert_eq!(traces.matches('{').count(), traces.matches('}').count());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        // Unhealthy flips /health and /ready to 503.
        src.healthy.store(false, Ordering::Relaxed);
        let (head, body) = get(addr, "/ready");
        assert!(head.starts_with("HTTP/1.0 503"), "{head}");
        assert!(body.contains("stalled in \\\"wal\\\""));
        drop(server);
    }

    #[test]
    fn binary_frame_round_trips_telemetry() {
        let (server, _src) = start_stub();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        let mut req = Vec::new();
        frame::encode_frame(&mut req, DUMP_TELEMETRY_CMD);
        s.write_all(&req).unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let (payload, consumed) = frame::decode_frame(&resp, 0).expect("valid response frame");
        assert_eq!(consumed, resp.len(), "exactly one frame");
        let json = std::str::from_utf8(payload).unwrap();
        assert!(json.contains("\"metrics\":"));
        assert!(json.contains("\"flight\":"));
        assert!(json.contains("\"traces\":"));
        assert!(json.contains("\"healthy\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn binary_unknown_command_and_bad_crc() {
        let (server, _src) = start_stub();
        // Unknown command.
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        let mut req = Vec::new();
        frame::encode_frame(&mut req, b"WHAT");
        s.write_all(&req).unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let (payload, _) = frame::decode_frame(&resp, 0).unwrap();
        assert!(payload.starts_with(b"ERR unknown"));

        // Corrupted checksum.
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        let mut req = Vec::new();
        frame::encode_frame(&mut req, DUMP_TELEMETRY_CMD);
        let last = req.len() - 1;
        req[last] ^= 0x40;
        s.write_all(&req).unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let (payload, _) = frame::decode_frame(&resp, 0).unwrap();
        assert!(payload.starts_with(b"ERR bad checksum"));
    }

    #[test]
    fn crc_matches_known_vectors() {
        assert_eq!(frame::crc32(b""), 0);
        assert_eq!(frame::crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn stop_is_idempotent_and_drop_joins() {
        let (mut server, _src) = start_stub();
        let addr = server.local_addr();
        server.stop();
        server.stop();
        assert!(
            TcpStream::connect(addr)
                .map(|mut s| {
                    let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                    let mut b = String::new();
                    let _ = s.read_to_string(&mut b);
                    b.is_empty()
                })
                .unwrap_or(true),
            "stopped server no longer answers"
        );
    }
}
