//! Online cost model for adaptive query dispatch: per-(family, engine,
//! k-octave) streaming ns/op statistics, epsilon-greedy exploration, a
//! crossover estimator, and a CRC-framed calibration table for warm
//! restarts.
//!
//! The paper's central experimental finding (fig. 11; BENCH_crossover.json)
//! is that no single query engine wins everywhere: running each query
//! independently wins at small per-family batch sizes, the batch-parallel
//! path wins 2–8x at k ≥ 1k, and the crossover point differs per query
//! family and per machine. This module turns the serve tier's existing
//! per-family query-phase timings into a live model of that tradeoff:
//!
//! - [`CostModel::observe`] feeds one measured fan-out (family, engine,
//!   batch size, wall ns) into a lock-free EWMA cell keyed by the batch
//!   size's octave (`⌊log2 k⌋`), so the table adapts to workload drift
//!   and thread-count changes without locks on the epoch loop.
//! - [`CostModel::choose`] picks the engine for the next fan-out:
//!   epsilon-greedy — with probability `explore_frac` it samples the
//!   least-observed engine at that octave (keeping the table current),
//!   otherwise it exploits the cheapest predicted total cost, falling
//!   back to the batched path when nothing is known yet. The explore
//!   roll is a pure function of `(seed, decision index)` (the same
//!   splitmix64 discipline as [`crate::trace_sampled`]), so a fixed seed
//!   replays the same explore/exploit sequence.
//! - [`CostModel::crossover_k`] fits the per-family switch point the
//!   ROADMAP asks for: the smallest batch size from which the batched
//!   engine stays the predicted winner.
//! - [`CalibrationTable`] snapshots the learned cells into the rc-store
//!   frame discipline ([`crate::frame`]: length + CRC-32 header) so a
//!   restarted server can start warm ([`CostModel::load_table`]).
//!
//! Everything is `&self` and allocation-free on the observe/choose hot
//! paths; the serve tier shares one model between the epoch worker and
//! the pipelined query executor.

use crate::frame;
use crate::registry::escape_json;
use crate::reqtrace::splitmix64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Query families the model tracks — indexed like
/// [`crate::FAMILY_NAMES`].
pub const NUM_FAMILIES: usize = 8;

/// Execution engines the serve tier can route a family's fan-out to.
pub const NUM_ENGINES: usize = 3;

/// Batch-size octaves per (family, engine): octave `o` covers
/// `k ∈ [2^o, 2^(o+1))`, with the last octave open-ended.
pub const NUM_OCTAVES: usize = 18;

/// Engine names, indexed by [`Engine::index`].
pub const ENGINE_NAMES: [&str; NUM_ENGINES] = ["batched", "independent", "sequential"];

/// How a family's query fan-out is executed over the published forest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// One batch call for the whole family (shared sweeps; wins at
    /// large k).
    #[default]
    Batched,
    /// One parallel task per query, each an independent `O(log n)`
    /// root-to-leaf walk (wins at small k: no sweep setup).
    Independent,
    /// A sequential loop of single-query walks (wins when k is tiny and
    /// spawning parallel tasks costs more than the queries).
    Sequential,
}

impl Engine {
    /// Index into [`ENGINE_NAMES`] and the model's tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`index`](Self::index); `None` when out of range.
    pub fn from_index(i: usize) -> Option<Engine> {
        match i {
            0 => Some(Engine::Batched),
            1 => Some(Engine::Independent),
            2 => Some(Engine::Sequential),
            _ => None,
        }
    }

    /// The engine's name in metrics labels and JSON.
    pub fn name(self) -> &'static str {
        ENGINE_NAMES[self.index()]
    }
}

/// Per-epoch dispatch policy for the serve tier's query phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Consult the cost model per family per epoch (the default).
    #[default]
    Adaptive,
    /// Always run the one-batch-call-per-family path (the pre-dispatch
    /// behavior; the baseline `serve_load` compares against).
    AlwaysBatched,
    /// Always run independent parallel single-query walks.
    AlwaysIndependent,
    /// Always run a sequential loop of single-query walks.
    AlwaysSequential,
}

impl DispatchMode {
    /// Mode name for JSON/bench output.
    pub fn name(self) -> &'static str {
        match self {
            DispatchMode::Adaptive => "adaptive",
            DispatchMode::AlwaysBatched => "always_batched",
            DispatchMode::AlwaysIndependent => "always_independent",
            DispatchMode::AlwaysSequential => "always_sequential",
        }
    }
}

/// One engine choice for one family's fan-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The engine to run.
    pub engine: Engine,
    /// Predicted total cost of running the fan-out on `engine`, in ns
    /// (0 when the model has no data to predict from).
    pub predicted_ns: u64,
    /// True when this was an exploration sample rather than the
    /// predicted-cheapest engine.
    pub explored: bool,
}

/// Cumulative dispatch counters: how often each (family, engine) was
/// chosen and how many queries rode each choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Fan-out decisions per (family, engine).
    pub decisions: [[u64; NUM_ENGINES]; NUM_FAMILIES],
    /// Queries executed per (family, engine).
    pub queries: [[u64; NUM_ENGINES]; NUM_FAMILIES],
    /// Decisions that were exploration samples.
    pub explored: u64,
    /// Total fan-out decisions.
    pub total: u64,
}

/// The EWMA smoothing factor: new observations get 25% weight, so the
/// table tracks drift within ~a dozen epochs per cell without jittering
/// on one noisy measurement.
const ALPHA: f64 = 0.25;

/// One streaming cell: observation count + EWMA ns/op (f64 bits), both
/// updated lock-free.
#[derive(Default)]
struct Cell {
    count: AtomicU64,
    ns_per_op_bits: AtomicU64,
}

impl Cell {
    fn observe(&self, ns_per_op: f64) {
        let n = self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.ns_per_op_bits.load(Ordering::Relaxed);
        loop {
            let next = if n == 0 {
                ns_per_op
            } else {
                f64::from_bits(cur) * (1.0 - ALPHA) + ns_per_op * ALPHA
            };
            match self.ns_per_op_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn get(&self) -> (u64, f64) {
        (
            self.count.load(Ordering::Relaxed),
            f64::from_bits(self.ns_per_op_bits.load(Ordering::Relaxed)),
        )
    }

    fn set(&self, count: u64, ns_per_op: f64) {
        self.count.store(count, Ordering::Relaxed);
        self.ns_per_op_bits
            .store(ns_per_op.to_bits(), Ordering::Relaxed);
    }
}

/// The octave of a batch size: `⌊log2 k⌋`, clamped to the table.
#[inline]
pub fn k_octave(k: u32) -> usize {
    ((31 - k.max(1).leading_zeros()) as usize).min(NUM_OCTAVES - 1)
}

#[inline]
fn cell_index(family: usize, engine: usize, octave: usize) -> usize {
    (family * NUM_ENGINES + engine) * NUM_OCTAVES + octave
}

/// The online profiler + decision policy. Shared (`Arc`) between the
/// serve worker and the query executor; all methods are `&self`.
pub struct CostModel {
    cells: Box<[Cell]>,
    /// Probability a decision explores rather than exploits, in units of
    /// 2^-32 (0 disables exploration).
    explore_bits: u32,
    seed: u64,
    /// Monotone decision ordinal — the explore roll's deterministic
    /// input.
    decisions: AtomicU64,
    explored_total: AtomicU64,
    chosen: Box<[AtomicU64]>,
    chosen_queries: Box<[AtomicU64]>,
}

impl CostModel {
    /// Model exploring with probability `explore_frac` (clamped to
    /// `[0, 1]`), rolled deterministically from `seed`.
    pub fn new(explore_frac: f64, seed: u64) -> Self {
        let explore_bits = (explore_frac.clamp(0.0, 1.0) * (1u64 << 32) as f64) as u64;
        CostModel {
            cells: (0..NUM_FAMILIES * NUM_ENGINES * NUM_OCTAVES)
                .map(|_| Cell::default())
                .collect(),
            explore_bits: explore_bits.min(u32::MAX as u64) as u32,
            seed,
            decisions: AtomicU64::new(0),
            explored_total: AtomicU64::new(0),
            chosen: (0..NUM_FAMILIES * NUM_ENGINES)
                .map(|_| AtomicU64::new(0))
                .collect(),
            chosen_queries: (0..NUM_FAMILIES * NUM_ENGINES)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// The configured exploration fraction.
    pub fn explore_frac(&self) -> f64 {
        self.explore_bits as f64 / (1u64 << 32) as f64
    }

    /// Feed one measured fan-out: `family` ran `k` queries on `engine`
    /// in `total_ns`. Lock-free; called from the epoch worker or the
    /// query executor after every timed family batch.
    pub fn observe(&self, family: usize, engine: Engine, k: u32, total_ns: u64) {
        if family >= NUM_FAMILIES || k == 0 {
            return;
        }
        let ns_per_op = total_ns as f64 / k as f64;
        self.cells[cell_index(family, engine.index(), k_octave(k))].observe(ns_per_op);
    }

    /// Predicted total cost (ns) of running `k` queries of `family` on
    /// `engine`. Uses the octave cell when populated, else the nearest
    /// populated octave's ns/op; `None` when the engine has never been
    /// observed for this family.
    pub fn predict(&self, family: usize, engine: Engine, k: u32) -> Option<u64> {
        if family >= NUM_FAMILIES || k == 0 {
            return None;
        }
        let want = k_octave(k);
        let e = engine.index();
        let mut best: Option<(usize, f64)> = None; // (octave distance, ns/op)
        for o in 0..NUM_OCTAVES {
            let (count, ns) = self.cells[cell_index(family, e, o)].get();
            if count == 0 {
                continue;
            }
            let dist = want.abs_diff(o);
            if best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, ns));
            }
            if dist == 0 {
                break;
            }
        }
        best.map(|(_, ns)| (ns * k as f64) as u64)
    }

    /// Choose the engine for `k` queries of `family`. Epsilon-greedy:
    /// explore the least-observed engine at this octave with probability
    /// `explore_frac` (ties break toward the lowest engine index),
    /// otherwise exploit the cheapest prediction (ties likewise), and
    /// default to [`Engine::Batched`] when nothing is known.
    ///
    /// The explore roll consumes one decision ordinal, so with a fixed
    /// seed the same call sequence yields the same decision sequence.
    pub fn choose(&self, family: usize, k: u32) -> Decision {
        let ordinal = self.decisions.fetch_add(1, Ordering::Relaxed);
        if family >= NUM_FAMILIES || k == 0 {
            return Decision {
                engine: Engine::Batched,
                predicted_ns: 0,
                explored: false,
            };
        }
        let roll = splitmix64(self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        if self.explore_bits > 0 && (roll as u32) < self.explore_bits {
            // Explore: the engine with the fewest observations at this
            // octave still has the most to teach the table.
            let o = k_octave(k);
            let engine = (0..NUM_ENGINES)
                .min_by_key(|&e| self.cells[cell_index(family, e, o)].get().0)
                .and_then(Engine::from_index)
                .unwrap_or(Engine::Batched);
            return Decision {
                engine,
                predicted_ns: self.predict(family, engine, k).unwrap_or(0),
                explored: true,
            };
        }
        let best = (0..NUM_ENGINES)
            .filter_map(|e| {
                let engine = Engine::from_index(e)?;
                Some((self.predict(family, engine, k)?, e))
            })
            .min();
        match best {
            Some((predicted_ns, e)) => Decision {
                engine: Engine::from_index(e).unwrap_or(Engine::Batched),
                predicted_ns,
                explored: false,
            },
            None => Decision {
                engine: Engine::Batched,
                predicted_ns: 0,
                explored: false,
            },
        }
    }

    /// Count one executed dispatch (chosen engine, batch size, whether
    /// it was an exploration) — the serve tier calls this when it
    /// actually runs the fan-out, in every dispatch mode.
    pub fn note_dispatch(&self, family: usize, engine: Engine, k: u32, explored: bool) {
        if family >= NUM_FAMILIES {
            return;
        }
        let i = family * NUM_ENGINES + engine.index();
        self.chosen[i].fetch_add(1, Ordering::Relaxed);
        self.chosen_queries[i].fetch_add(k as u64, Ordering::Relaxed);
        if explored {
            self.explored_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative dispatch counters.
    pub fn dispatch_stats(&self) -> DispatchStats {
        let mut s = DispatchStats::default();
        for f in 0..NUM_FAMILIES {
            for e in 0..NUM_ENGINES {
                let i = f * NUM_ENGINES + e;
                s.decisions[f][e] = self.chosen[i].load(Ordering::Relaxed);
                s.queries[f][e] = self.chosen_queries[i].load(Ordering::Relaxed);
                s.total += s.decisions[f][e];
            }
        }
        s.explored = self.explored_total.load(Ordering::Relaxed);
        s
    }

    /// The fitted per-family switch point: the smallest batch size
    /// `2^o` from which the batched engine is the predicted winner at
    /// every higher octave where both sides have data. `None` when the
    /// table cannot compare the engines anywhere (or the batched path
    /// never wins).
    pub fn crossover_k(&self, family: usize) -> Option<u64> {
        if family >= NUM_FAMILIES {
            return None;
        }
        let mut crossover = None;
        // Scan from the largest octave down: extend the batched-winning
        // suffix while it holds, reset it when a single-query engine wins.
        for o in (0..NUM_OCTAVES).rev() {
            let (bc, bns) = self.cells[cell_index(family, Engine::Batched.index(), o)].get();
            let single = (1..NUM_ENGINES)
                .filter_map(|e| {
                    let (c, ns) = self.cells[cell_index(family, e, o)].get();
                    (c > 0).then_some(ns)
                })
                .fold(None::<f64>, |acc, ns| Some(acc.map_or(ns, |a| a.min(ns))));
            let (Some(sns), true) = (single, bc > 0) else {
                continue; // octave not comparable; the suffix stands
            };
            if bns <= sns {
                crossover = Some(1u64 << o);
            } else if crossover.is_some() {
                break; // a single engine wins here: the suffix ends above
            }
        }
        crossover
    }

    /// The learned table + decision counters as a JSON object — the
    /// `/costmodel` endpoint body.
    pub fn to_json(&self, mode: &str) -> String {
        let stats = self.dispatch_stats();
        let mut out = format!(
            "{{\"mode\":\"{}\",\"explore_frac\":{:.4},\"decisions\":{},\"explored\":{},\
             \"engines\":[\"batched\",\"independent\",\"sequential\"],\"families\":{{",
            escape_json(mode),
            self.explore_frac(),
            stats.total,
            stats.explored,
        );
        for (f, name) in crate::trace::FAMILY_NAMES.iter().enumerate() {
            if f > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{{"));
            match self.crossover_k(f) {
                Some(k) => out.push_str(&format!("\"crossover_k\":{k},")),
                None => out.push_str("\"crossover_k\":null,"),
            }
            out.push_str(&format!(
                "\"decisions\":[{},{},{}],\"queries\":[{},{},{}],\"table\":{{",
                stats.decisions[f][0],
                stats.decisions[f][1],
                stats.decisions[f][2],
                stats.queries[f][0],
                stats.queries[f][1],
                stats.queries[f][2],
            ));
            let mut first_engine = true;
            for (e, ename) in ENGINE_NAMES.iter().enumerate() {
                let populated: Vec<(usize, u64, f64)> = (0..NUM_OCTAVES)
                    .filter_map(|o| {
                        let (c, ns) = self.cells[cell_index(f, e, o)].get();
                        (c > 0).then_some((o, c, ns))
                    })
                    .collect();
                if populated.is_empty() {
                    continue;
                }
                if !first_engine {
                    out.push(',');
                }
                first_engine = false;
                out.push_str(&format!("\"{ename}\":["));
                for (i, (o, c, ns)) in populated.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"k_min\":{},\"count\":{},\"ns_per_op\":{:.1}}}",
                        1u64 << o,
                        c,
                        ns
                    ));
                }
                out.push(']');
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }

    /// Snapshot the learned cells for persistence.
    pub fn table(&self) -> CalibrationTable {
        CalibrationTable {
            cells: self.cells.iter().map(|c| c.get()).collect(),
        }
    }

    /// Warm-start from a persisted table: cells with observations
    /// overwrite this model's (normally empty) cells.
    pub fn load_table(&self, table: &CalibrationTable) {
        for (cell, &(count, ns)) in self.cells.iter().zip(&table.cells) {
            if count > 0 && ns.is_finite() && ns >= 0.0 {
                cell.set(count, ns);
            }
        }
    }
}

impl std::fmt::Debug for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostModel")
            .field("explore_frac", &self.explore_frac())
            .field("decisions", &self.decisions.load(Ordering::Relaxed))
            .finish()
    }
}

/// Magic bytes opening a calibration-table payload.
const TABLE_MAGIC: &[u8; 4] = b"RCCM";
/// Payload format version.
const TABLE_VERSION: u32 = 1;

/// A point-in-time copy of the model's learned cells —
/// `(count, ns_per_op)` per (family, engine, octave) — encodable into
/// one CRC-framed record ([`crate::frame`], the rc-store WAL wire
/// discipline) for on-disk persistence.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationTable {
    /// `NUM_FAMILIES * NUM_ENGINES * NUM_OCTAVES` cells in
    /// `cell_index` order.
    pub cells: Vec<(u64, f64)>,
}

impl CalibrationTable {
    /// Encode as one CRC-framed record: `magic | version | dims |
    /// cells`, wrapped in the length + CRC-32 frame header.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(20 + self.cells.len() * 16);
        payload.extend_from_slice(TABLE_MAGIC);
        payload.extend_from_slice(&TABLE_VERSION.to_le_bytes());
        payload.extend_from_slice(&(NUM_FAMILIES as u32).to_le_bytes());
        payload.extend_from_slice(&(NUM_ENGINES as u32).to_le_bytes());
        payload.extend_from_slice(&(NUM_OCTAVES as u32).to_le_bytes());
        for &(count, ns) in &self.cells {
            payload.extend_from_slice(&count.to_le_bytes());
            payload.extend_from_slice(&ns.to_bits().to_le_bytes());
        }
        let mut out = Vec::with_capacity(frame::FRAME_HEADER + payload.len());
        frame::encode_frame(&mut out, &payload);
        out
    }

    /// Decode a buffer produced by [`encode`](Self::encode). `None` on
    /// any torn, truncated, bit-flipped, or dimension-mismatched input —
    /// never panics and never over-allocates (the cell count is bounded
    /// by the checksummed dims, which must match this build's).
    pub fn decode(bytes: &[u8]) -> Option<CalibrationTable> {
        let (payload, consumed) = frame::decode_frame(bytes, 0)?;
        if consumed != bytes.len() || payload.len() < 20 || &payload[0..4] != TABLE_MAGIC {
            return None;
        }
        let word = |at: usize| u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
        if word(4) != TABLE_VERSION
            || word(8) as usize != NUM_FAMILIES
            || word(12) as usize != NUM_ENGINES
            || word(16) as usize != NUM_OCTAVES
        {
            return None;
        }
        let n = NUM_FAMILIES * NUM_ENGINES * NUM_OCTAVES;
        if payload.len() != 20 + n * 16 {
            return None;
        }
        let mut cells = Vec::with_capacity(n);
        for i in 0..n {
            let at = 20 + i * 16;
            let count = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
            let ns = f64::from_bits(u64::from_le_bytes(
                payload[at + 8..at + 16].try_into().unwrap(),
            ));
            cells.push((count, ns));
        }
        Some(CalibrationTable { cells })
    }

    /// Write the encoded table to `path` (best-effort durable: written
    /// to a sibling temp file, then renamed over).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and decode a table from `path`. `None` when the file is
    /// missing, unreadable, or fails [`decode`](Self::decode) — a cold
    /// start, never an error.
    pub fn load(path: &std::path::Path) -> Option<CalibrationTable> {
        CalibrationTable::decode(&std::fs::read(path).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octaves_cover_the_k_range() {
        assert_eq!(k_octave(1), 0);
        assert_eq!(k_octave(2), 1);
        assert_eq!(k_octave(3), 1);
        assert_eq!(k_octave(1024), 10);
        assert_eq!(k_octave(u32::MAX), NUM_OCTAVES - 1);
        assert_eq!(k_octave(0), 0, "degenerate k clamps, not panics");
    }

    #[test]
    fn cold_model_defaults_to_batched() {
        let m = CostModel::new(0.0, 7);
        let d = m.choose(0, 100);
        assert_eq!(d.engine, Engine::Batched);
        assert!(!d.explored);
        assert_eq!(d.predicted_ns, 0);
        assert_eq!(m.crossover_k(0), None);
    }

    #[test]
    fn exploit_picks_the_cheapest_observed_engine() {
        let m = CostModel::new(0.0, 7);
        // At k≈8: independent 10 ns/op, batched 100 ns/op.
        for _ in 0..4 {
            m.observe(2, Engine::Independent, 8, 80);
            m.observe(2, Engine::Batched, 8, 800);
        }
        let d = m.choose(2, 8);
        assert_eq!(d.engine, Engine::Independent);
        assert!(!d.explored);
        assert_eq!(d.predicted_ns, 80);
        // At k≈4096 the batched path is cheaper per op.
        m.observe(2, Engine::Batched, 4096, 4096 * 2);
        m.observe(2, Engine::Independent, 4096, 4096 * 30);
        assert_eq!(m.choose(2, 4096).engine, Engine::Batched);
    }

    #[test]
    fn prediction_falls_back_to_nearest_octave() {
        let m = CostModel::new(0.0, 7);
        m.observe(0, Engine::Sequential, 16, 16 * 50);
        // No cell at octave 0, so k=2 borrows octave 4's ns/op.
        assert_eq!(m.predict(0, Engine::Sequential, 2), Some(100));
        assert_eq!(m.predict(0, Engine::Batched, 2), None);
    }

    #[test]
    fn explore_targets_the_least_observed_engine() {
        let m = CostModel::new(1.0, 7); // always explore
        m.observe(1, Engine::Batched, 8, 100);
        m.observe(1, Engine::Independent, 8, 100);
        let d = m.choose(1, 8);
        assert!(d.explored);
        assert_eq!(
            d.engine,
            Engine::Sequential,
            "the unobserved engine is sampled first"
        );
        m.observe(1, Engine::Sequential, 8, 100);
        m.observe(1, Engine::Sequential, 8, 100);
        assert_eq!(
            m.choose(1, 8).engine,
            Engine::Batched,
            "ties break toward the lowest engine index"
        );
    }

    #[test]
    fn explore_sequence_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<Decision> {
            let m = CostModel::new(0.3, seed);
            (0..400)
                .map(|i| {
                    let fam = (i % 7) as usize;
                    let k = 1 + (i % 40) as u32;
                    let d = m.choose(fam, k);
                    // Observations feed back, as in the live loop.
                    m.observe(fam, d.engine, k, 1_000 + i * 13);
                    d
                })
                .collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed => same decision sequence");
        assert!(
            a.iter().any(|d| d.explored) && a.iter().any(|d| !d.explored),
            "a 30% explore rate mixes both kinds in 400 decisions"
        );
        let c = run(43);
        assert_ne!(
            a.iter().map(|d| d.explored).collect::<Vec<_>>(),
            c.iter().map(|d| d.explored).collect::<Vec<_>>(),
            "different seed => different explore schedule"
        );
    }

    #[test]
    fn crossover_fits_the_switch_point() {
        let m = CostModel::new(0.0, 7);
        // Independent: flat 50 ns/op. Batched: 6400/k ns/op (sweep cost
        // amortizes) — crosses at k = 128.
        for o in 0..12 {
            let k = 1u32 << o;
            m.observe(5, Engine::Independent, k, 50 * k as u64);
            m.observe(5, Engine::Batched, k, 6_400);
        }
        assert_eq!(m.crossover_k(5), Some(128));
        // A family where batched always wins crosses at k = 1.
        m.observe(4, Engine::Batched, 1, 10);
        m.observe(4, Engine::Independent, 1, 100);
        assert_eq!(m.crossover_k(4), Some(1));
        // A family where the single path always wins never crosses.
        m.observe(3, Engine::Batched, 8, 8_000);
        m.observe(3, Engine::Sequential, 8, 80);
        assert_eq!(m.crossover_k(3), None);
    }

    #[test]
    fn dispatch_stats_accumulate() {
        let m = CostModel::new(0.0, 7);
        m.note_dispatch(0, Engine::Batched, 10, false);
        m.note_dispatch(0, Engine::Independent, 3, true);
        m.note_dispatch(0, Engine::Independent, 4, true);
        let s = m.dispatch_stats();
        assert_eq!(s.decisions[0][0], 1);
        assert_eq!(s.decisions[0][1], 2);
        assert_eq!(s.queries[0][1], 7);
        assert_eq!(s.explored, 2);
        assert_eq!(s.total, 3);
    }

    #[test]
    fn json_is_wellformed_and_carries_the_table() {
        let m = CostModel::new(0.1, 7);
        m.observe(0, Engine::Batched, 100, 5_000);
        m.observe(0, Engine::Independent, 4, 100);
        m.note_dispatch(0, Engine::Batched, 100, false);
        let json = m.to_json("adaptive");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"mode\":\"adaptive\""));
        assert!(json.contains("\"conn\":{"));
        assert!(json.contains("\"batched\":[{\"k_min\":64,"));
        assert!(json.contains("\"independent\":[{\"k_min\":4,"));
    }

    #[test]
    fn table_roundtrips_and_warm_starts() {
        let m = CostModel::new(0.0, 7);
        m.observe(2, Engine::Independent, 8, 240);
        m.observe(6, Engine::Batched, 512, 51_200);
        let table = m.table();
        let bytes = table.encode();
        let back = CalibrationTable::decode(&bytes).expect("round trip");
        assert_eq!(back, table);

        let warm = CostModel::new(0.0, 9);
        warm.load_table(&back);
        assert_eq!(warm.predict(2, Engine::Independent, 8), Some(240));
        assert_eq!(warm.predict(6, Engine::Batched, 512), Some(51_200));
        assert_eq!(warm.predict(2, Engine::Batched, 8), None);
    }

    #[test]
    fn torn_and_bitflipped_tables_are_rejected_without_panic() {
        let m = CostModel::new(0.0, 7);
        m.observe(0, Engine::Batched, 64, 1_000);
        let valid = m.table().encode();
        assert!(CalibrationTable::decode(&valid).is_some(), "control");
        for cut in 0..valid.len() {
            assert!(
                CalibrationTable::decode(&valid[..cut]).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
        for bit in 0..64 {
            let h = splitmix64(bit ^ 0xD15_7AB1E);
            let mut mutated = valid.clone();
            let at = (h % mutated.len() as u64) as usize;
            mutated[at] ^= 1 << ((h >> 32) % 8);
            assert!(
                CalibrationTable::decode(&mutated).is_none(),
                "bit flip at byte {at} must be rejected"
            );
        }
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join(format!("rc-costmodel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calibration.rccm");
        assert!(CalibrationTable::load(&path).is_none(), "missing => cold");
        let m = CostModel::new(0.0, 7);
        m.observe(1, Engine::Sequential, 2, 90);
        m.table().save(&path).expect("save");
        let loaded = CalibrationTable::load(&path).expect("load");
        assert_eq!(loaded, m.table());
        std::fs::write(&path, b"garbage").unwrap();
        assert!(CalibrationTable::load(&path).is_none(), "garbage => cold");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
