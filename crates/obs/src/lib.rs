//! # rc-obs — observability for the rcforest stack
//!
//! Zero-dependency metrics and tracing shared by rc-serve, rc-store,
//! the bench harness, and the work-stealing pool shim:
//!
//! - [`Histogram`] — the concurrent quarter-octave latency histogram
//!   (promoted from rc-serve), with [`Histogram::merge`] for
//!   aggregating per-thread or per-family histograms.
//! - [`MetricsRegistry`] — named counters/gauges/histograms with
//!   lock-free recording, point-in-time [`MetricsSnapshot`]s, and
//!   Prometheus-text / JSON exports.
//! - [`FlightRecorder`] — a fixed-capacity lock-free ring of
//!   [`EpochTrace`] records attributing each epoch's wall time to its
//!   phases (drain, admission, commit, WAL, publish, back-pressure,
//!   query fan-out per family, respond), dumpable on demand and on
//!   worker failure.
//! - [`RequestTrace`] / [`TraceSink`] — per-request causal span traces
//!   with deterministic 1-in-N sampling ([`trace_sampled`]), an
//!   always-capture slow-request ring, and latency [`Exemplars`]
//!   linking histogram buckets back to trace ids.
//! - [`CostModel`] — an online per-(family, engine, k-octave) query
//!   cost profiler with epsilon-greedy exploration, a per-family
//!   crossover estimator, and a CRC-framed [`CalibrationTable`] for
//!   warm restarts; drives the serve tier's adaptive query dispatch.
//! - [`ObsServer`] — an opt-in, zero-dep blocking TCP endpoint serving
//!   `/metrics`, `/metrics.json`, `/health`, `/ready`, `/flight`,
//!   `/traces`, and `/costmodel` over HTTP/1.0, plus a binary
//!   `DUMP_TELEMETRY` frame protocol byte-compatible with the rc-store
//!   WAL codec.
//! - [`Watchdog`] — an epoch-stall detector that flips a shared
//!   [`HealthState`] (and thus `/health` + `/ready`) when a watched
//!   component stays busy without progress past a deadline.
//!
//! Everything here is `std`-only and allocation-free on the record
//! paths; see the README "Observability" section for the metric-name
//! table and measured overhead.

mod costmodel;
mod histogram;
mod registry;
mod reqtrace;
mod serve_http;
mod trace;
mod watchdog;

pub use costmodel::{
    k_octave, CalibrationTable, CostModel, Decision, DispatchMode, DispatchStats, Engine,
    ENGINE_NAMES, NUM_ENGINES, NUM_FAMILIES, NUM_OCTAVES,
};
pub use histogram::{Histogram, HistogramSummary};
pub use registry::{Counter, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use reqtrace::{
    splitmix64, trace_sampled, ExemplarEntry, Exemplars, RequestTrace, Span, TraceDump, TraceSink,
    EXEMPLAR_BUCKETS, MAX_SPANS,
};
pub use serve_http::{
    epoch_trace_json, frame, HealthView, ObsServer, ObsServerConfig, ObsSource, DUMP_TELEMETRY_CMD,
};
pub use trace::{EpochTrace, FlightRecorder, PhaseTotals, RecycleOutcome, FAMILY_NAMES};
pub use watchdog::{HealthState, Probe, StallInfo, Watchdog, WatchdogConfig};
