//! # rc-obs — observability for the rcforest stack
//!
//! Zero-dependency metrics and tracing shared by rc-serve, rc-store,
//! the bench harness, and the work-stealing pool shim:
//!
//! - [`Histogram`] — the concurrent quarter-octave latency histogram
//!   (promoted from rc-serve), with [`Histogram::merge`] for
//!   aggregating per-thread or per-family histograms.
//! - [`MetricsRegistry`] — named counters/gauges/histograms with
//!   lock-free recording, point-in-time [`MetricsSnapshot`]s, and
//!   Prometheus-text / JSON exports.
//! - [`FlightRecorder`] — a fixed-capacity lock-free ring of
//!   [`EpochTrace`] records attributing each epoch's wall time to its
//!   phases (drain, admission, commit, WAL, publish, back-pressure,
//!   query fan-out per family, respond), dumpable on demand and on
//!   worker failure.
//!
//! Everything here is `std`-only and allocation-free on the record
//! paths; see the README "Observability" section for the metric-name
//! table and measured overhead.

mod histogram;
mod registry;
mod trace;

pub use histogram::{Histogram, HistogramSummary};
pub use registry::{Counter, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use trace::{EpochTrace, FlightRecorder, PhaseTotals, RecycleOutcome, FAMILY_NAMES};
