//! Lock-free log-bucketed histogram, shared across the stack.
//!
//! Promoted out of `rc-serve` (which re-exports it as `LatencyHistogram`)
//! so every subsystem — the coalescer, the query executor, the WAL —
//! records into the same bucket layout and per-thread/per-family
//! histograms can be [`merge`](Histogram::merge)d into one snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// 8 exact sub-8ns buckets + 4 sub-buckets per octave for exponents
/// 3..=63: `8 + 61 * 4 = 252`.
const BUCKETS: usize = 252;

/// Concurrent log-linear histogram: each power-of-two octave splits into
/// 4 linear sub-buckets (values below 8 are exact), so a reported
/// percentile overshoots the true value by at most 25% — where plain
/// power-of-two buckets are off by up to 2x and collapse nearby
/// percentiles onto the same bound. Recording is a single relaxed
/// `fetch_add`; percentiles are computed from a snapshot. Values are
/// nanoseconds everywhere in this workspace, but the bucket math is
/// unit-agnostic.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

/// Bucket index of `ns`: identity below 8; otherwise the octave
/// (`e = floor(log2 ns)`) selects a group of 4 and the two bits below
/// the leading bit select the sub-bucket.
fn bucket_of(ns: u64) -> usize {
    if ns < 8 {
        return ns as usize;
    }
    let e = 63 - ns.leading_zeros() as usize;
    let sub = ((ns >> (e - 2)) & 3) as usize;
    8 + (e - 3) * 4 + sub
}

/// Inclusive upper bound of bucket `i` — the value `summary` reports
/// when a percentile lands there. Pessimistic (every sample in the
/// bucket is `<=` it) and tight to 25%.
fn bucket_upper(i: usize) -> u64 {
    if i < 8 {
        return i as u64;
    }
    let e = 3 + (i - 8) / 4;
    let sub = ((i - 8) % 4) as u128;
    let bound = (1u128 << e) + (sub + 1) * (1u128 << (e - 2)) - 1;
    bound.min(u64::MAX as u128) as u64
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Bucket-wise saturating merge of `other` into `self`, so
    /// per-thread or per-family histograms can be aggregated into one
    /// snapshot. Because both sides share the bucket layout, a merged
    /// percentile is exactly the percentile a single histogram fed the
    /// pooled samples would report — bounding the true pooled-sample
    /// percentile from above by at most 25% (the bucket guarantee).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let merged_sum = self
            .sum_ns
            .load(Ordering::Relaxed)
            .saturating_add(other.sum_ns.load(Ordering::Relaxed));
        self.sum_ns.store(merged_sum, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for reporting.
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let pct = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut acc = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                acc += c;
                if acc >= target {
                    // Upper bound of the bucket: pessimistic but stable.
                    return bucket_upper(i);
                }
            }
            u64::MAX
        };
        HistogramSummary {
            count,
            sum_ns,
            mean_ns: sum_ns.checked_div(count).unwrap_or(0),
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
        }
    }
}

/// Percentile snapshot of a [`Histogram`] (bucket upper bounds, within
/// 25% of the true value).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Running sum of all samples (may wrap for extreme totals).
    pub sum_ns: u64,
    /// Exact mean (from the running sum, not the buckets).
    pub mean_ns: u64,
    /// Median (quarter-octave resolution).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_land_in_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(1_000); // bucket [512, 1024)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20)
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_ns >= 1_000 && s.p50_ns < 2_048, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= 1_000_000, "p99 {}", s.p99_ns);
        assert_eq!(s.mean_ns, (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn zero_ns_sample_is_clamped() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let h = Histogram::default();
        h.record(5_000); // bucket [4096, 8192)
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_ns, 5_000);
        for p in [s.p50_ns, s.p95_ns, s.p99_ns] {
            assert!((4_096..8_192).contains(&p), "percentile {p} off-bucket");
        }
    }

    #[test]
    fn bucket_saturation_at_u64_max() {
        // u64::MAX lands in the top bucket; its reported upper bound must
        // clamp to u64::MAX instead of overflowing 2^64.
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_ns, u64::MAX);
        assert_eq!(s.p99_ns, u64::MAX);
        // The running sum wraps (relaxed fetch_add), but count stays exact.
        assert_eq!(h.summary().count, 2);
    }

    #[test]
    fn p99_on_tiny_counts_tracks_the_maximum() {
        // With fewer than 100 samples, ceil(count * 0.99) == count, so
        // p99 must sit in the slowest sample's bucket — one outlier among
        // two samples is "the p99".
        let h = Histogram::default();
        h.record(1_000); // [512, 1024)
        h.record(1 << 30); // [2^30, 2^31)
        let s = h.summary();
        assert!(s.p50_ns < 2_048, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= (1 << 30), "p99 {}", s.p99_ns);
        // Rank boundary: with 99 fast + 1 slow the ceil-rank p99 target
        // is rank 99 — still the fast bucket; a second slow sample pushes
        // rank 100 of 101 into the slow bucket.
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1 << 30);
        let s = h.summary();
        assert!(s.p95_ns < 2_048, "p95 {}", s.p95_ns);
        assert!(
            s.p99_ns < 2_048,
            "p99 rank 99/100 is fast, got {}",
            s.p99_ns
        );
        h.record(1 << 30);
        let s = h.summary();
        assert!(
            s.p99_ns >= (1 << 30),
            "p99 rank 100/101 is slow, got {}",
            s.p99_ns
        );
    }

    #[test]
    fn quarter_octave_buckets_separate_same_octave_percentiles() {
        // The regression that motivated the quarter-octave layout: 2.4 ms
        // and 3.9 ms share the [2^21, 2^22) octave, so power-of-two
        // buckets report both p50 and p99 as 4194303 ns. Quarter-octave
        // sub-buckets must keep them apart.
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(2_400_000);
        }
        for _ in 0..10 {
            h.record(3_900_000);
        }
        let s = h.summary();
        assert_eq!(s.p50_ns, 2_621_439, "p50 in [2^21, 2^21 + 2^19)");
        assert_eq!(s.p99_ns, 4_194_303, "p99 in [2^21 + 3*2^19, 2^22)");
        assert!(s.p50_ns < s.p99_ns, "same-octave percentiles separated");
    }

    #[test]
    fn bucket_bounds_are_pinned() {
        // Boundary pins for the index/bound math: exact below 8 ns,
        // then 4 sub-buckets per octave.
        for ns in 0..8u64 {
            assert_eq!(bucket_of(ns), ns as usize);
            assert_eq!(bucket_upper(ns as usize), ns);
        }
        // First octave group: [8,10) [10,12) [12,14) [14,16).
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_upper(8), 9);
        assert_eq!(bucket_of(10), 9);
        assert_eq!(bucket_of(15), 11);
        assert_eq!(bucket_upper(11), 15);
        // 1000 ns sits in [896, 1024) — upper bound 1023.
        assert_eq!(bucket_upper(bucket_of(1_000)), 1_023);
        // 5000 ns sits in [4096, 5120) — upper bound 5119.
        assert_eq!(bucket_upper(bucket_of(5_000)), 5_119);
        // Top bucket clamps to u64::MAX instead of overflowing 2^64.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn reported_bound_within_25_percent_of_sample() {
        // The design guarantee: a percentile overshoots the true sample
        // value by at most 25% (and never undershoots).
        let mut ns = 1u64;
        while ns < u64::MAX / 3 {
            let upper = bucket_upper(bucket_of(ns));
            assert!(upper >= ns, "upper {upper} < sample {ns}");
            assert!(
                (upper as u128) <= (ns as u128) * 5 / 4,
                "upper {upper} overshoots {ns} by more than 25%"
            );
            ns = ns.saturating_mul(7) / 3 + 1; // irregular stride across octaves
        }
    }

    #[test]
    fn percentile_ordering_is_monotone() {
        let h = Histogram::default();
        for i in 1..=1_000u64 {
            h.record(i * 1_000);
        }
        let s = h.summary();
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        assert!(s.mean_ns > 0);
    }

    /// Deterministic xorshift so the merge property test needs no RNG dep.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn merge_equals_pooled_histogram() {
        // Merging k part-histograms must be indistinguishable from one
        // histogram fed every sample.
        let mut seed = 0x5EED_CAFE_u64;
        let parts: Vec<Histogram> = (0..4).map(|_| Histogram::default()).collect();
        let pooled = Histogram::default();
        for i in 0..10_000u64 {
            // Cap at 2^48 so the pooled running sum cannot wrap.
            let v = xorshift(&mut seed) >> (16 + i % 48);
            parts[(i % 4) as usize].record(v);
            pooled.record(v);
        }
        let merged = Histogram::default();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.summary(), pooled.summary());
    }

    #[test]
    fn merged_percentiles_bound_pooled_sample_percentiles() {
        // Property: for a random split of random samples into per-thread
        // histograms, each merged percentile is >= the exact pooled-sample
        // percentile and overshoots it by at most 25% (+7 absolute slack
        // for the exact sub-8 buckets' integer boundaries).
        let mut seed = 0xD15EA5E_u64;
        for round in 0..20 {
            let k = 2 + (round % 5) as usize;
            let parts: Vec<Histogram> = (0..k).map(|_| Histogram::default()).collect();
            let n = 500 + (round * 137) as usize;
            let mut samples: Vec<u64> = (0..n)
                .map(|_| xorshift(&mut seed) % (1u64 << (10 + round % 30)))
                .collect();
            for (i, &s) in samples.iter().enumerate() {
                parts[i % k].record(s);
            }
            let merged = Histogram::default();
            for p in &parts {
                merged.merge(p);
            }
            let s = merged.summary();
            samples.sort_unstable();
            for (q, got) in [(0.50, s.p50_ns), (0.95, s.p95_ns), (0.99, s.p99_ns)] {
                let rank = ((n as f64) * q).ceil().max(1.0) as usize;
                let exact = samples[rank - 1];
                assert!(got >= exact, "round {round}: q{q} {got} < exact {exact}");
                assert!(
                    (got as u128) <= (exact as u128) * 5 / 4 + 7,
                    "round {round}: q{q} {got} overshoots exact {exact}"
                );
            }
            assert_eq!(s.count, n as u64);
        }
    }

    #[test]
    fn merge_saturates_instead_of_wrapping_sum() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(u64::MAX - 10);
        b.record(u64::MAX - 10);
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_ns, u64::MAX, "merge saturates the running sum");
    }
}
