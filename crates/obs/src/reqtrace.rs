//! Per-request causal tracing: spans, deterministic sampling, the
//! sampled/slow trace rings, and latency exemplars.
//!
//! A [`RequestTrace`] attributes one request's end-to-end latency to a
//! causally ordered sequence of [`Span`]s — queue wait, then the epoch
//! phases the request rode through (drain, admit, commit, WAL append,
//! publish, handoff, query fan-out), then respond. Traces are captured
//! for a deterministic 1-in-N sample of requests ([`trace_sampled`])
//! plus *every* request that exceeds a slow threshold, and retained in
//! the fixed-capacity rings of a [`TraceSink`]. Each captured trace also
//! registers a latency [`Exemplars`] entry, so a p99 spike in the
//! latency histogram links back to concrete trace ids.
//!
//! Everything is `std`-only; a capture is one short `Mutex` push of a
//! `Copy` record, and the sampling decision is a single 64-bit mix.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum spans one [`RequestTrace`] can carry (the deepest pipeline —
/// queue, drain, admit, commit, wal, publish, handoff, query, respond —
/// uses 9).
pub const MAX_SPANS: usize = 10;

/// One contiguous interval of a request's life, relative to its submit
/// instant. Spans are laid end to end: `start_ns` is non-decreasing and
/// each span begins where the previous one ended, so their durations sum
/// to the request's end-to-end latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Phase name (`"queue"`, `"drain"`, …, `"query:path"`, `"respond"`).
    pub name: &'static str,
    /// Offset from the request's submit instant.
    pub start_ns: u64,
    /// Span duration.
    pub dur_ns: u64,
}

/// One captured request trace. `Copy` (fixed span array, `&'static`
/// names) so rings and dumps never allocate per record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestTrace {
    /// Trace id — stable across runs for the same submission stream
    /// (rc-serve uses the global submission sequence number + 1, so `0`
    /// never occurs and can mean "no trace context").
    pub trace_id: u64,
    /// The epoch that served the request.
    pub epoch: u64,
    /// Request kind (`"link"`, `"path_sum"`, …).
    pub kind: &'static str,
    /// Captured by the deterministic 1-in-N sampler.
    pub sampled: bool,
    /// Captured because end-to-end latency exceeded the slow threshold.
    pub slow: bool,
    /// Measured end-to-end latency (submit to response slot fill).
    pub e2e_ns: u64,
    /// The spans, causally ordered; only the first `nspans` are valid.
    pub spans: [Span; MAX_SPANS],
    /// Number of valid entries in `spans`.
    pub nspans: usize,
}

impl Default for RequestTrace {
    fn default() -> Self {
        RequestTrace {
            trace_id: 0,
            epoch: 0,
            kind: "",
            sampled: false,
            slow: false,
            e2e_ns: 0,
            spans: [Span::default(); MAX_SPANS],
            nspans: 0,
        }
    }
}

impl RequestTrace {
    /// The valid spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.nspans]
    }

    /// Append a span; silently drops past [`MAX_SPANS`] (a wiring bug —
    /// the serve layer never emits that many).
    pub fn push_span(&mut self, name: &'static str, start_ns: u64, dur_ns: u64) {
        if self.nspans < MAX_SPANS {
            self.spans[self.nspans] = Span {
                name,
                start_ns,
                dur_ns,
            };
            self.nspans += 1;
        }
    }

    /// Sum of all span durations (equals `e2e_ns` for a well-formed
    /// trace, since spans partition the request's lifetime).
    pub fn span_sum_ns(&self) -> u64 {
        self.spans().iter().map(|s| s.dur_ns).sum()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace_id\":{},\"epoch\":{},\"kind\":\"{}\",\"sampled\":{},\
             \"slow\":{},\"e2e_ns\":{},\"spans\":[",
            self.trace_id, self.epoch, self.kind, self.sampled, self.slow, self.e2e_ns
        );
        for (i, s) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                s.name, s.start_ns, s.dur_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

/// SplitMix64 — the mixing function behind [`trace_sampled`]. Public so
/// tests (and future sharded routers) can reproduce the decision.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic 1-in-`sample` trace sampling: pure function of
/// `(seed, trace_id)`, so the same seed and submission stream select the
/// same trace-id set on every run. `sample == 0` disables sampling,
/// `sample == 1` captures everything.
pub fn trace_sampled(seed: u64, trace_id: u64, sample: u64) -> bool {
    match sample {
        0 => false,
        1 => true,
        n => splitmix64(seed ^ trace_id).is_multiple_of(n),
    }
}

/// Number of latency octaves [`Exemplars`] distinguishes (covers 1 ns to
/// ~584 years; bucket `i` holds latencies in `[2^i, 2^(i+1))`).
pub const EXEMPLAR_BUCKETS: usize = 64;

/// One exemplar: the most recent trace id observed in a latency bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExemplarEntry {
    /// Metric the exemplar belongs to (e.g. `"serve_request_latency_ns"`).
    pub metric: &'static str,
    /// Inclusive upper bound of the latency octave, in ns.
    pub bucket_ns: u64,
    /// Trace id of the last request observed in the bucket.
    pub trace_id: u64,
    /// That request's exact recorded latency.
    pub latency_ns: u64,
}

/// Last-write-wins trace-id exemplars per latency octave: two relaxed
/// atomic stores per observation, so attaching exemplars to a histogram
/// path costs nothing measurable. A reader pairing `(trace_id, ns)` may
/// observe a torn pair across a racing write — both halves are still
/// valid recent observations of the bucket, which is all an exemplar
/// promises.
#[derive(Debug)]
pub struct Exemplars {
    ids: [AtomicU64; EXEMPLAR_BUCKETS],
    ns: [AtomicU64; EXEMPLAR_BUCKETS],
}

impl Default for Exemplars {
    fn default() -> Self {
        Exemplars {
            ids: std::array::from_fn(|_| AtomicU64::new(0)),
            ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Exemplars {
    fn bucket_of(latency_ns: u64) -> usize {
        (63 - latency_ns.max(1).leading_zeros()) as usize
    }

    /// Record `trace_id` as the current exemplar for `latency_ns`'s
    /// octave. `trace_id == 0` (no trace context) is ignored.
    pub fn observe(&self, latency_ns: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let b = Self::bucket_of(latency_ns);
        self.ids[b].store(trace_id, Ordering::Relaxed);
        self.ns[b].store(latency_ns, Ordering::Relaxed);
    }

    /// Every populated bucket, smallest latency first, labelled with
    /// `metric`.
    pub fn dump(&self, metric: &'static str) -> Vec<ExemplarEntry> {
        (0..EXEMPLAR_BUCKETS)
            .filter_map(|b| {
                let trace_id = self.ids[b].load(Ordering::Relaxed);
                (trace_id != 0).then(|| ExemplarEntry {
                    metric,
                    bucket_ns: if b >= 63 { u64::MAX } else { (2u64 << b) - 1 },
                    trace_id,
                    latency_ns: self.ns[b].load(Ordering::Relaxed),
                })
            })
            .collect()
    }
}

/// Point-in-time dump of a [`TraceSink`]: the sampled ring, the slow
/// ring, exemplars, and capture totals. Serialized by the `/traces`
/// route of [`crate::ObsServer`].
#[derive(Clone, Debug, Default)]
pub struct TraceDump {
    /// Recently captured sampled traces, oldest first.
    pub recent: Vec<RequestTrace>,
    /// Recently captured slow traces, oldest first.
    pub slow: Vec<RequestTrace>,
    /// Latency exemplars (possibly from several metrics).
    pub exemplars: Vec<ExemplarEntry>,
    /// Sampled traces captured since startup (ring overflow included).
    pub sampled_total: u64,
    /// Slow traces captured since startup.
    pub slow_total: u64,
}

impl TraceDump {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"sampled_total\":{},\"slow_total\":{},\"recent\":[",
            self.sampled_total, self.slow_total
        );
        for (i, t) in self.recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("],\"slow\":[");
        for (i, t) in self.slow.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("],\"exemplars\":[");
        for (i, e) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"metric\":\"{}\",\"bucket_ns\":{},\"trace_id\":{},\"latency_ns\":{}}}",
                e.metric, e.bucket_ns, e.trace_id, e.latency_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Bounded rings of captured request traces: one for the deterministic
/// sample, one for slow requests (always captured, independent of
/// sampling), plus the latency exemplars every capture feeds.
#[derive(Debug)]
pub struct TraceSink {
    cap: usize,
    slow_cap: usize,
    recent: Mutex<VecDeque<RequestTrace>>,
    slow: Mutex<VecDeque<RequestTrace>>,
    sampled_total: AtomicU64,
    slow_total: AtomicU64,
    /// Exemplars fed by every capture (sampled or slow).
    pub exemplars: Exemplars,
}

impl TraceSink {
    /// Sink with `cap` sampled slots and `slow_cap` slow slots (min 1
    /// each).
    pub fn new(cap: usize, slow_cap: usize) -> Self {
        TraceSink {
            cap: cap.max(1),
            slow_cap: slow_cap.max(1),
            recent: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
            sampled_total: AtomicU64::new(0),
            slow_total: AtomicU64::new(0),
            exemplars: Exemplars::default(),
        }
    }

    /// Retain `t` in the ring(s) its flags select and feed the latency
    /// exemplars. A trace that is neither sampled nor slow only feeds
    /// the exemplars.
    pub fn push(&self, t: RequestTrace) {
        self.exemplars.observe(t.e2e_ns, t.trace_id);
        if t.sampled {
            self.sampled_total.fetch_add(1, Ordering::Relaxed);
            let mut r = self.recent.lock().unwrap_or_else(|e| e.into_inner());
            if r.len() >= self.cap {
                r.pop_front();
            }
            r.push_back(t);
        }
        if t.slow {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
            let mut r = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if r.len() >= self.slow_cap {
                r.pop_front();
            }
            r.push_back(t);
        }
    }

    /// Sampled traces captured since startup.
    pub fn sampled_total(&self) -> u64 {
        self.sampled_total.load(Ordering::Relaxed)
    }

    /// Slow traces captured since startup.
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// Copy out both rings + the exemplars (labelled
    /// `"serve_request_latency_ns"` — the metric every capture feeds).
    pub fn dump(&self) -> TraceDump {
        TraceDump {
            recent: self
                .recent
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .copied()
                .collect(),
            slow: self
                .slow
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .copied()
                .collect(),
            exemplars: self.exemplars.dump("serve_request_latency_ns"),
            sampled_total: self.sampled_total(),
            slow_total: self.slow_total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let picked: Vec<u64> = (1..=10_000)
            .filter(|&id| trace_sampled(7, id, 64))
            .collect();
        let again: Vec<u64> = (1..=10_000)
            .filter(|&id| trace_sampled(7, id, 64))
            .collect();
        assert_eq!(picked, again, "same seed + ids => same sample set");
        let other: Vec<u64> = (1..=10_000)
            .filter(|&id| trace_sampled(8, id, 64))
            .collect();
        assert_ne!(picked, other, "a different seed selects differently");
    }

    #[test]
    fn sampled_fraction_tracks_one_in_n() {
        for n in [4u64, 16, 64] {
            let hits = (1..=100_000u64)
                .filter(|&id| trace_sampled(42, id, n))
                .count() as f64;
            let expect = 100_000.0 / n as f64;
            assert!(
                (hits - expect).abs() < expect * 0.15,
                "1-in-{n}: {hits} hits vs expected {expect}"
            );
        }
    }

    #[test]
    fn sample_edge_rates() {
        assert!(!trace_sampled(1, 5, 0), "0 disables");
        assert!(trace_sampled(1, 5, 1), "1 captures all");
    }

    #[test]
    fn trace_spans_and_json() {
        let mut t = RequestTrace {
            trace_id: 9,
            epoch: 2,
            kind: "path_sum",
            sampled: true,
            e2e_ns: 100,
            ..RequestTrace::default()
        };
        t.push_span("queue", 0, 40);
        t.push_span("drain", 40, 10);
        t.push_span("respond", 50, 50);
        assert_eq!(t.span_sum_ns(), 100);
        assert_eq!(t.spans().len(), 3);
        let json = t.to_json();
        assert!(json.contains("\"trace_id\":9"));
        assert!(json.contains("\"name\":\"drain\",\"start_ns\":40,\"dur_ns\":10"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn span_overflow_is_dropped_not_panicked() {
        let mut t = RequestTrace::default();
        for i in 0..MAX_SPANS + 3 {
            t.push_span("x", i as u64, 1);
        }
        assert_eq!(t.nspans, MAX_SPANS);
    }

    #[test]
    fn sink_rings_are_bounded_and_totaled() {
        let sink = TraceSink::new(4, 2);
        for i in 1..=10u64 {
            sink.push(RequestTrace {
                trace_id: i,
                sampled: true,
                slow: i % 2 == 0,
                e2e_ns: i * 1000,
                ..RequestTrace::default()
            });
        }
        let d = sink.dump();
        assert_eq!(d.recent.len(), 4, "sampled ring keeps the newest 4");
        assert_eq!(d.recent.last().unwrap().trace_id, 10);
        assert_eq!(d.slow.len(), 2);
        assert_eq!(d.sampled_total, 10);
        assert_eq!(d.slow_total, 5);
        assert!(!d.exemplars.is_empty());
        let json = d.to_json();
        assert!(json.contains("\"sampled_total\":10"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn exemplars_bucket_by_octave() {
        let ex = Exemplars::default();
        ex.observe(600, 3);
        ex.observe(1_000, 4); // same octave [512, 1024): overwrites
        ex.observe(1_000_000, 5);
        ex.observe(123, 0); // no trace context: ignored
        let dump = ex.dump("m");
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].trace_id, 4);
        assert_eq!(dump[0].latency_ns, 1_000);
        assert!(dump[0].bucket_ns >= 1_000);
        assert_eq!(dump[1].trace_id, 5);
    }
}
