//! Epoch flight recorder: a fixed-capacity lock-free ring of
//! [`EpochTrace`] records.
//!
//! The serve worker records one trace per epoch; the query executor
//! stamps the query-side fields of the same epoch from another thread.
//! Recording never blocks and never allocates — each slot is a seqlock
//! (sequence word + plain cell), writers claim a slot with a single CAS
//! and readers retry a copy if a writer raced them. A dump returns the
//! newest `capacity` traces in epoch order, safe to call from any
//! thread at any time, including from failure paths while the worker
//! is mid-record.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// How the pipelined publish path obtained the version buffer for an
/// epoch (see `ensure_published` in rc-serve).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecycleOutcome {
    /// Queries ran inline, or the version was already published.
    #[default]
    None,
    /// A retired buffer was caught up via `FlushRecord` replay.
    CaughtUp,
    /// No buffer was recyclable; the forest was cloned.
    Cloned,
}

/// Query families timed individually during the fan-out phase. Indexes
/// [`EpochTrace::family_ns`] / [`EpochTrace::family_counts`].
pub const FAMILY_NAMES: [&str; 8] = [
    "conn",
    "repr",
    "path",
    "subtree",
    "lca",
    "bottleneck",
    "near",
    "cpt",
];

/// Per-epoch phase timings and sizes. `Copy` with no heap so the
/// flight-recorder ring can publish it through a seqlock.
///
/// The phases partition an epoch's wall time in dispatch order: drain →
/// admission → commit propagation (flushes) → WAL append → version
/// publish → back-pressure wait → (handoff) → query fan-out → respond.
/// Under pipelining the handoff/query/respond fields are stamped by the
/// query executor after the worker has already recorded the update-side
/// fields; `epoch_wall_ns` is stamped by whichever side finishes the
/// epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochTrace {
    /// Epoch number (unique per serve worker lifetime).
    pub epoch: u64,
    /// Requests drained into this epoch.
    pub batch: u32,
    /// Update requests admitted.
    pub updates: u32,
    /// Query requests answered.
    pub queries: u32,
    /// Overlay flushes during admission.
    pub flushes: u32,
    /// Queue length observed at drain time.
    pub queue_depth: u32,
    /// Time draining the shard queues.
    pub drain_ns: u64,
    /// Admission/cancellation overlay time (excluding flushes).
    pub admit_ns: u64,
    /// Commit propagation: overlay flushes into the forest.
    pub commit_ns: u64,
    /// WAL append + fsync (zero when durability is off).
    pub wal_ns: u64,
    /// MVCC version publish (zero when queries run inline).
    pub publish_ns: u64,
    /// Time the worker blocked handing the query job to the executor
    /// (pipeline back-pressure).
    pub backpressure_ns: u64,
    /// Dispatch-to-pickup latency of the query job (zero inline).
    pub handoff_ns: u64,
    /// True query fan-out wall time, measured on the thread that ran it.
    pub query_ns: u64,
    /// Filling response slots + recording request latencies.
    pub respond_ns: u64,
    /// Drain start to last response of this epoch.
    pub epoch_wall_ns: u64,
    /// Per-family fan-out time, indexed by [`FAMILY_NAMES`].
    pub family_ns: [u64; 8],
    /// Per-family query counts, indexed by [`FAMILY_NAMES`].
    pub family_counts: [u32; 8],
    /// Per-family dispatch engine this epoch: 0 = family did not run,
    /// else `1 + Engine::index()` (1 batched, 2 independent,
    /// 3 sequential).
    pub family_engine: [u8; 8],
    /// Per-family predicted fan-out cost from the cost model, in ns
    /// (0 when no prediction was available).
    pub family_predicted_ns: [u64; 8],
    /// Bitmask of families whose engine choice was an exploration
    /// sample rather than the predicted-cheapest engine.
    pub family_explored: u8,
    /// Buffer-recycle outcome of the publish step.
    pub recycle: RecycleOutcome,
    /// True if the epoch failed (WAL append error, compaction error);
    /// phase fields before the failure point are still valid.
    pub failed: bool,
}

impl EpochTrace {
    /// Sum of the phase timings that partition the epoch's wall time.
    /// `backpressure_ns` is excluded: the worker's blocked send happens
    /// inside the dispatch-to-pickup window that `handoff_ns` already
    /// covers, so counting both would double-bill the gap.
    pub fn phase_sum_ns(&self) -> u64 {
        self.drain_ns
            + self.admit_ns
            + self.commit_ns
            + self.wal_ns
            + self.publish_ns
            + self.handoff_ns
            + self.query_ns
            + self.respond_ns
    }
}

const SEQ_EMPTY: u64 = 0;

struct Slot {
    /// Seqlock word: 0 = never written, odd = writer inside, even > 0 =
    /// published. Bumped by 2 per publish so readers detect overwrites.
    seq: AtomicU64,
    trace: UnsafeCell<EpochTrace>,
}

// The UnsafeCell is only read under the seqlock protocol below.
unsafe impl Sync for Slot {}

/// Fixed-capacity lock-free ring of [`EpochTrace`] records.
///
/// Writers call [`record`](Self::record) with a finished trace; the
/// ring keeps the newest `capacity` records, overwriting the oldest.
/// [`dump`](Self::dump) copies out every valid record sorted by epoch.
/// If two writers ever contend for the same slot (requires a full ring
/// wrap during one write), the loser drops its record and
/// [`dropped`](Self::dropped) counts it — recording never blocks.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// Ring with room for `capacity` traces (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(SEQ_EMPTY),
                    trace: UnsafeCell::new(EpochTrace::default()),
                })
                .collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records dropped because a writer lost a slot race (only possible
    /// if another writer lapped the entire ring mid-write).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publish one trace into the ring. Lock-free: one CAS to claim the
    /// slot, a plain copy, one release store to publish.
    pub fn record(&self, trace: EpochTrace) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        let slot = &self.slots[idx];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            // Another writer is mid-publish in our slot: it was lapped
            // while writing. Drop rather than block or tear.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Seq is now odd: readers will retry, writers will drop.
        unsafe { *slot.trace.get() = trace };
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Copy out every published trace, oldest epoch first. Readers never
    /// block writers; a record overwritten mid-copy is retried a few
    /// times, then skipped.
    pub fn dump(&self) -> Vec<EpochTrace> {
        let mut out = Vec::new();
        self.dump_into(&mut out);
        out
    }

    /// [`dump`](Self::dump) into a caller-provided buffer, reusing its
    /// allocation across calls — the periodic-scrape form (`serve_load`
    /// captures per-row telemetry through one scratch buffer).
    pub fn dump_into(&self, out: &mut Vec<EpochTrace>) {
        out.clear();
        out.reserve(self.slots.len());
        for slot in self.slots.iter() {
            for _ in 0..4 {
                let before = slot.seq.load(Ordering::Acquire);
                if before == SEQ_EMPTY {
                    break;
                }
                if before & 1 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let copy = unsafe { *slot.trace.get() };
                if slot.seq.load(Ordering::Acquire) == before {
                    out.push(copy);
                    break;
                }
            }
        }
        out.sort_by_key(|t| t.epoch);
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Aggregate of a set of [`EpochTrace`]s: total time per phase plus
/// coverage (phase sum vs wall sum) — the flight-recorder view that
/// `serve_load` embeds in `BENCH_serve.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Epochs aggregated.
    pub epochs: u64,
    /// Total drain time.
    pub drain_ns: u64,
    /// Total admission time.
    pub admit_ns: u64,
    /// Total commit-propagation time.
    pub commit_ns: u64,
    /// Total WAL append+fsync time.
    pub wal_ns: u64,
    /// Total version-publish time.
    pub publish_ns: u64,
    /// Total pipeline back-pressure wait.
    pub backpressure_ns: u64,
    /// Total dispatch-to-pickup handoff latency.
    pub handoff_ns: u64,
    /// Total query fan-out time.
    pub query_ns: u64,
    /// Total respond time.
    pub respond_ns: u64,
    /// Total epoch wall time.
    pub wall_ns: u64,
    /// Per-family totals, indexed by [`FAMILY_NAMES`].
    pub family_ns: [u64; 8],
}

impl PhaseTotals {
    /// Aggregate `traces` (typically a [`FlightRecorder::dump`]).
    pub fn from_traces(traces: &[EpochTrace]) -> Self {
        let mut t = PhaseTotals::default();
        for tr in traces {
            t.epochs += 1;
            t.drain_ns += tr.drain_ns;
            t.admit_ns += tr.admit_ns;
            t.commit_ns += tr.commit_ns;
            t.wal_ns += tr.wal_ns;
            t.publish_ns += tr.publish_ns;
            t.backpressure_ns += tr.backpressure_ns;
            t.handoff_ns += tr.handoff_ns;
            t.query_ns += tr.query_ns;
            t.respond_ns += tr.respond_ns;
            t.wall_ns += tr.epoch_wall_ns;
            for i in 0..8 {
                t.family_ns[i] += tr.family_ns[i];
            }
        }
        t
    }

    /// Sum of all phase totals (the numerator of coverage; like
    /// [`EpochTrace::phase_sum_ns`], back-pressure is excluded because
    /// handoff already covers that window).
    pub fn phase_sum_ns(&self) -> u64 {
        self.drain_ns
            + self.admit_ns
            + self.commit_ns
            + self.wal_ns
            + self.publish_ns
            + self.handoff_ns
            + self.query_ns
            + self.respond_ns
    }

    /// Fraction of epoch wall time the phases account for (1.0 = every
    /// nanosecond attributed). The acceptance bar for this repo is
    /// ≥ 0.9 on a pipelined release run.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        self.phase_sum_ns() as f64 / self.wall_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Trace where every field is derived from `epoch`, so a torn
    /// (mixed-epoch) record is detectable field-by-field.
    fn patterned(epoch: u64) -> EpochTrace {
        let mut t = EpochTrace {
            epoch,
            batch: epoch as u32,
            updates: epoch as u32 + 1,
            queries: epoch as u32 + 2,
            flushes: epoch as u32 + 3,
            queue_depth: epoch as u32 + 4,
            drain_ns: epoch * 10,
            admit_ns: epoch * 11,
            commit_ns: epoch * 12,
            wal_ns: epoch * 13,
            publish_ns: epoch * 14,
            backpressure_ns: epoch * 15,
            handoff_ns: epoch * 16,
            query_ns: epoch * 17,
            respond_ns: epoch * 18,
            epoch_wall_ns: epoch * 19,
            ..EpochTrace::default()
        };
        for i in 0..8 {
            t.family_ns[i] = epoch * (20 + i as u64);
            t.family_counts[i] = epoch as u32 + i as u32;
        }
        t
    }

    fn assert_untorn(t: &EpochTrace) {
        let e = t.epoch;
        let want = patterned(e);
        assert_eq!(*t, want, "torn record at epoch {e}");
    }

    #[test]
    fn ring_keeps_newest_at_capacity() {
        let ring = FlightRecorder::new(8);
        for e in 1..=3_000u64 {
            ring.record(patterned(e));
        }
        let dump = ring.dump();
        assert_eq!(dump.len(), 8);
        let epochs: Vec<u64> = dump.iter().map(|t| t.epoch).collect();
        assert_eq!(epochs, (2_993..=3_000).collect::<Vec<_>>());
        for t in &dump {
            assert_untorn(t);
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn dump_before_fill_returns_prefix() {
        let ring = FlightRecorder::new(16);
        for e in 1..=5u64 {
            ring.record(patterned(e));
        }
        let dump = ring.dump();
        assert_eq!(dump.len(), 5);
        assert_eq!(dump[0].epoch, 1);
        assert_eq!(dump[4].epoch, 5);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(patterned(7));
        assert_eq!(ring.dump().len(), 1);
    }

    #[test]
    fn concurrent_writers_and_readers_no_torn_records() {
        // Two writer threads (standing in for the coalescer worker and
        // the query executor) hammer a small ring while two readers dump
        // continuously. Every dumped record must be internally
        // consistent — all fields derived from the same epoch.
        let ring = Arc::new(FlightRecorder::new(32));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..20_000u64 {
                        ring.record(patterned(w * 1_000_000 + i));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    for _ in 0..200 {
                        let dump = ring.dump();
                        for t in &dump {
                            assert_untorn(t);
                        }
                        seen += dump.len();
                        std::thread::yield_now();
                    }
                    seen
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let mut total = 0;
        for r in readers {
            total += r.join().unwrap();
        }
        assert!(total > 0, "readers observed records");
        for t in &ring.dump() {
            assert_untorn(t);
        }
    }

    #[test]
    fn dump_into_reuses_the_buffer() {
        let ring = FlightRecorder::new(8);
        for e in 1..=20u64 {
            ring.record(patterned(e));
        }
        let mut scratch = Vec::new();
        ring.dump_into(&mut scratch);
        assert_eq!(scratch.len(), 8);
        assert_eq!(scratch[0].epoch, 13);
        let cap = scratch.capacity();
        let ptr = scratch.as_ptr();
        for e in 21..=25u64 {
            ring.record(patterned(e));
        }
        ring.dump_into(&mut scratch);
        assert_eq!(scratch.len(), 8);
        assert_eq!(scratch.last().unwrap().epoch, 25);
        assert_eq!(scratch.capacity(), cap, "no reallocation on reuse");
        assert_eq!(scratch.as_ptr(), ptr, "same allocation reused");
        assert_eq!(ring.dump(), scratch, "dump() and dump_into agree");
    }

    #[test]
    fn coverage_is_finite_for_degenerate_epochs() {
        // Zero-wall-time epochs (pure-dump batches, sub-tick epochs on a
        // coarse clock) must never yield NaN/inf coverage.
        let empty = PhaseTotals::default();
        assert!(empty.coverage().is_finite());
        assert!((empty.coverage() - 1.0).abs() < 1e-9);

        let zero_wall = PhaseTotals::from_traces(&[EpochTrace {
            epoch: 1,
            drain_ns: 50,
            respond_ns: 10,
            epoch_wall_ns: 0,
            ..EpochTrace::default()
        }]);
        assert_eq!(zero_wall.wall_ns, 0);
        assert!(zero_wall.coverage().is_finite(), "no div-by-zero");
        assert!((zero_wall.coverage() - 1.0).abs() < 1e-9);

        // And the all-zero trace (a dump-only epoch records no phases).
        let dump_only = PhaseTotals::from_traces(&[EpochTrace::default()]);
        assert!(dump_only.coverage().is_finite());
    }

    #[test]
    fn phase_totals_and_coverage() {
        let t = EpochTrace {
            epoch: 1,
            drain_ns: 10,
            admit_ns: 20,
            commit_ns: 30,
            wal_ns: 40,
            publish_ns: 5,
            backpressure_ns: 99, // excluded: handoff covers this window
            handoff_ns: 5,
            query_ns: 60,
            respond_ns: 30,
            epoch_wall_ns: 200,
            ..EpochTrace::default()
        };
        assert_eq!(t.phase_sum_ns(), 200);
        let totals = PhaseTotals::from_traces(&[t, t]);
        assert_eq!(totals.epochs, 2);
        assert_eq!(totals.phase_sum_ns(), 400);
        assert_eq!(totals.wall_ns, 400);
        assert!((totals.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(totals.backpressure_ns, 198);
        let empty = PhaseTotals::default();
        assert!((empty.coverage() - 1.0).abs() < 1e-9);
    }
}
