//! Named metrics registry: counters, gauges, and shared histograms with
//! point-in-time snapshots and Prometheus/JSON exports.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSummary};

/// Monotonic counter. Increments are single relaxed `fetch_add`s, so a
/// counter on a hot path costs one uncontended atomic RMW.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge (queue depths, in-flight epochs, bytes
/// on disk).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    metric: Metric,
}

/// Value of one metric at snapshot time. Integer-only (histograms
/// surface as their percentile summary) so snapshots stay `Eq` and can
/// travel through the serve request/response types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram percentile summary.
    Histogram(HistogramSummary),
}

/// Point-in-time copy of every registered metric, in registration
/// order. Produced by [`MetricsRegistry::snapshot`]; exportable as
/// Prometheus text exposition or JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in registration order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name, if registered as a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, if registered as a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary by name, if registered as a histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        match self.get(name) {
            Some(MetricValue::Histogram(s)) => Some(*s),
            _ => None,
        }
    }

    /// Prometheus text exposition (version 0.0.4). Counters and gauges
    /// become single samples with `# TYPE` headers; histograms become
    /// `summary` metrics with `quantile` labels plus `_sum`/`_count`
    /// series, all in nanoseconds.
    ///
    /// Metric names may carry a rendered label set
    /// (`serve_dispatch_total{family="conn",engine="batched"}`): the
    /// `# TYPE` header is emitted once per base name (the part before
    /// the brace), each labeled series becomes its own sample, and
    /// summary `quantile`/`_sum`/`_count` decorations merge with the
    /// existing label set instead of trailing the closing brace.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for (name, value) in &self.metrics {
            // A name like `base{k="v"}` splits into the family's base
            // name (TYPE header) and its label body.
            let (base, labels) = match name.split_once('{') {
                Some((base, rest)) => match rest.strip_suffix('}') {
                    Some(labels) => (base, Some(labels)),
                    None => (name.as_str(), None),
                },
                None => (name.as_str(), None),
            };
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            if typed.insert(base) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Histogram(s) => {
                    let prefix = match labels {
                        Some(l) => format!("{base}{{{l},"),
                        None => format!("{base}{{"),
                    };
                    for (q, v) in [("0.5", s.p50_ns), ("0.95", s.p95_ns), ("0.99", s.p99_ns)] {
                        out.push_str(&format!("{prefix}quantile=\"{q}\"}} {v}\n"));
                    }
                    let suffix = match labels {
                        Some(l) => format!("{{{l}}}"),
                        None => String::new(),
                    };
                    out.push_str(&format!("{base}_sum{suffix} {}\n", s.sum_ns));
                    out.push_str(&format!("{base}_count{suffix} {}\n", s.count));
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name. Counters and gauges are plain
    /// numbers; histograms are objects with `count`, `sum_ns`,
    /// `mean_ns`, `p50_ns`, `p95_ns`, `p99_ns`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", escape_json(name)));
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(s) => out.push_str(&format!(
                    "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                    s.count, s.sum_ns, s.mean_ns, s.p50_ns, s.p95_ns, s.p99_ns
                )),
            }
        }
        out.push('}');
        out
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Registry of named metrics. Registration takes a short lock;
/// recording through the returned `Arc` handles is lock-free, so hot
/// paths register once at startup and hold the handle.
///
/// Names follow Prometheus conventions (`snake_case`, `_total` suffix
/// for counters, `_ns` for durations). Re-registering a name returns
/// the existing handle; registering it as a different kind panics —
/// that is a wiring bug, not a runtime condition.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register_with<T, F, G>(&self, name: &str, extract: F, fresh: G) -> Arc<T>
    where
        F: Fn(&Metric) -> Option<Arc<T>>,
        G: FnOnce() -> Metric,
    {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return extract(&e.metric)
                .unwrap_or_else(|| panic!("metric {name} already registered with another kind"));
        }
        let metric = fresh();
        let handle = extract(&metric).unwrap();
        entries.push(Entry {
            name: name.to_string(),
            metric,
        });
        handle
    }

    /// Get or register a counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.register_with(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::default())),
        )
    }

    /// Get or register a gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.register_with(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::default())),
        )
    }

    /// Get or register a histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.register_with(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Metric::Histogram(Arc::new(Histogram::default())),
        )
    }

    /// Attach an existing histogram handle under `name` — used when a
    /// subsystem (e.g. rc-store) creates its metrics before the owning
    /// registry exists. Panics if `name` is taken by a different handle.
    pub fn attach_histogram(&self, name: &str, h: Arc<Histogram>) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Histogram(existing) if Arc::ptr_eq(existing, &h) => return,
                _ => panic!("metric {name} already registered with another handle"),
            }
        }
        entries.push(Entry {
            name: name.to_string(),
            metric: Metric::Histogram(h),
        });
    }

    /// Attach an existing counter handle under `name` (see
    /// [`attach_histogram`](Self::attach_histogram)).
    pub fn attach_counter(&self, name: &str, c: Arc<Counter>) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Counter(existing) if Arc::ptr_eq(existing, &c) => return,
                _ => panic!("metric {name} already registered with another handle"),
            }
        }
        entries.push(Entry {
            name: name.to_string(),
            metric: Metric::Counter(c),
        });
    }

    /// Attach an existing gauge handle under `name` (see
    /// [`attach_histogram`](Self::attach_histogram)).
    pub fn attach_gauge(&self, name: &str, g: Arc<Gauge>) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Gauge(existing) if Arc::ptr_eq(existing, &g) => return,
                _ => panic!("metric {name} already registered with another handle"),
            }
        }
        entries.push(Entry {
            name: name.to_string(),
            metric: Metric::Gauge(g),
        });
    }

    /// Point-in-time snapshot of every registered metric, in
    /// registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap();
        MetricsSnapshot {
            metrics: entries
                .iter()
                .map(|e| {
                    let value = match &e.metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (e.name.clone(), value)
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().unwrap();
        f.debug_struct("MetricsRegistry")
            .field("len", &entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("serve_epochs_total");
        let g = reg.gauge("serve_queue_depth");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve_epochs_total"), Some(5));
        assert_eq!(snap.gauge("serve_queue_depth"), Some(5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn reregistration_returns_same_handle() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x_total"), Some(2));
        assert_eq!(reg.snapshot().metrics.len(), 1);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn attach_existing_handles() {
        let reg = MetricsRegistry::new();
        let h = Arc::new(Histogram::default());
        h.record(1_000);
        reg.attach_histogram("wal_fsync_ns", h.clone());
        reg.attach_histogram("wal_fsync_ns", h); // same handle: idempotent
        let c = Arc::new(Counter::default());
        c.add(3);
        reg.attach_counter("wal_appends_total", c);
        let g = Arc::new(Gauge::default());
        g.set(-4);
        reg.attach_gauge("wal_dirty", g);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("wal_fsync_ns").unwrap().count, 1);
        assert_eq!(snap.counter("wal_appends_total"), Some(3));
        assert_eq!(snap.gauge("wal_dirty"), Some(-4));
    }

    #[test]
    #[should_panic(expected = "another handle")]
    fn attach_conflicting_handle_panics() {
        let reg = MetricsRegistry::new();
        reg.attach_counter("x", Arc::new(Counter::default()));
        reg.attach_counter("x", Arc::new(Counter::default()));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("epochs_total").add(12);
        reg.gauge("depth").set(-3);
        let h = reg.histogram("latency_ns");
        for _ in 0..100 {
            h.record(1_000);
        }
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE epochs_total counter\nepochs_total 12\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -3\n"));
        assert!(text.contains("# TYPE latency_ns summary\n"));
        assert!(text.contains("latency_ns{quantile=\"0.5\"} "));
        assert!(text.contains("latency_ns{quantile=\"0.99\"} "));
        assert!(text.contains("latency_ns_sum 100000\n"));
        assert!(text.contains("latency_ns_count 100\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            value.parse::<i64>().expect("numeric value");
        }
    }

    #[test]
    fn prometheus_labeled_series_share_one_type_header() {
        let reg = MetricsRegistry::new();
        reg.counter("dispatch_total{family=\"conn\",engine=\"batched\"}")
            .add(3);
        reg.counter("dispatch_total{family=\"conn\",engine=\"independent\"}")
            .add(4);
        reg.histogram("fam_ns{family=\"conn\",engine=\"batched\"}")
            .record(2_000);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# TYPE dispatch_total counter\n").count(),
            1,
            "one TYPE header per base name:\n{text}"
        );
        assert!(text.contains("dispatch_total{family=\"conn\",engine=\"batched\"} 3\n"));
        assert!(text.contains("dispatch_total{family=\"conn\",engine=\"independent\"} 4\n"));
        assert!(text.contains("# TYPE fam_ns summary\n"));
        // The quantile label merges into the existing label set, and the
        // _sum/_count series keep the labels after the suffixed name.
        assert!(
            text.contains("fam_ns{family=\"conn\",engine=\"batched\",quantile=\"0.5\"} "),
            "quantile merged into labels:\n{text}"
        );
        assert!(text.contains("fam_ns_sum{family=\"conn\",engine=\"batched\"} 2000\n"));
        assert!(text.contains("fam_ns_count{family=\"conn\",engine=\"batched\"} 1\n"));
        // Still line-shaped: every sample parses as `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            value.parse::<i64>().expect("numeric value");
        }
    }

    #[test]
    fn json_export_is_wellformed() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(1);
        reg.gauge("b").set(-2);
        reg.histogram("c_ns").record(500);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":1"));
        assert!(json.contains("\"b\":-2"));
        assert!(json.contains("\"c_ns\":{\"count\":1,"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
