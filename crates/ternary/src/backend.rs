//! [`DynamicForest`] backend over the ternarization layer.
//!
//! The standard weight model needs chain (dummy) edges to be *invisible*:
//! identity for path sums (0), absent from min/max extrema, and distance
//! 0 for nearest-marked. No single `u64` chain weight satisfies all three
//! at once, so the backend aggregate [`TernAgg`] carries
//! `Option<u64>` edge weights — `None` marks a chain edge, which
//! contributes sum 0, no extreme-edge candidate, and path length 0.
//!
//! Extreme-edge witnesses computed inside the inner forest name *dummy*
//! endpoints (cross edges connect chain dummies); the backend maps them
//! back through [`TernaryForest::owner_of`]. One caveat follows: the
//! deterministic `(weight, u, v)` tie-break is applied to *inner* ids
//! before mapping, so when two path edges tie on weight the reported
//! witness may differ from backends that tie-break on real ids.
//! Differential tests against this backend draw weights from a large
//! space to keep ties out of the comparison.

use crate::TernaryForest;
use rc_core::aggregate::{ClusterAggregate, GroupPathAggregate, PathAggregate, SubtreeAggregate};
use rc_core::{
    DynamicForest, EdgeRef, ForestError, ForestState, NearestMarkedAgg, NearestMarkedAggregate,
    PathSummary, StdAgg, StdVertexWeight, Vertex,
};

/// The ternary backend forest: arbitrary degree, every query family.
pub type TernaryStdForest = TernaryForest<TernAgg>;

impl TernaryStdForest {
    /// An edgeless arbitrary-degree backend forest on `n` real vertices.
    pub fn new_std(n: usize) -> Self {
        TernaryForest::new(n, None)
    }
}

/// [`StdAgg`] lifted to `Option<u64>` edge weights (`None` = chain
/// edge, combining as [`StdAgg::invisible_edge`]); everything else
/// delegates to the one implementation in `rc-core`, so combine and
/// tie-break semantics cannot drift between the backends.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TernAgg(StdAgg);

impl ClusterAggregate for TernAgg {
    type VertexWeight = StdVertexWeight;
    type EdgeWeight = Option<u64>;

    fn base_edge(u: Vertex, v: Vertex, w: &Option<u64>) -> Self {
        TernAgg(match *w {
            Some(w) => StdAgg::base_edge(u, v, &w),
            None => StdAgg::invisible_edge(),
        })
    }

    fn compress(
        v: Vertex,
        vw: &StdVertexWeight,
        a: Vertex,
        left: &Self,
        b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self {
        let rs: Vec<&StdAgg> = rakes.iter().map(|r| &r.0).collect();
        TernAgg(StdAgg::compress(v, vw, a, &left.0, b, &right.0, &rs))
    }

    fn rake(v: Vertex, vw: &StdVertexWeight, u: Vertex, edge: &Self, rakes: &[&Self]) -> Self {
        let rs: Vec<&StdAgg> = rakes.iter().map(|r| &r.0).collect();
        TernAgg(StdAgg::rake(v, vw, u, &edge.0, &rs))
    }

    fn finalize(v: Vertex, vw: &StdVertexWeight, rakes: &[&Self]) -> Self {
        let rs: Vec<&StdAgg> = rakes.iter().map(|r| &r.0).collect();
        TernAgg(StdAgg::finalize(v, vw, &rs))
    }
}

impl PathAggregate for TernAgg {
    type PathVal = PathSummary;

    fn path_identity() -> PathSummary {
        StdAgg::path_identity()
    }

    fn path_combine(a: &PathSummary, b: &PathSummary) -> PathSummary {
        StdAgg::path_combine(a, b)
    }

    fn cluster_path(&self) -> PathSummary {
        self.0.cluster_path()
    }

    fn edge_path_value(w: &Option<u64>) -> PathSummary {
        match *w {
            Some(w) => StdAgg::edge_path_value(&w),
            None => PathSummary::identity(),
        }
    }
}

impl GroupPathAggregate for TernAgg {
    /// Exact on `sum` only (see [`StdAgg`]).
    fn path_inverse(a: &PathSummary) -> PathSummary {
        StdAgg::path_inverse(a)
    }
}

impl SubtreeAggregate for TernAgg {
    type SubtreeVal = u64;

    fn subtree_identity() -> u64 {
        StdAgg::subtree_identity()
    }

    fn subtree_combine(a: &u64, b: &u64) -> u64 {
        StdAgg::subtree_combine(a, b)
    }

    fn cluster_total(&self) -> u64 {
        self.0.cluster_total()
    }

    fn vertex_value(v: Vertex, vw: &StdVertexWeight) -> u64 {
        StdAgg::vertex_value(v, vw)
    }
}

impl NearestMarkedAggregate for TernAgg {
    fn nearest(&self) -> &NearestMarkedAgg {
        self.0.nearest()
    }

    fn is_marked_weight(vw: &StdVertexWeight) -> bool {
        StdAgg::is_marked_weight(vw)
    }

    fn with_mark(vw: &StdVertexWeight, marked: bool) -> StdVertexWeight {
        StdAgg::with_mark(vw, marked)
    }
}

impl TernaryStdForest {
    /// Map an inner extreme-edge witness back to real endpoints.
    fn map_edge(&self, e: EdgeRef<u64>) -> EdgeRef<u64> {
        let (a, b) = (self.owner_of(e.u), self.owner_of(e.v));
        let (u, v) = if a <= b { (a, b) } else { (b, a) };
        EdgeRef { u, v, w: e.w }
    }

    fn map_summary(&self, p: PathSummary) -> PathSummary {
        PathSummary {
            sum: p.sum,
            min: p.min.map(|e| self.map_edge(e)),
            max: p.max.map(|e| self.map_edge(e)),
        }
    }
}

impl DynamicForest for TernaryStdForest {
    fn backend_name(&self) -> &'static str {
        "ternary"
    }

    fn num_vertices(&self) -> usize {
        TernaryForest::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        TernaryForest::num_edges(self)
    }

    fn max_degree(&self) -> Option<usize> {
        None
    }

    fn version(&self) -> u64 {
        self.inner().version()
    }

    fn link(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        TernaryForest::batch_link(self, &[(u, v, Some(w))])
    }

    fn cut(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError> {
        TernaryForest::batch_cut(self, &[(u, v)])
    }

    fn set_edge_weight(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        self.update_edge_weights(&[(u, v, Some(w))])
    }

    fn set_vertex_weight(&mut self, v: Vertex, w: u64) -> Result<(), ForestError> {
        if v as usize >= TernaryForest::num_vertices(self) {
            return Err(ForestError::VertexOutOfRange {
                v,
                n: TernaryForest::num_vertices(self),
            });
        }
        let marked = self.inner().vertex_weight(v).marked;
        self.update_vertex_weights(&[(v, StdVertexWeight { weight: w, marked })])
    }

    fn set_mark(&mut self, v: Vertex, marked: bool) -> Result<(), ForestError> {
        if v as usize >= TernaryForest::num_vertices(self) {
            return Err(ForestError::VertexOutOfRange {
                v,
                n: TernaryForest::num_vertices(self),
            });
        }
        if marked {
            self.batch_mark(&[v]);
        } else {
            self.batch_unmark(&[v]);
        }
        Ok(())
    }

    fn batch_link(&mut self, links: &[(Vertex, Vertex, u64)]) -> Result<(), ForestError> {
        let mapped: Vec<(Vertex, Vertex, Option<u64>)> =
            links.iter().map(|&(u, v, w)| (u, v, Some(w))).collect();
        TernaryForest::batch_link(self, &mapped)
    }

    fn batch_cut(&mut self, cuts: &[(Vertex, Vertex)]) -> Result<(), ForestError> {
        TernaryForest::batch_cut(self, cuts)
    }

    fn connected(&mut self, u: Vertex, v: Vertex) -> bool {
        TernaryForest::connected(self, u, v)
    }

    fn representative(&mut self, v: Vertex) -> Option<Vertex> {
        let r = self.batch_find_representatives(&[v])[0];
        (r != u32::MAX).then_some(r)
    }

    fn path_sum(&mut self, u: Vertex, v: Vertex) -> Option<u64> {
        self.path_aggregate(u, v).map(|p| p.sum)
    }

    fn path_extrema(&mut self, u: Vertex, v: Vertex) -> Option<PathSummary> {
        TernaryForest::batch_path_extrema(self, &[(u, v)])
            .pop()
            .flatten()
            .map(|p| self.map_summary(p))
    }

    fn lca(&mut self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        TernaryForest::lca(self, u, v, r)
    }

    fn subtree_sum(&mut self, v: Vertex, parent: Vertex) -> Option<u64> {
        self.subtree_aggregate(v, parent)
    }

    fn nearest_marked(&mut self, v: Vertex) -> Option<(u64, Vertex)> {
        TernaryForest::batch_nearest_marked(self, &[v])[0]
    }

    fn batch_connected(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<bool> {
        TernaryForest::batch_connected(self, pairs)
    }

    fn batch_representatives(&mut self, vs: &[Vertex]) -> Vec<Option<Vertex>> {
        self.batch_find_representatives(vs)
            .into_iter()
            .map(|r| (r != u32::MAX).then_some(r))
            .collect()
    }

    fn batch_path_sum(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<u64>> {
        self.batch_path_aggregate(pairs)
            .into_iter()
            .map(|o| o.map(|p| p.sum))
            .collect()
    }

    fn batch_path_extrema(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<PathSummary>> {
        TernaryForest::batch_path_extrema(self, pairs)
            .into_iter()
            .map(|o| o.map(|p| self.map_summary(p)))
            .collect()
    }

    fn batch_lca(&mut self, queries: &[(Vertex, Vertex, Vertex)]) -> Vec<Option<Vertex>> {
        TernaryForest::batch_lca(self, queries)
    }

    fn batch_subtree_sum(&mut self, queries: &[(Vertex, Vertex)]) -> Vec<Option<u64>> {
        self.batch_subtree_aggregate(queries)
    }

    fn batch_nearest_marked(&mut self, vs: &[Vertex]) -> Vec<Option<(u64, Vertex)>> {
        TernaryForest::batch_nearest_marked(self, vs)
    }

    fn export_state(&self) -> ForestState {
        let n = TernaryForest::num_vertices(self);
        // Real edges are the inner edges carrying `Some` weights (chain
        // edges are `None`); cross-edge endpoints are dummies, mapped back
        // to their owning real vertices. Weights and marks live on the
        // real inner ids directly.
        let edges = self
            .inner()
            .edge_list()
            .into_iter()
            .filter_map(|(u, v, w)| w.map(|w| (self.owner_of(u), self.owner_of(v), w)))
            .collect();
        let inner = self.inner();
        let mut state = ForestState {
            n,
            edges,
            weights: (0..n as Vertex)
                .map(|v| inner.vertex_weight(v).weight)
                .collect(),
            marks: (0..n as Vertex)
                .filter(|&v| inner.vertex_weight(v).marked)
                .collect(),
        };
        state.canonicalize();
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_edges_are_invisible_to_every_family() {
        // Degree-5 star, impossible without ternarization.
        let mut f = TernaryStdForest::new_std(6);
        for v in 1..6u32 {
            DynamicForest::link(&mut f, 0, v, 10 * v as u64).unwrap();
        }
        assert_eq!(f.path_sum(1, 5), Some(10 + 50));
        let p = f.path_extrema(1, 5).unwrap();
        assert_eq!(p.sum, 60);
        assert_eq!(
            (p.min.unwrap().u, p.min.unwrap().v, p.min.unwrap().w),
            (0, 1, 10)
        );
        assert_eq!(
            (p.max.unwrap().u, p.max.unwrap().v, p.max.unwrap().w),
            (0, 5, 50)
        );
        assert_eq!(f.path_extrema(2, 2), Some(PathSummary::identity()));
        f.set_vertex_weight(3, 7).unwrap();
        assert_eq!(f.subtree_sum(0, 1), Some(20 + 30 + 40 + 50 + 7));
        f.set_mark(4, true).unwrap();
        assert_eq!(f.nearest_marked(2), Some((20 + 40, 4)));
        assert_eq!(f.lca(1, 2, 5), Some(0));
        f.validate().unwrap();
    }

    #[test]
    fn error_contract_without_degree_cap() {
        let mut f = TernaryStdForest::new_std(4);
        DynamicForest::link(&mut f, 0, 1, 1).unwrap();
        assert_eq!(
            DynamicForest::link(&mut f, 0, 0, 1),
            Err(ForestError::SelfLoop { v: 0 })
        );
        assert_eq!(
            DynamicForest::link(&mut f, 1, 0, 2),
            Err(ForestError::DuplicateEdge { u: 1, v: 0 })
        );
        assert_eq!(
            DynamicForest::link(&mut f, 9, 0, 1),
            Err(ForestError::VertexOutOfRange { v: 9, n: 4 })
        );
        assert_eq!(
            DynamicForest::cut(&mut f, 0, 2),
            Err(ForestError::MissingEdge { u: 0, v: 2 })
        );
        assert_eq!(
            f.set_edge_weight(0, 2, 5),
            Err(ForestError::MissingEdge { u: 0, v: 2 })
        );
        assert_eq!(
            f.set_vertex_weight(9, 1),
            Err(ForestError::VertexOutOfRange { v: 9, n: 4 })
        );
        assert_eq!(f.max_degree(), None);
    }
}
