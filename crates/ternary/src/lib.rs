//! Ternarization (paper §4, §5.9): arbitrary-degree dynamic forests layered
//! over degree-≤3 RC forests.
//!
//! Every real vertex owns a chain of *dummy* vertices connected by
//! identity-weight edges; each real edge `{u, v}` becomes a *cross edge*
//! between a dummy on `u`'s chain and a dummy on `v`'s chain, carrying the
//! original weight (Fig. 1). An insertion therefore contributes 3 inner
//! edges (Thm 4.2); a deletion removes the cross edge and splices the two
//! chains (<= 5 deletions + 2 insertions). Path sums, subtree sums, LCA
//! (after mapping dummies to owners) and nearest-marked queries are all
//! preserved (Thms 4.3-4.7).
//!
//! The layer is a black box, as in the paper: it accepts batches of real
//! add/delete edges, translates them (hash table + chain splicing), and
//! forwards one batch update to the inner [`RcForest`].

use rc_core::aggregate::{ClusterAggregate, PathAggregate, SubtreeAggregate};
use rc_core::{CompressedPathTree, ForestError, MarkedSweep, RcForest, Vertex};
use rc_parlay::hashtable::{edge_key, ConcurrentMap};

mod backend;
pub use backend::{TernAgg, TernaryStdForest};

/// Sentinel for "no vertex".
const NONE32: u32 = u32::MAX;

/// An arbitrary-degree batch-dynamic forest over `n` real vertices.
///
/// Inner vertex ids: `0..n` are the real vertices (chain heads), `n..3n`
/// is the dummy pool. A forest on `n` vertices has at most `n - 1` edges,
/// each consuming exactly two dummies, so the pool can never overflow.
///
/// ```
/// use rc_ternary::TernaryForest;
/// use rc_core::SumAgg;
/// let mut f = TernaryForest::<SumAgg<i64>>::new(5, 0);
/// // A degree-4 star — impossible for the raw RC forest.
/// f.batch_link(&[(0, 1, 10), (0, 2, 20), (0, 3, 30), (0, 4, 40)]).unwrap();
/// assert_eq!(f.path_aggregate(1, 4), Some(50));
/// ```
pub struct TernaryForest<A: ClusterAggregate> {
    inner: RcForest<A>,
    n: usize,
    chain_weight: A::EdgeWeight,
    /// Owner of every inner vertex (identity for reals).
    owner: Vec<Vertex>,
    /// Chain links between inner vertices (NONE32-terminated).
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Last vertex of each real vertex's chain (the real vertex itself
    /// when the chain is empty).
    tail: Vec<u32>,
    /// Free dummy ids.
    free: Vec<u32>,
    /// `edge_key(u, v)` -> packed `(d_min << 32) | d_max` where `d_min`
    /// lies on `min(u,v)`'s chain.
    edge_map: ConcurrentMap,
    num_edges: usize,
}

impl<A: ClusterAggregate> TernaryForest<A> {
    /// Create an empty forest on `n` real vertices. `chain_weight` is the
    /// identity weight carried by dummy chain edges (`0` for sums,
    /// `u64::MAX` for path-minimum aggregates, ...).
    pub fn new(n: usize, chain_weight: A::EdgeWeight) -> Self {
        let cap = 3 * n.max(1);
        let inner = RcForest::new(cap);
        let mut owner: Vec<Vertex> = (0..n as u32).collect();
        owner.resize(cap, NONE32);
        TernaryForest {
            inner,
            n,
            chain_weight,
            owner,
            next: vec![NONE32; cap],
            prev: vec![NONE32; cap],
            tail: (0..n as u32).collect(),
            free: (n as u32..cap as u32).rev().collect(),
            edge_map: ConcurrentMap::with_capacity(2 * n.max(2)),
            num_edges: 0,
        }
    }

    /// Number of real vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of real edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The inner degree-<=3 forest (read access for diagnostics/benches).
    pub fn inner(&self) -> &RcForest<A> {
        &self.inner
    }

    /// Map an inner vertex to its owning real vertex.
    pub fn owner_of(&self, inner_vertex: Vertex) -> Vertex {
        self.owner[inner_vertex as usize]
    }

    /// Current degree of real vertex `v` (number of real incident edges).
    pub fn degree(&self, v: Vertex) -> usize {
        let mut d = 0;
        let mut cur = self.next[v as usize];
        while cur != NONE32 {
            d += 1;
            cur = self.next[cur as usize];
        }
        d
    }

    /// Does edge `{u, v}` exist?
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.edge_map.get(edge_key(u, v)).is_some()
    }

    /// The two dummies realizing real edge `{u, v}`: `(on u's chain, on
    /// v's chain)`.
    pub fn dummies_of(&self, u: Vertex, v: Vertex) -> Option<(u32, u32)> {
        let packed = self.edge_map.get(edge_key(u, v))?;
        let lo_side = (packed >> 32) as u32;
        let hi_side = packed as u32;
        if u <= v {
            Some((lo_side, hi_side))
        } else {
            Some((hi_side, lo_side))
        }
    }

    /// Insert a batch of weighted real edges of arbitrary degree.
    /// Each add contributes 3 inner edges (Thm 4.2). Cycles and
    /// duplicates are rejected (the batch is applied atomically:
    /// validation happens against the *real* forest first).
    pub fn batch_link(
        &mut self,
        links: &[(Vertex, Vertex, A::EdgeWeight)],
    ) -> Result<(), ForestError> {
        // Validation against the real forest, including cycles among the
        // new edges (union-find over current components).
        let mut seen = std::collections::HashSet::new();
        for &(u, v, _) in links {
            if u as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v: u, n: self.n });
            }
            if v as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v, n: self.n });
            }
            if u == v {
                return Err(ForestError::SelfLoop { v });
            }
            if !seen.insert(edge_key(u, v)) || self.has_edge(u, v) {
                return Err(ForestError::DuplicateEdge { u, v });
            }
        }
        {
            let starts: Vec<Vertex> = links.iter().flat_map(|&(u, v, _)| [u, v]).collect();
            let reprs = self.inner.batch_find_representatives(&starts);
            let mut uf: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
            fn find(uf: &mut std::collections::HashMap<u32, u32>, x: u32) -> u32 {
                let p = *uf.entry(x).or_insert(x);
                if p == x {
                    x
                } else {
                    let r = find(uf, p);
                    uf.insert(x, r);
                    r
                }
            }
            for (i, &(u, v, _)) in links.iter().enumerate() {
                let (ru, rv) = (reprs[2 * i], reprs[2 * i + 1]);
                let (a, b) = (find(&mut uf, ru), find(&mut uf, rv));
                if a == b {
                    return Err(ForestError::WouldCreateCycle { u, v });
                }
                uf.insert(a, b);
            }
        }
        // Translate: allocate dummies, extend chains, cross-link.
        let mut inner_links: Vec<(u32, u32, A::EdgeWeight)> = Vec::with_capacity(links.len() * 3);
        for &(u, v, ref w) in links {
            let du = self.extend_chain(u, &mut inner_links);
            let dv = self.extend_chain(v, &mut inner_links);
            inner_links.push((du, dv, w.clone()));
            let (a, b) = if u <= v { (du, dv) } else { (dv, du) };
            self.edge_map
                .insert(edge_key(u, v), ((a as u64) << 32) | b as u64);
        }
        self.inner
            .batch_update_unchecked(&inner_links, &[])
            .expect("pre-validated ternary link must succeed");
        self.num_edges += links.len();
        Ok(())
    }

    fn extend_chain(&mut self, u: Vertex, inner_links: &mut Vec<(u32, u32, A::EdgeWeight)>) -> u32 {
        let d = self
            .free
            .pop()
            .expect("dummy pool exhausted (impossible for forests)");
        let t = self.tail[u as usize];
        self.next[t as usize] = d;
        self.prev[d as usize] = t;
        self.next[d as usize] = NONE32;
        self.tail[u as usize] = d;
        self.owner[d as usize] = u;
        inner_links.push((t, d, self.chain_weight.clone()));
        d
    }

    /// Delete a batch of existing real edges. Each delete contributes at
    /// most 5 inner deletions and 2 inner insertions (Thm 4.2).
    pub fn batch_cut(&mut self, cuts: &[(Vertex, Vertex)]) -> Result<(), ForestError> {
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in cuts {
            if u as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v: u, n: self.n });
            }
            if v as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v, n: self.n });
            }
            if !seen.insert(edge_key(u, v)) || !self.has_edge(u, v) {
                return Err(ForestError::MissingEdge { u, v });
            }
        }
        let mut inner_cuts: Vec<(u32, u32)> = Vec::with_capacity(cuts.len() * 3);
        let mut inner_links: Vec<(u32, u32, A::EdgeWeight)> = Vec::with_capacity(cuts.len());
        // Cross edges + the set of dummies leaving their chains.
        let mut removed: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(u, v) in cuts {
            let (du, dv) = self.dummies_of(u, v).expect("validated");
            inner_cuts.push((du, dv));
            self.edge_map.remove(edge_key(u, v));
            removed.insert(du);
            removed.insert(dv);
        }
        // Chains splice whole *runs* of removed dummies at once (adjacent
        // removals must not stage cuts of edges staged as links within the
        // same batch). This is the net-diff form of the paper's list
        // contraction: per run, cut the boundary + interior chain edges
        // and add one bridging edge.
        let run_starts: Vec<u32> = removed
            .iter()
            .copied()
            .filter(|&d| !removed.contains(&self.prev[d as usize]))
            .collect();
        for start in run_starts {
            let p = self.prev[start as usize];
            debug_assert_ne!(p, NONE32, "dummies always have a predecessor");
            inner_cuts.push((p, start));
            let mut end = start;
            loop {
                let nx = self.next[end as usize];
                if nx != NONE32 && removed.contains(&nx) {
                    inner_cuts.push((end, nx));
                    end = nx;
                } else {
                    break;
                }
            }
            let after = self.next[end as usize];
            // Release the run.
            let owner = self.owner[start as usize];
            let mut d = start;
            loop {
                let dn = self.next[d as usize];
                self.next[d as usize] = NONE32;
                self.prev[d as usize] = NONE32;
                self.owner[d as usize] = NONE32;
                self.free.push(d);
                if d == end {
                    break;
                }
                d = dn;
            }
            // Bridge or truncate the chain.
            if after != NONE32 {
                inner_cuts.push((end, after));
                inner_links.push((p, after, self.chain_weight.clone()));
                self.next[p as usize] = after;
                self.prev[after as usize] = p;
            } else {
                self.next[p as usize] = NONE32;
                self.tail[owner as usize] = p;
            }
        }
        self.inner
            .batch_update_unchecked(&inner_links, &inner_cuts)
            .expect("ternary splice produced an invalid inner update");
        self.num_edges -= cuts.len();
        Ok(())
    }

    /// Are `u` and `v` connected? (ternarization preserves connectivity;
    /// `false` when either vertex is out of the *real* range, which is
    /// narrower than the inner forest's.)
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        (u as usize) < self.n && (v as usize) < self.n && self.inner.connected(u, v)
    }

    /// Batch connectivity over real vertex pairs (out-of-range → `false`).
    pub fn batch_connected(&self, pairs: &[(Vertex, Vertex)]) -> Vec<bool> {
        self.inner.batch_connected(&self.bound_pairs(pairs))
    }

    /// Map ids past the real range to an id the inner forest also rejects
    /// (real ids are inner ids, but the inner forest is 3× larger — a raw
    /// pass-through would alias dummy vertices).
    fn bound_real(&self, v: Vertex) -> Vertex {
        if (v as usize) < self.n {
            v
        } else {
            NONE32
        }
    }

    /// [`Self::bound_real`] over a pair batch — every batch entry point
    /// over pairs must route through this (or its vertex/triple siblings)
    /// so out-of-range ids can never alias dummies.
    fn bound_pairs(&self, pairs: &[(Vertex, Vertex)]) -> Vec<(Vertex, Vertex)> {
        pairs
            .iter()
            .map(|&(u, v)| (self.bound_real(u), self.bound_real(v)))
            .collect()
    }

    /// [`Self::bound_real`] over a vertex batch.
    fn bound_vertices(&self, vs: &[Vertex]) -> Vec<Vertex> {
        vs.iter().map(|&v| self.bound_real(v)).collect()
    }

    /// Component representatives for a batch of real vertices (real
    /// vertices are chain heads of the inner forest, so representatives
    /// are comparable across calls). Out-of-range vertices map to
    /// `u32::MAX`.
    pub fn batch_find_representatives(&self, vs: &[Vertex]) -> Vec<Vertex> {
        self.inner
            .batch_find_representatives(&self.bound_vertices(vs))
    }

    /// A marked-subtree engine sweep of the inner forest over real start
    /// vertices — the extension point for custom batch queries through
    /// the ternarization layer (real vertex ids are valid inner ids; map
    /// Steiner/dummy representatives back with
    /// [`TernaryForest::owner_of`]).
    pub fn marked_sweep<I: IntoIterator<Item = Vertex>>(&self, starts: I) -> MarkedSweep<'_, A> {
        let n = self.n;
        self.inner
            .marked_sweep(starts.into_iter().filter(move |&v| (v as usize) < n))
    }

    /// Set real vertex weights (dummies keep the default weight).
    pub fn update_vertex_weights(
        &mut self,
        updates: &[(Vertex, A::VertexWeight)],
    ) -> Result<(), ForestError> {
        for &(v, _) in updates {
            if v as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v, n: self.n });
            }
        }
        self.inner.update_vertex_weights(updates)
    }

    /// Update the weight of existing real edges.
    pub fn update_edge_weights(
        &mut self,
        updates: &[(Vertex, Vertex, A::EdgeWeight)],
    ) -> Result<(), ForestError> {
        let mut inner: Vec<(u32, u32, A::EdgeWeight)> = Vec::with_capacity(updates.len());
        for &(u, v, ref w) in updates {
            let (du, dv) = self
                .dummies_of(u, v)
                .ok_or(ForestError::MissingEdge { u, v })?;
            inner.push((du, dv, w.clone()));
        }
        self.inner.update_edge_weights(&inner)
    }

    /// LCA over real vertices with respect to root `r` (Thm 4.7: the
    /// owner of the inner LCA equals the real LCA). `None` when a vertex
    /// is out of the real range.
    pub fn lca(&self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        if [u, v, r].iter().any(|&x| x as usize >= self.n) {
            return None;
        }
        self.inner.lca(u, v, r).map(|x| self.owner[x as usize])
    }

    /// Batch LCA over real triples (entries naming out-of-range vertices
    /// answer `None`).
    pub fn batch_lca(&self, queries: &[(Vertex, Vertex, Vertex)]) -> Vec<Option<Vertex>> {
        let bounded: Vec<(Vertex, Vertex, Vertex)> = queries
            .iter()
            .map(|&(u, v, r)| (self.bound_real(u), self.bound_real(v), self.bound_real(r)))
            .collect();
        self.inner
            .batch_lca(&bounded)
            .into_iter()
            .map(|o| o.map(|x| self.owner[x as usize]))
            .collect()
    }

    /// Check chain invariants plus the inner forest's invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.inner.validate()?;
        for v in 0..self.n as u32 {
            let mut cur = v;
            let mut steps = 0;
            while self.next[cur as usize] != NONE32 {
                let nx = self.next[cur as usize];
                if self.prev[nx as usize] != cur {
                    return Err(format!("chain of {v}: prev broken at {nx}"));
                }
                if self.owner[nx as usize] != v {
                    return Err(format!("chain of {v}: owner broken at {nx}"));
                }
                cur = nx;
                steps += 1;
                if steps > 3 * self.n {
                    return Err(format!("chain of {v}: cycle"));
                }
            }
            if self.tail[v as usize] != cur {
                return Err(format!("chain of {v}: tail mismatch"));
            }
        }
        Ok(())
    }
}

impl<P: PathAggregate> TernaryForest<P> {
    /// Path aggregate between real vertices (Thm 4.3: preserved because
    /// chain edges carry the identity weight). `None` out of real range.
    pub fn path_aggregate(&self, u: Vertex, v: Vertex) -> Option<P::PathVal> {
        self.inner
            .path_aggregate(self.bound_real(u), self.bound_real(v))
    }

    /// Compressed path tree over real terminals (out-of-range terminals
    /// ignored, as in the core). Steiner vertices may be dummies; map
    /// them with [`TernaryForest::owner_of`] if needed.
    pub fn compressed_path_tree(&self, terminals: &[Vertex]) -> CompressedPathTree<P> {
        let real: Vec<Vertex> = terminals
            .iter()
            .copied()
            .filter(|&v| (v as usize) < self.n)
            .collect();
        self.inner.compressed_path_tree(&real)
    }

    /// Batch path minima/maxima over real pairs (out-of-range → `None`).
    pub fn batch_path_extrema(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<P::PathVal>> {
        self.inner.batch_path_extrema(&self.bound_pairs(pairs))
    }
}

impl<P: rc_core::aggregate::GroupPathAggregate> TernaryForest<P> {
    /// Batch path sums over real pairs (commutative group weights;
    /// out-of-range → `None`).
    pub fn batch_path_aggregate(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<P::PathVal>> {
        self.inner.batch_path_aggregate(&self.bound_pairs(pairs))
    }
}

impl<S: SubtreeAggregate> TernaryForest<S> {
    /// Subtree aggregate rooted at `u` away from its real neighbor `p`
    /// (Thm 4.4: query the dummy pair of edge `{u, p}`).
    pub fn subtree_aggregate(&self, u: Vertex, p: Vertex) -> Option<S::SubtreeVal> {
        let (du, dp) = self.dummies_of(u, p)?;
        self.inner.subtree_aggregate(du, dp)
    }

    /// Batched subtree aggregates over `(root, direction-giver)` pairs.
    pub fn batch_subtree_aggregate(
        &self,
        queries: &[(Vertex, Vertex)],
    ) -> Vec<Option<S::SubtreeVal>> {
        let mapped: Vec<(u32, u32)> = queries
            .iter()
            .map(|&(u, p)| self.dummies_of(u, p).unwrap_or((NONE32, NONE32)))
            .collect();
        let valid: Vec<(u32, u32)> = mapped
            .iter()
            .copied()
            .filter(|&(a, _)| a != NONE32)
            .collect();
        let answers = self.inner.batch_subtree_aggregate(&valid);
        let mut it = answers.into_iter();
        mapped
            .into_iter()
            .map(|(a, _)| {
                if a == NONE32 {
                    None
                } else {
                    it.next().unwrap()
                }
            })
            .collect()
    }
}

impl TernaryForest<rc_core::NearestMarkedAgg> {
    /// Create a nearest-marked ternary forest (chain weight 0).
    pub fn new_nearest_marked(n: usize) -> Self {
        Self::new(n, 0)
    }
}

/// Nearest-marked queries through ternarization: marks live on real
/// vertices; chain edges carry distance 0 (the identity edge weight), so
/// distances are preserved. Available for any aggregate carrying a
/// nearest-marked record — the plain [`rc_core::NearestMarkedAgg`] or
/// composites such as the backend's `TernAgg`.
impl<A: rc_core::NearestMarkedAggregate> TernaryForest<A> {
    /// Mark real vertices (out-of-range ids ignored — dummies must never
    /// carry marks).
    pub fn batch_mark(&mut self, vs: &[Vertex]) {
        let real: Vec<Vertex> = vs
            .iter()
            .copied()
            .filter(|&v| (v as usize) < self.n)
            .collect();
        self.inner
            .batch_mark(&real)
            .expect("real ids are valid inner ids");
    }

    /// Unmark real vertices (out-of-range ids ignored).
    pub fn batch_unmark(&mut self, vs: &[Vertex]) {
        let real: Vec<Vertex> = vs
            .iter()
            .copied()
            .filter(|&v| (v as usize) < self.n)
            .collect();
        self.inner
            .batch_unmark(&real)
            .expect("real ids are valid inner ids");
    }

    /// Nearest marked vertex for each query (distance, witness);
    /// out-of-range queries answer `None`.
    pub fn batch_nearest_marked(&self, queries: &[Vertex]) -> Vec<Option<(u64, Vertex)>> {
        self.inner
            .batch_nearest_marked(&self.bound_vertices(queries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::SumAgg;
    use rc_parlay::rng::SplitMix64;

    type TF = TernaryForest<SumAgg<i64>>;

    #[test]
    fn star_of_high_degree() {
        let n = 20;
        let mut f = TF::new(n, 0);
        let links: Vec<(u32, u32, i64)> = (1..n as u32).map(|v| (0, v, v as i64)).collect();
        f.batch_link(&links).unwrap();
        f.validate().unwrap();
        assert_eq!(f.degree(0), n - 1);
        for v in 1..n as u32 {
            assert_eq!(f.path_aggregate(0, v), Some(v as i64));
        }
        assert_eq!(f.path_aggregate(1, 19), Some(20));
    }

    #[test]
    fn cut_and_relink_high_degree() {
        let mut f = TF::new(10, 0);
        let links: Vec<(u32, u32, i64)> = (1..10u32).map(|v| (0, v, 1)).collect();
        f.batch_link(&links).unwrap();
        f.batch_cut(&[(0, 5), (0, 7)]).unwrap();
        f.validate().unwrap();
        assert!(!f.connected(0, 5));
        assert!(!f.connected(5, 7));
        assert_eq!(f.degree(0), 7);
        f.batch_link(&[(5, 7, 2), (1, 5, 3)]).unwrap();
        f.validate().unwrap();
        assert_eq!(f.path_aggregate(0, 7), Some(1 + 3 + 2));
        assert_eq!(f.num_edges(), 9);
    }

    #[test]
    fn rejects_cycles_and_duplicates() {
        let mut f = TF::new(4, 0);
        f.batch_link(&[(0, 1, 1), (1, 2, 1)]).unwrap();
        assert!(f.batch_link(&[(0, 1, 5)]).is_err());
        assert!(
            f.batch_link(&[(0, 2, 5)]).is_err(),
            "cycle via existing edges"
        );
        assert!(
            f.batch_link(&[(2, 3, 1), (3, 0, 1)]).is_err(),
            "cycle among new"
        );
        assert!(f.batch_cut(&[(0, 2)]).is_err());
        f.validate().unwrap();
    }

    #[test]
    fn subtree_queries_via_dummies() {
        // Star with center 0, leaves 1..=4, edge weight 1; vertex weights 10*id.
        let mut f = TF::new(5, 0);
        f.batch_link(&(1..5u32).map(|v| (0, v, 1i64)).collect::<Vec<_>>())
            .unwrap();
        f.update_vertex_weights(&(0..5u32).map(|v| (v, v as i64 * 10)).collect::<Vec<_>>())
            .unwrap();
        // Subtree of 0 away from 1: everything except leaf 1 and edge (0,1).
        assert_eq!(f.subtree_aggregate(0, 1), Some(20 + 30 + 40 + 3));
        assert_eq!(f.subtree_aggregate(3, 0), Some(30));
        let batch = f.batch_subtree_aggregate(&[(0, 1), (3, 0), (1, 2)]);
        assert_eq!(batch[0], Some(93));
        assert_eq!(batch[1], Some(30));
        assert_eq!(batch[2], None, "1 and 2 not adjacent");
    }

    #[test]
    fn lca_maps_owners() {
        let mut f = TF::new(7, 0);
        f.batch_link(&(1..7u32).map(|v| (0, v, 1i64)).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(f.lca(1, 2, 3), Some(0));
        assert_eq!(f.lca(1, 0, 3), Some(0));
        assert_eq!(f.lca(4, 4, 5), Some(4));
        let batch = f.batch_lca(&[(1, 2, 3), (5, 6, 1)]);
        assert_eq!(batch, vec![Some(0), Some(0)]);
    }

    #[test]
    fn stress_against_naive() {
        let n = 60usize;
        let mut f = TF::new(n, 0);
        let mut naive = rc_core::naive::NaiveForest::<i64>::new(n);
        let mut rng = SplitMix64::new(555);
        for round in 0..30 {
            let mut links: Vec<(u32, u32, i64)> = Vec::new();
            let mut cuts: Vec<(u32, u32)> = Vec::new();
            for _ in 0..5 {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                if u == v {
                    continue;
                }
                if naive.edge_weight(u, v).is_some() {
                    if !cuts.contains(&(u, v)) && !cuts.contains(&(v, u)) {
                        cuts.push((u, v));
                    }
                } else if !naive.connected(u, v)
                    && !links
                        .iter()
                        .any(|&(a, b, _)| (a, b) == (u, v) || (b, a) == (u, v))
                {
                    links.push((u, v, rng.next_below(50) as i64));
                }
            }
            let mut ok_links = Vec::new();
            for &(u, v, w) in &links {
                let mut trial = naive.clone();
                for &(a, b, ww) in &ok_links {
                    let _ = trial.link(a, b, ww);
                }
                if trial.link(u, v, w).is_ok() {
                    ok_links.push((u, v, w));
                }
            }
            for &(u, v) in &cuts {
                naive.cut(u, v).unwrap();
            }
            for &(u, v, w) in &ok_links {
                naive.link(u, v, w).unwrap();
            }
            f.batch_cut(&cuts).unwrap();
            f.batch_link(&ok_links).unwrap();
            f.validate()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            for _ in 0..20 {
                let u = rng.next_below(n as u64) as u32;
                let v = rng.next_below(n as u64) as u32;
                let expect = naive.path_edges(u, v).map(|es| es.iter().sum::<i64>());
                assert_eq!(
                    f.path_aggregate(u, v),
                    expect,
                    "round {round}: path {u}..{v}"
                );
            }
        }
    }

    #[test]
    fn nearest_marked_through_chains() {
        let mut f = TernaryForest::<rc_core::NearestMarkedAgg>::new_nearest_marked(6);
        f.batch_link(&[(0, 1, 5), (0, 2, 3), (0, 3, 2), (3, 4, 7), (3, 5, 1)])
            .unwrap();
        f.batch_mark(&[1, 5]);
        let got = f.batch_nearest_marked(&[4, 2, 0]);
        assert_eq!(got[0].unwrap(), (8, 5), "4 -> 3 -> 5");
        assert_eq!(got[1].unwrap(), (6, 5), "2 -> 0 -> 3 -> 5");
        assert_eq!(got[2].unwrap(), (3, 5));
    }
}
