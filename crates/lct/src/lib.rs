//! Link-cut trees: the classic sequential dynamic-forest baseline.
//!
//! A splay-based implementation of Sleator–Tarjan link-cut trees with
//! lazy path reversal (`evert`), augmented for every query family of the
//! [`DynamicForest`] backend trait:
//!
//! * **path aggregates** — each edge is materialized as an *edge node*
//!   spliced between its endpoints, so the preferred-path splay trees
//!   carry exact path sums and min/max edges with [`EdgeRef`] witnesses
//!   (same `(weight, u, v)` tie-break as the RC-tree aggregates);
//! * **subtree sums** — virtual-subtree augmentation: every node
//!   maintains the total of the subtrees hanging off its preferred path
//!   (`vsub`), updated at each preferred-child switch, so
//!   `subtree_sum(v, parent)` is `evert(parent); access(v)` plus one
//!   field read;
//! * **LCA** — `access` returns the last preferred-path switch point;
//! * **connectivity / representatives** — `find_root` after `access`.
//!
//! All operations are amortized `O(log n)` — except
//! [`DynamicForest::nearest_marked`], which this baseline answers by
//! scanning the marked set (`O(m log n)`); crossover benchmarks exclude
//! it. Batch entry points are the trait's sequential loops: this backend
//! exists precisely to be the "independent sequential ops" side of the
//! paper's batch-vs-sequential crossover experiment.
//!
//! An optional degree cap ([`LctForest::with_max_degree`]) makes the
//! error contract of [`DynamicForest::link`] bit-identical to the raw
//! degree-≤3 RC forest, which is what lets differential tests demand
//! exact [`ForestError`] agreement.

use rc_core::aggregate::PathAggregate;
use rc_core::{
    DynamicForest, EdgeRef, ForestError, ForestState, MaxEdgeAgg, MinEdgeAgg, PathSummary, Vertex,
};
use std::collections::{BTreeSet, HashMap};

const NIL: u32 = u32::MAX;

#[inline]
fn key(u: Vertex, v: Vertex) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

#[inline]
fn pick_min(a: Option<EdgeRef<u64>>, b: Option<EdgeRef<u64>>) -> Option<EdgeRef<u64>> {
    <MinEdgeAgg<u64> as PathAggregate>::path_combine(&a, &b)
}

#[inline]
fn pick_max(a: Option<EdgeRef<u64>>, b: Option<EdgeRef<u64>>) -> Option<EdgeRef<u64>> {
    <MaxEdgeAgg<u64> as PathAggregate>::path_combine(&a, &b)
}

/// One splay node: a forest vertex (`edge == None`) or a materialized
/// edge (`edge == Some`). `parent` doubles as the path-parent pointer —
/// a node is a splay root iff its parent does not child-link it back.
#[derive(Clone, Debug)]
struct Node {
    parent: u32,
    child: [u32; 2],
    flip: bool,
    /// Edge payload (`None` for vertex nodes).
    edge: Option<EdgeRef<u64>>,
    /// Additive vertex weight (0 for edge nodes).
    vweight: u64,
    /// Sum of edge weights over this splay subtree's path segment.
    psum: u64,
    /// Lightest / heaviest edge on the segment.
    pmin: Option<EdgeRef<u64>>,
    pmax: Option<EdgeRef<u64>>,
    /// Total (vertex + edge weights) of the represented subtree under
    /// this splay subtree: own + children + `vsub`.
    tot: u64,
    /// Sum of totals of virtual (non-preferred) child subtrees.
    vsub: u64,
}

impl Node {
    fn vertex() -> Node {
        Node {
            parent: NIL,
            child: [NIL, NIL],
            flip: false,
            edge: None,
            vweight: 0,
            psum: 0,
            pmin: None,
            pmax: None,
            tot: 0,
            vsub: 0,
        }
    }
}

/// An amortized `O(log n)` sequential dynamic forest (see the crate docs).
pub struct LctForest {
    nodes: Vec<Node>,
    /// Free edge-node slots (all ≥ `n`).
    free: Vec<u32>,
    /// `{u, v}` → edge-node id.
    edges: HashMap<u64, u32>,
    degree: Vec<u32>,
    marked: BTreeSet<Vertex>,
    n: usize,
    cap: Option<usize>,
    /// Monotone stamp for [`DynamicForest::version`]: bumped once per
    /// successful mutation.
    version: u64,
    /// Reusable root-to-node path buffer for `splay`'s flip push-down.
    splay_scratch: Vec<u32>,
}

impl LctForest {
    /// An edgeless forest on `n` vertices with no degree cap.
    pub fn new(n: usize) -> Self {
        Self::with_max_degree(n, None)
    }

    /// An edgeless forest enforcing `cap` on `link` (use `Some(3)` to
    /// mirror the raw RC forest's `DegreeOverflow` contract exactly).
    pub fn with_max_degree(n: usize, cap: Option<usize>) -> Self {
        LctForest {
            nodes: (0..n).map(|_| Node::vertex()).collect(),
            free: Vec::new(),
            edges: HashMap::new(),
            degree: vec![0; n],
            marked: BTreeSet::new(),
            n,
            cap,
            version: 0,
            splay_scratch: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Does the forest contain edge `{u, v}`?
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.edges.contains_key(&key(u, v))
    }

    #[inline]
    fn in_range(&self, v: Vertex) -> bool {
        (v as usize) < self.n
    }

    // ---------------------------------------------------------------
    // splay machinery
    // ---------------------------------------------------------------

    #[inline]
    fn is_splay_root(&self, x: u32) -> bool {
        let p = self.nodes[x as usize].parent;
        p == NIL || (self.nodes[p as usize].child[0] != x && self.nodes[p as usize].child[1] != x)
    }

    fn push(&mut self, x: u32) {
        if self.nodes[x as usize].flip {
            self.nodes[x as usize].flip = false;
            self.nodes[x as usize].child.swap(0, 1);
            for c in self.nodes[x as usize].child {
                if c != NIL {
                    self.nodes[c as usize].flip ^= true;
                }
            }
        }
    }

    /// Recompute aggregates from children (orientation-independent, so
    /// pending flips below are harmless).
    fn pull(&mut self, x: u32) {
        let nx = &self.nodes[x as usize];
        let (own_ps, own_e) = match nx.edge {
            Some(e) => (e.w, Some(e)),
            None => (0, None),
        };
        let mut psum = own_ps;
        let mut pmin = own_e;
        let mut pmax = own_e;
        let mut tot = nx.vweight.wrapping_add(own_ps).wrapping_add(nx.vsub);
        for c in nx.child {
            if c != NIL {
                let nc = &self.nodes[c as usize];
                psum = psum.wrapping_add(nc.psum);
                pmin = pick_min(pmin, nc.pmin);
                pmax = pick_max(pmax, nc.pmax);
                tot = tot.wrapping_add(nc.tot);
            }
        }
        let nx = &mut self.nodes[x as usize];
        nx.psum = psum;
        nx.pmin = pmin;
        nx.pmax = pmax;
        nx.tot = tot;
    }

    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        let g = self.nodes[p as usize].parent;
        let dir = (self.nodes[p as usize].child[1] == x) as usize;
        let b = self.nodes[x as usize].child[1 - dir];
        self.nodes[p as usize].child[dir] = b;
        if b != NIL {
            self.nodes[b as usize].parent = p;
        }
        self.nodes[x as usize].child[1 - dir] = p;
        if g != NIL {
            if self.nodes[g as usize].child[0] == p {
                self.nodes[g as usize].child[0] = x;
            } else if self.nodes[g as usize].child[1] == p {
                self.nodes[g as usize].child[1] = x;
            }
            // else: p was a splay root; x inherits the path-parent.
        }
        self.nodes[x as usize].parent = g;
        self.nodes[p as usize].parent = x;
        self.pull(p);
        self.pull(x);
    }

    fn splay(&mut self, x: u32) {
        // Push pending flips root-to-x first (reused buffer — this is
        // the hottest loop of the benchmark baseline).
        let mut path = std::mem::take(&mut self.splay_scratch);
        path.clear();
        path.push(x);
        let mut cur = x;
        while !self.is_splay_root(cur) {
            cur = self.nodes[cur as usize].parent;
            path.push(cur);
        }
        for &y in path.iter().rev() {
            self.push(y);
        }
        self.splay_scratch = path;
        while !self.is_splay_root(x) {
            let p = self.nodes[x as usize].parent;
            if !self.is_splay_root(p) {
                let g = self.nodes[p as usize].parent;
                let zigzig = (self.nodes[g as usize].child[0] == p)
                    == (self.nodes[p as usize].child[0] == x);
                if zigzig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    /// Make the root-to-`x` path preferred and splay `x` to the root of
    /// its splay tree. Returns the last preferred-path switch point (the
    /// LCA primitive).
    fn access(&mut self, x: u32) -> u32 {
        self.splay(x);
        let r = self.nodes[x as usize].child[1];
        if r != NIL {
            let rt = self.nodes[r as usize].tot;
            let nx = &mut self.nodes[x as usize];
            nx.vsub = nx.vsub.wrapping_add(rt);
            nx.child[1] = NIL;
            self.pull(x);
        }
        let mut last = x;
        loop {
            let w = self.nodes[x as usize].parent;
            if w == NIL {
                break;
            }
            self.splay(w);
            let r = self.nodes[w as usize].child[1];
            if r != NIL {
                let rt = self.nodes[r as usize].tot;
                self.nodes[w as usize].vsub = self.nodes[w as usize].vsub.wrapping_add(rt);
            }
            let xt = self.nodes[x as usize].tot;
            let nw = &mut self.nodes[w as usize];
            nw.vsub = nw.vsub.wrapping_sub(xt);
            nw.child[1] = x;
            self.pull(w);
            last = w;
            self.splay(x);
        }
        last
    }

    /// Make `x` the root of its represented tree.
    fn make_root(&mut self, x: u32) {
        self.access(x);
        self.nodes[x as usize].flip ^= true;
        self.push(x);
    }

    /// Root of `x`'s represented tree (splayed for amortization).
    fn find_root(&mut self, x: u32) -> u32 {
        self.access(x);
        let mut cur = x;
        self.push(cur);
        while self.nodes[cur as usize].child[0] != NIL {
            cur = self.nodes[cur as usize].child[0];
            self.push(cur);
        }
        self.splay(cur);
        cur
    }

    /// Splay root of `x` (climbs child links only; does not restructure,
    /// so the climb is unpaid — the caller must splay the climbed node
    /// afterwards to keep the amortized bound).
    fn splay_top(&self, mut x: u32) -> u32 {
        loop {
            let p = self.nodes[x as usize].parent;
            if p == NIL
                || (self.nodes[p as usize].child[0] != x && self.nodes[p as usize].child[1] != x)
            {
                return x;
            }
            x = p;
        }
    }

    /// Evert `u`, access `v`; true iff they are connected, in which case
    /// `v`'s splay tree is exactly the `u..v` path — callers read `v`'s
    /// aggregates before the next operation. Connectivity is `O(1)` on
    /// top of the two accesses: `make_root(u)` leaves `u` parentless,
    /// and the only operation since — `access(v)` — gives `u` a parent
    /// iff it pulls `u` onto `v`'s preferred path, i.e. iff the two
    /// vertices share a tree.
    fn expose(&mut self, u: u32, v: u32) -> bool {
        debug_assert_ne!(u, v, "callers special-case self pairs");
        self.make_root(u);
        self.access(v);
        self.nodes[u as usize].parent != NIL
    }

    fn connected_nodes(&mut self, u: u32, v: u32) -> bool {
        u == v || self.expose(u, v)
    }

    // ---------------------------------------------------------------
    // structural updates
    // ---------------------------------------------------------------

    fn alloc_edge(&mut self, e: EdgeRef<u64>) -> u32 {
        let mut node = Node::vertex();
        node.edge = Some(e);
        node.psum = e.w;
        node.pmin = Some(e);
        node.pmax = Some(e);
        node.tot = e.w;
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn do_link(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        if !self.in_range(u) {
            return Err(ForestError::VertexOutOfRange { v: u, n: self.n });
        }
        if !self.in_range(v) {
            return Err(ForestError::VertexOutOfRange { v, n: self.n });
        }
        if u == v {
            return Err(ForestError::SelfLoop { v });
        }
        if self.edges.contains_key(&key(u, v)) {
            return Err(ForestError::DuplicateEdge { u, v });
        }
        if let Some(cap) = self.cap {
            for x in [u, v] {
                if self.degree[x as usize] as usize >= cap {
                    return Err(ForestError::DegreeOverflow { v: x });
                }
            }
        }
        if self.connected_nodes(u, v) {
            return Err(ForestError::WouldCreateCycle { u, v });
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        let e = self.alloc_edge(EdgeRef { u: a, v: b, w });
        // Hang u's everted tree under the edge node, then the edge node
        // under v — both as virtual children of an accessed root.
        self.make_root(u);
        let ut = self.nodes[u as usize].tot;
        self.nodes[u as usize].parent = e;
        self.nodes[e as usize].vsub = self.nodes[e as usize].vsub.wrapping_add(ut);
        self.pull(e);
        self.access(v);
        let et = self.nodes[e as usize].tot;
        self.nodes[e as usize].parent = v;
        self.nodes[v as usize].vsub = self.nodes[v as usize].vsub.wrapping_add(et);
        self.pull(v);
        self.edges.insert(key(u, v), e);
        self.degree[u as usize] += 1;
        self.degree[v as usize] += 1;
        Ok(())
    }

    fn do_cut(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError> {
        if !self.in_range(u) {
            return Err(ForestError::VertexOutOfRange { v: u, n: self.n });
        }
        if !self.in_range(v) {
            return Err(ForestError::VertexOutOfRange { v, n: self.n });
        }
        let Some(&e) = self.edges.get(&key(u, v)) else {
            return Err(ForestError::MissingEdge { u, v });
        };
        // Split above the edge node (detaching u's side), then above v.
        self.make_root(u);
        self.access(e);
        let a = self.nodes[e as usize].child[0];
        debug_assert_ne!(a, NIL, "edge node has a path predecessor");
        self.nodes[e as usize].child[0] = NIL;
        self.nodes[a as usize].parent = NIL;
        self.pull(e);
        self.access(v);
        let b = self.nodes[v as usize].child[0];
        debug_assert_eq!(b, e, "edge node is v's path predecessor");
        self.nodes[v as usize].child[0] = NIL;
        self.nodes[e as usize].parent = NIL;
        self.pull(v);
        debug_assert_eq!(self.nodes[e as usize].vsub, 0, "freed edge is isolated");
        self.edges.remove(&key(u, v));
        self.degree[u as usize] -= 1;
        self.degree[v as usize] -= 1;
        self.free.push(e);
        Ok(())
    }

    // ---------------------------------------------------------------
    // validation (test support)
    // ---------------------------------------------------------------

    /// Check structural and aggregate invariants of the whole splay
    /// forest (child/parent symmetry, aggregate recomputation, `vsub`
    /// vs. actual virtual children). `O(n)`; test support.
    pub fn validate(&self) -> Result<(), String> {
        let live = |i: u32| -> bool {
            (i as usize) < self.n
                || (self.nodes[i as usize].edge.is_some() && !self.free.contains(&i))
        };
        let mut vsub_actual: HashMap<u32, u64> = HashMap::new();
        for i in 0..self.nodes.len() as u32 {
            if !live(i) {
                continue;
            }
            let nd = &self.nodes[i as usize];
            for c in nd.child {
                if c != NIL && self.nodes[c as usize].parent != i {
                    return Err(format!("node {i}: child {c} parent back-link broken"));
                }
            }
            let p = nd.parent;
            if p != NIL
                && self.nodes[p as usize].child[0] != i
                && self.nodes[p as usize].child[1] != i
            {
                // Virtual child: contributes to p's vsub.
                *vsub_actual.entry(p).or_insert(0) = vsub_actual
                    .get(&p)
                    .copied()
                    .unwrap_or(0)
                    .wrapping_add(nd.tot);
            }
        }
        for i in 0..self.nodes.len() as u32 {
            if !live(i) {
                continue;
            }
            let nd = &self.nodes[i as usize];
            let expect = vsub_actual.get(&i).copied().unwrap_or(0);
            if nd.vsub != expect {
                return Err(format!("node {i}: vsub {} != actual {}", nd.vsub, expect));
            }
            let (own_ps, own_e) = match nd.edge {
                Some(e) => (e.w, Some(e)),
                None => (0, None),
            };
            let mut psum = own_ps;
            let mut pmin = own_e;
            let mut pmax = own_e;
            let mut tot = nd.vweight.wrapping_add(own_ps).wrapping_add(nd.vsub);
            for c in nd.child {
                if c != NIL {
                    let nc = &self.nodes[c as usize];
                    psum = psum.wrapping_add(nc.psum);
                    pmin = pick_min(pmin, nc.pmin);
                    pmax = pick_max(pmax, nc.pmax);
                    tot = tot.wrapping_add(nc.tot);
                }
            }
            if psum != nd.psum || pmin != nd.pmin || pmax != nd.pmax || tot != nd.tot {
                return Err(format!("node {i}: stale aggregates"));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for LctForest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LctForest(n={}, edges={})", self.n, self.edges.len())
    }
}

impl DynamicForest for LctForest {
    fn backend_name(&self) -> &'static str {
        "lct"
    }

    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn max_degree(&self) -> Option<usize> {
        self.cap
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn link(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        self.do_link(u, v, w).inspect(|()| self.version += 1)
    }

    fn cut(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError> {
        self.do_cut(u, v).inspect(|()| self.version += 1)
    }

    fn set_edge_weight(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        if !self.in_range(u) || !self.in_range(v) {
            return Err(ForestError::MissingEdge { u, v });
        }
        let Some(&e) = self.edges.get(&key(u, v)) else {
            return Err(ForestError::MissingEdge { u, v });
        };
        self.access(e);
        let er = self.nodes[e as usize].edge.as_mut().expect("edge node");
        er.w = w;
        self.pull(e);
        self.version += 1;
        Ok(())
    }

    fn set_vertex_weight(&mut self, v: Vertex, w: u64) -> Result<(), ForestError> {
        if !self.in_range(v) {
            return Err(ForestError::VertexOutOfRange { v, n: self.n });
        }
        self.access(v);
        self.nodes[v as usize].vweight = w;
        self.pull(v);
        self.version += 1;
        Ok(())
    }

    fn set_mark(&mut self, v: Vertex, marked: bool) -> Result<(), ForestError> {
        if !self.in_range(v) {
            return Err(ForestError::VertexOutOfRange { v, n: self.n });
        }
        if marked {
            self.marked.insert(v);
        } else {
            self.marked.remove(&v);
        }
        self.version += 1;
        Ok(())
    }

    fn connected(&mut self, u: Vertex, v: Vertex) -> bool {
        self.in_range(u) && self.in_range(v) && self.connected_nodes(u, v)
    }

    fn representative(&mut self, v: Vertex) -> Option<Vertex> {
        if !self.in_range(v) {
            return None;
        }
        let r = self.find_root(v);
        debug_assert!((r as usize) < self.n, "tree roots are vertices");
        Some(r)
    }

    fn path_sum(&mut self, u: Vertex, v: Vertex) -> Option<u64> {
        self.path_extrema(u, v).map(|p| p.sum)
    }

    fn path_extrema(&mut self, u: Vertex, v: Vertex) -> Option<PathSummary> {
        if !self.in_range(u) || !self.in_range(v) {
            return None;
        }
        if u == v {
            return Some(PathSummary::identity());
        }
        if !self.expose(u, v) {
            return None;
        }
        let nv = &self.nodes[v as usize];
        Some(PathSummary {
            sum: nv.psum,
            min: nv.pmin,
            max: nv.pmax,
        })
    }

    fn lca(&mut self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        if [u, v, r].iter().any(|&x| !self.in_range(x)) {
            return None;
        }
        self.make_root(r);
        self.access(u);
        if u != r && self.nodes[r as usize].parent == NIL {
            return None; // u not connected to r (the O(1) expose check)
        }
        let last = self.access(v);
        // The O(1) check is spent (access(u) may already have chained
        // `r`), so climb to r's splay root — and splay `r` afterwards to
        // pay for the climb.
        let v_connected = self.splay_top(r) == v;
        self.splay(r);
        if !v_connected {
            return None;
        }
        debug_assert!(
            (last as usize) < self.n,
            "paths between vertices branch at vertices"
        );
        Some(last)
    }

    fn subtree_sum(&mut self, v: Vertex, parent: Vertex) -> Option<u64> {
        if !self.in_range(v) || !self.in_range(parent) || !self.has_edge(v, parent) {
            return None;
        }
        self.make_root(parent);
        self.access(v);
        let nv = &self.nodes[v as usize];
        Some(nv.vweight.wrapping_add(nv.vsub))
    }

    fn nearest_marked(&mut self, v: Vertex) -> Option<(u64, Vertex)> {
        if !self.in_range(v) {
            return None;
        }
        // Baseline-quality scan: O(marked · log n) amortized. The marked
        // set is iterated in id order, and the (distance, vertex) minimum
        // reproduces the deterministic tie-break of the RC aggregates.
        let marks: Vec<Vertex> = self.marked.iter().copied().collect();
        let mut best: Option<(u64, Vertex)> = None;
        for m in marks {
            let d = if m == v {
                0
            } else {
                if !self.expose(v, m) {
                    continue; // different component
                }
                self.nodes[m as usize].psum
            };
            let cand = (d, m);
            best = Some(match best {
                None => cand,
                Some(b) => b.min(cand),
            });
        }
        best
    }

    fn export_state(&self) -> ForestState {
        // Pure bookkeeping reads — edge payloads, vertex-node weights and
        // the marked set are all orientation-independent, so no splaying.
        let edges = self
            .edges
            .values()
            .map(|&e| {
                let er = self.nodes[e as usize].edge.expect("edge node has payload");
                (er.u, er.v, er.w)
            })
            .collect();
        let mut state = ForestState {
            n: self.n,
            edges,
            weights: self.nodes[..self.n].iter().map(|nd| nd.vweight).collect(),
            marks: self.marked.iter().copied().collect(),
        };
        state.canonicalize();
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::NaiveStdForest;
    use rc_parlay::rng::SplitMix64;

    fn path(n: u32) -> LctForest {
        let mut f = LctForest::new(n as usize);
        for i in 0..n - 1 {
            f.do_link(i, i + 1, (i + 1) as u64).unwrap();
        }
        f
    }

    #[test]
    fn path_queries_on_a_path() {
        let mut f = path(10);
        f.validate().unwrap();
        assert_eq!(f.path_sum(0, 9), Some(45));
        assert_eq!(f.path_sum(3, 3), Some(0));
        let p = f.path_extrema(2, 7).unwrap();
        assert_eq!(p.sum, 3 + 4 + 5 + 6 + 7);
        assert_eq!(
            (p.min.unwrap().u, p.min.unwrap().v, p.min.unwrap().w),
            (2, 3, 3)
        );
        assert_eq!(p.max.unwrap().w, 7);
        assert!(f.connected(0, 9));
        assert!(!f.connected(0, 10));
        f.validate().unwrap();
    }

    #[test]
    fn link_cut_roundtrip() {
        let mut f = path(8);
        f.do_cut(3, 4).unwrap();
        f.validate().unwrap();
        assert!(!f.connected(0, 7));
        assert_eq!(f.path_sum(0, 3), Some(1 + 2 + 3));
        assert_eq!(f.path_sum(4, 7), Some(5 + 6 + 7));
        assert_eq!(f.path_sum(0, 7), None);
        f.do_link(0, 7, 100).unwrap();
        f.validate().unwrap();
        assert_eq!(f.path_sum(3, 4), Some(1 + 2 + 3 + 100 + 7 + 6 + 5));
        assert_eq!(f.num_edges(), 7);
    }

    #[test]
    fn error_contract_matches_rc_order() {
        let mut f = LctForest::with_max_degree(6, Some(3));
        for v in 1..=3 {
            f.do_link(0, v, 1).unwrap();
        }
        assert_eq!(f.do_link(0, 0, 1), Err(ForestError::SelfLoop { v: 0 }));
        assert_eq!(
            f.do_link(0, 1, 9),
            Err(ForestError::DuplicateEdge { u: 0, v: 1 })
        );
        assert_eq!(
            f.do_link(0, 4, 1),
            Err(ForestError::DegreeOverflow { v: 0 })
        );
        assert_eq!(
            f.do_link(1, 2, 1),
            Err(ForestError::WouldCreateCycle { u: 1, v: 2 })
        );
        assert_eq!(
            f.do_link(9, 0, 1),
            Err(ForestError::VertexOutOfRange { v: 9, n: 6 })
        );
        assert_eq!(f.do_cut(1, 2), Err(ForestError::MissingEdge { u: 1, v: 2 }));
        assert_eq!(
            f.set_edge_weight(0, 9, 1),
            Err(ForestError::MissingEdge { u: 0, v: 9 })
        );
        f.validate().unwrap();
    }

    #[test]
    fn lca_on_star_and_path() {
        let mut f = LctForest::new(7);
        for v in 1..7 {
            f.do_link(0, v, 1).unwrap();
        }
        assert_eq!(f.lca(1, 2, 3), Some(0));
        assert_eq!(f.lca(1, 0, 3), Some(0));
        assert_eq!(f.lca(4, 4, 5), Some(4));
        assert_eq!(f.lca(1, 2, 1), Some(1));
        let mut p = path(6);
        assert_eq!(p.lca(0, 5, 2), Some(2));
        assert_eq!(p.lca(0, 1, 5), Some(1));
        p.do_cut(2, 3).unwrap();
        assert_eq!(p.lca(0, 5, 2), None);
    }

    #[test]
    fn subtree_sums_with_vertex_weights() {
        // Star with center 0, leaves 1..=4, edge weight 1, vweight 10*id.
        let mut f = LctForest::new(5);
        for v in 1..5u32 {
            f.do_link(0, v, 1).unwrap();
        }
        for v in 0..5u32 {
            f.set_vertex_weight(v, v as u64 * 10).unwrap();
        }
        assert_eq!(f.subtree_sum(0, 1), Some(20 + 30 + 40 + 3));
        assert_eq!(f.subtree_sum(3, 0), Some(30));
        assert_eq!(f.subtree_sum(1, 2), None, "not adjacent");
        assert_eq!(f.subtree_sum(1, 1), None, "self pair");
        f.validate().unwrap();
    }

    #[test]
    fn nearest_marked_scan() {
        let mut f = path(8); // weights i+1
        assert_eq!(f.nearest_marked(4), None);
        f.set_mark(0, true).unwrap();
        f.set_mark(7, true).unwrap();
        assert_eq!(f.nearest_marked(2), Some((1 + 2, 0)));
        assert_eq!(f.nearest_marked(6), Some((7, 7)));
        assert_eq!(f.nearest_marked(0), Some((0, 0)));
        f.do_cut(3, 4).unwrap();
        assert_eq!(f.nearest_marked(4), Some((5 + 6 + 7, 7)));
        f.set_mark(7, false).unwrap();
        assert_eq!(f.nearest_marked(4), None);
    }

    #[test]
    fn representative_consistency() {
        let mut f = path(10);
        f.do_cut(4, 5).unwrap();
        let r0 = f.representative(0).unwrap();
        let r4 = f.representative(4).unwrap();
        let r5 = f.representative(5).unwrap();
        assert_eq!(r0, r4);
        assert_ne!(r4, r5);
        assert_eq!(f.representative(10), None);
    }

    #[test]
    fn edge_weight_updates_propagate() {
        let mut f = path(6);
        f.set_edge_weight(2, 3, 77).unwrap();
        assert_eq!(f.path_sum(0, 5), Some(1 + 2 + 77 + 4 + 5));
        let p = f.path_extrema(0, 5).unwrap();
        assert_eq!(p.max.unwrap().w, 77);
        f.validate().unwrap();
    }

    #[test]
    fn randomized_vs_naive_oracle() {
        let n = 64usize;
        let mut lct = LctForest::with_max_degree(n, Some(3));
        let mut naive = NaiveStdForest::with_max_degree(n, Some(3));
        let mut rng = SplitMix64::new(0xD1FF);
        for round in 0..4_000u32 {
            let u = rng.next_below(n as u64 + 4) as u32;
            let v = rng.next_below(n as u64 + 4) as u32;
            let r = rng.next_below(n as u64) as u32;
            let w = 1 + rng.next_below(50);
            match rng.next_below(12) {
                0..=2 => {
                    assert_eq!(lct.link(u, v, w), naive.link(u, v, w), "round {round} link");
                }
                3 | 4 => {
                    assert_eq!(lct.cut(u, v), naive.cut(u, v), "round {round} cut");
                }
                5 => {
                    assert_eq!(
                        lct.set_edge_weight(u, v, w),
                        naive.set_edge_weight(u, v, w),
                        "round {round} sew"
                    );
                }
                6 => {
                    assert_eq!(
                        lct.set_vertex_weight(u, w),
                        naive.set_vertex_weight(u, w),
                        "round {round} svw"
                    );
                    let m = rng.next_f64() < 0.3;
                    assert_eq!(lct.set_mark(v, m), naive.set_mark(v, m));
                }
                7 => {
                    assert_eq!(
                        lct.connected(u, v),
                        naive.connected(u, v),
                        "round {round} conn"
                    );
                    assert_eq!(
                        lct.nearest_marked(u),
                        naive.nearest_marked(u),
                        "round {round} near"
                    );
                }
                8 => {
                    assert_eq!(
                        lct.path_extrema(u, v),
                        naive.path_extrema(u, v),
                        "round {round} extrema {u} {v}"
                    );
                }
                9 => {
                    assert_eq!(lct.lca(u, v, r), naive.lca(u, v, r), "round {round} lca");
                }
                10 => {
                    assert_eq!(
                        lct.subtree_sum(u, v),
                        naive.subtree_sum(u, v),
                        "round {round} subtree"
                    );
                }
                _ => {
                    assert_eq!(
                        lct.path_sum(u, v),
                        naive.path_sum(u, v),
                        "round {round} psum"
                    );
                }
            }
            if round % 512 == 0 {
                lct.validate()
                    .unwrap_or_else(|e| panic!("round {round}: {e}"));
            }
        }
        lct.validate().unwrap();
    }
}
