//! Parallel counting sort and radix sort.
//!
//! Counting sort is used by the deterministic chain-coloring MIS (§5.10:
//! "Using a counting sort, we can then deterministically find the MIS") and
//! radix sort backs the semisort / group-by primitive.

use crate::scan::scan_exclusive_u32;
use crate::slice::{uninit_copy_vec, ParSlice};
use crate::{adaptive_grain, SEQ_THRESHOLD};
use rayon::prelude::*;

/// Stable parallel counting sort of `xs` by `key(x) in 0..num_buckets`.
///
/// Returns `(sorted, bucket_offsets)` where `bucket_offsets` has length
/// `num_buckets + 1` and bucket `b` occupies
/// `sorted[bucket_offsets[b]..bucket_offsets[b+1]]`.
pub fn counting_sort_by<T, F>(xs: &[T], num_buckets: usize, key: F) -> (Vec<T>, Vec<u32>)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    let n = xs.len();
    assert!(num_buckets > 0);
    // Blocks hold at least `num_buckets` items so per-block histograms
    // amortize; the adaptive grain sizes them to the pool above that.
    let block = adaptive_grain(n).max(num_buckets);
    if n <= block || num_buckets > n {
        return counting_sort_seq(xs, num_buckets, key);
    }
    let nblocks = n.div_ceil(block);
    // Per-block histograms, laid out bucket-major so the prefix sum directly
    // yields scatter offsets: hist[b * nblocks + blk].
    let mut hist: Vec<u32> = vec![0; num_buckets * nblocks];
    {
        let ph = ParSlice::new(&mut hist);
        (0..nblocks).into_par_iter().for_each(|blk| {
            let lo = blk * block;
            let hi = (lo + block).min(n);
            for x in &xs[lo..hi] {
                let b = key(x);
                debug_assert!(b < num_buckets);
                // SAFETY: each (bucket, blk) cell is owned by block `blk`.
                unsafe {
                    let c = ph.get_mut(b * nblocks + blk);
                    *c += 1;
                }
            }
        });
    }
    let total = scan_exclusive_u32(&mut hist);
    debug_assert_eq!(total as usize, n);
    let mut offsets = Vec::with_capacity(num_buckets + 1);
    for b in 0..num_buckets {
        offsets.push(hist[b * nblocks]);
    }
    offsets.push(n as u32);

    let mut out: Vec<T> = uninit_copy_vec(n);
    {
        let po = ParSlice::new(&mut out);
        let hist = &hist;
        (0..nblocks).into_par_iter().for_each(|blk| {
            let lo = blk * block;
            let hi = (lo + block).min(n);
            let mut cursors: Vec<u32> = (0..num_buckets).map(|b| hist[b * nblocks + blk]).collect();
            for x in &xs[lo..hi] {
                let b = key(x);
                let dst = cursors[b] as usize;
                cursors[b] += 1;
                // SAFETY: destination slots are disjoint — each (bucket,
                // block) range comes from the global prefix sum.
                unsafe { po.write(dst, *x) };
            }
        });
    }
    (out, offsets)
}

fn counting_sort_seq<T, F>(xs: &[T], num_buckets: usize, key: F) -> (Vec<T>, Vec<u32>)
where
    T: Copy,
    F: Fn(&T) -> usize,
{
    let mut counts = vec![0u32; num_buckets + 1];
    for x in xs {
        counts[key(x) + 1] += 1;
    }
    for b in 0..num_buckets {
        counts[b + 1] += counts[b];
    }
    let offsets = counts.clone();
    let mut out: Vec<T> = uninit_copy_vec(xs.len());
    let mut cursors = counts;
    for x in xs {
        let b = key(x);
        out[cursors[b] as usize] = *x;
        cursors[b] += 1;
    }
    (out, offsets)
}

/// Parallel sort of items by a `u64` key. Not stable. Wraps rayon's
/// parallel unstable sort (a fork-join merge sort in the workspace shim).
pub fn sort_by_u64_key<T, F>(xs: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync + Send,
{
    if xs.len() <= SEQ_THRESHOLD {
        xs.sort_unstable_by_key(|x| key(x));
    } else {
        xs.par_sort_unstable_by_key(|x| key(x));
    }
}

/// Parallel sort of items by a composite `(u64, u64)` key. Not stable.
/// Used by the semisort to order by `(hash(key), key)` in a single pass —
/// hash collisions between distinct keys are broken by the second
/// component instead of a sequential fix-up re-sort.
pub fn sort_by_u64_pair_key<T, F>(xs: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> (u64, u64) + Sync + Send,
{
    if xs.len() <= SEQ_THRESHOLD {
        xs.sort_unstable_by_key(|x| key(x));
    } else {
        xs.par_sort_unstable_by_key(|x| key(x));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn counting_sort_small() {
        let xs = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let (sorted, offs) = counting_sort_by(&xs, 10, |&x| x as usize);
        let mut expect = xs.to_vec();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert_eq!(offs.len(), 11);
        assert_eq!(offs[0], 0);
        assert_eq!(offs[10], 10);
        // bucket 1 holds the two 1s
        assert_eq!(&sorted[offs[1] as usize..offs[2] as usize], &[1, 1]);
    }

    #[test]
    fn counting_sort_large_matches_std() {
        let mut rng = SplitMix64::new(77);
        let xs: Vec<u32> = (0..200_000).map(|_| rng.next_below(64) as u32).collect();
        let (sorted, offs) = counting_sort_by(&xs, 64, |&x| x as usize);
        let mut expect = xs.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        for b in 0..64 {
            for &x in &sorted[offs[b] as usize..offs[b + 1] as usize] {
                assert_eq!(x as usize, b);
            }
        }
    }

    #[test]
    fn counting_sort_is_stable() {
        // items = (key, original index); stability keeps indices increasing per key.
        let mut rng = SplitMix64::new(3);
        let xs: Vec<(u32, u32)> = (0..100_000)
            .map(|i| (rng.next_below(8) as u32, i))
            .collect();
        let (sorted, _) = counting_sort_by(&xs, 8, |&(k, _)| k as usize);
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "instability at key {}", w[0].0);
            }
        }
    }

    #[test]
    fn counting_sort_empty() {
        let xs: [u32; 0] = [];
        let (sorted, offs) = counting_sort_by(&xs, 4, |&x| x as usize);
        assert!(sorted.is_empty());
        assert_eq!(offs, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn sort_by_key_large() {
        let mut rng = SplitMix64::new(9);
        let mut xs: Vec<u64> = (0..150_000).map(|_| rng.next_u64()).collect();
        let mut expect = xs.clone();
        sort_by_u64_key(&mut xs, |&x| x);
        expect.sort_unstable();
        assert_eq!(xs, expect);
    }
}
