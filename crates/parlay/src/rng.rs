//! Deterministic pseudo-random hashing and a small splittable PRNG.
//!
//! The RC-tree contraction rule needs a priority `h(seed, vertex, level)`
//! that is (a) fast, (b) a pure function of its arguments, and (c) of high
//! enough quality that local-maxima independent sets contract a constant
//! fraction of each chain per round. We use the splitmix64 finalizer, the
//! standard choice for this purpose.

/// The splitmix64 mixing function (Steele, Lea, Flood 2014 finalizer).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash two words into one, suitable for per-(vertex, level) coin flips.
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// Hash three words into one.
#[inline]
pub fn hash3(a: u64, b: u64, c: u64) -> u64 {
    mix64(a ^ mix64(b ^ mix64(c)))
}

/// Priority of vertex `v` at contraction `level` under `seed`.
///
/// Ties are broken by the vertex id so priorities are a strict total order
/// within a level (collisions of the 64-bit hash are resolved, making the
/// contraction decision a *pure function* — required by change propagation).
#[inline]
pub fn priority(seed: u64, v: u32, level: u32) -> (u64, u32) {
    (hash3(seed, v as u64, level as u64), v)
}

/// A tiny splittable PRNG (splitmix64). Deterministic and `Copy`;
/// used by the forest generator and tests instead of the `rand` crate.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: mix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (bound > 0), via Lemire's method.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fork an independent stream (splittable).
    #[inline]
    pub fn split(&mut self) -> Self {
        Self {
            state: mix64(self.next_u64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        // Low-bit avalanche sanity: flipping one input bit flips ~half the output.
        let a = mix64(0x1234_5678);
        let b = mix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "poor avalanche: {flipped}");
    }

    #[test]
    fn priorities_are_total_order() {
        let p1 = priority(7, 1, 3);
        let p2 = priority(7, 2, 3);
        assert_ne!(p1, p2);
        assert_eq!(p1, priority(7, 1, 3));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(999);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn coin_balance() {
        // Heads fraction of hash2 coin flips should be near 1/2.
        let heads = (0..100_000u64).filter(|&i| hash2(3, i) & 1 == 1).count();
        assert!((48_000..52_000).contains(&heads), "biased coin: {heads}");
    }
}
