//! Parallel prefix sums (scans).
//!
//! Two-pass blocked scan: per-block reductions in parallel, a sequential
//! scan over the (few) block sums, then parallel per-block exclusive scans
//! with the block offsets. `O(n)` work, `O(log n)` span — the workhorse
//! behind `pack`, `flatten`, counting sort and the batch-query offsets in
//! `rc-core`.

use crate::adaptive_grain;
use crate::slice::ParSlice;
use rayon::prelude::*;

/// Generic exclusive scan in place. `xs[i]` becomes `op(id, xs[0..i])`;
/// returns the total reduction of the input.
///
/// `op` must be associative with identity `id`.
pub fn scan_exclusive<T, F>(xs: &mut [T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = xs.len();
    if n == 0 {
        return id;
    }
    let block = adaptive_grain(n);
    if n <= block {
        return scan_exclusive_seq(xs, id, &op);
    }
    let nblocks = n.div_ceil(block);
    // Pass 1: block sums.
    let mut sums: Vec<T> = xs
        .par_chunks(block)
        .map(|chunk| chunk.iter().fold(id, |a, &b| op(a, b)))
        .collect();
    // Sequential scan over block sums.
    let total = scan_exclusive_seq(&mut sums, id, &op);
    // Pass 2: per-block exclusive scans with offsets.
    let ps = ParSlice::new(xs);
    sums.par_iter().enumerate().for_each(|(b, &offset)| {
        let lo = b * block;
        let hi = (lo + block).min(n);
        let mut acc = offset;
        for i in lo..hi {
            // SAFETY: block ranges are disjoint across iterations.
            unsafe {
                let x = ps.read(i);
                ps.write(i, acc);
                acc = op(acc, x);
            }
        }
    });
    let _ = nblocks;
    total
}

fn scan_exclusive_seq<T, F>(xs: &mut [T], id: T, op: &F) -> T
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut acc = id;
    for x in xs.iter_mut() {
        let v = *x;
        *x = acc;
        acc = op(acc, v);
    }
    acc
}

/// Exclusive `+`-scan over `u64`s; returns the total.
pub fn scan_exclusive_u64(xs: &mut [u64]) -> u64 {
    scan_exclusive(xs, 0u64, |a, b| a + b)
}

/// Exclusive `+`-scan over `u32`s (sums must fit in `u32`); returns the total.
pub fn scan_exclusive_u32(xs: &mut [u32]) -> u32 {
    scan_exclusive(xs, 0u32, |a, b| a + b)
}

/// Parallel reduction with an associative operator.
pub fn reduce<T, F>(xs: &[T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let block = adaptive_grain(xs.len());
    if xs.len() <= block {
        return xs.iter().fold(id, |a, &b| op(a, b));
    }
    xs.par_chunks(block)
        .map(|c| c.iter().fold(id, |a, &b| op(a, b)))
        .reduce(|| id, &op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scan() {
        let mut xs: Vec<u64> = vec![];
        assert_eq!(scan_exclusive_u64(&mut xs), 0);
    }

    #[test]
    fn small_scan_matches_reference() {
        let mut xs = vec![3u64, 1, 4, 1, 5];
        let total = scan_exclusive_u64(&mut xs);
        assert_eq!(total, 14);
        assert_eq!(xs, vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn large_scan_matches_sequential() {
        let n = 100_003;
        let orig: Vec<u64> = (0..n).map(|i| (i as u64 * 2654435761) % 97).collect();
        let mut par = orig.clone();
        let total = scan_exclusive_u64(&mut par);

        let mut acc = 0u64;
        let mut seq = Vec::with_capacity(n);
        for &x in &orig {
            seq.push(acc);
            acc += x;
        }
        assert_eq!(total, acc);
        assert_eq!(par, seq);
    }

    #[test]
    fn max_scan() {
        let mut xs = vec![2i64, 9, 4, 1, 12, 3];
        let total = scan_exclusive(&mut xs, i64::MIN, |a, b| a.max(b));
        assert_eq!(total, 12);
        assert_eq!(xs, vec![i64::MIN, 2, 9, 9, 9, 12]);
    }

    #[test]
    fn reduce_matches_sum() {
        let xs: Vec<u64> = (0..50_000).collect();
        assert_eq!(reduce(&xs, 0, |a, b| a + b), 50_000 * 49_999 / 2);
    }

    #[test]
    fn scan_u32() {
        let mut xs = vec![1u32; 10_000];
        let total = scan_exclusive_u32(&mut xs);
        assert_eq!(total, 10_000);
        assert_eq!(xs[9_999], 9_999);
    }
}
