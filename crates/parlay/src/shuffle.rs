//! Parallel random permutations (§6.1: "every edge returned from the
//! treegen has its vertices shuffled via a bijective map that is
//! constructed with a parallel shuffle").

use crate::rng::hash3;
use crate::sort::sort_by_u64_key;
use crate::SEQ_THRESHOLD;

const SHUFFLE_SALT: u64 = 0x5EED_0F5A_17C0_FFEE;

/// A uniformly random bijection on `[0, n)`, deterministic in `seed`.
///
/// Large inputs are shuffled by sorting indices by independent 64-bit hash
/// keys (ties broken by index) — the parallel-shuffle construction of
/// Parlay. Small inputs use sequential Fisher–Yates.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if n <= SEQ_THRESHOLD {
        let mut rng = crate::rng::SplitMix64::new(seed);
        for i in (1..n).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
    } else {
        sort_by_u64_key(&mut perm, |&v| hash3(seed, SHUFFLE_SALT, v as u64));
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[u32]) -> bool {
        let mut seen = vec![false; p.len()];
        for &x in p {
            if seen[x as usize] {
                return false;
            }
            seen[x as usize] = true;
        }
        true
    }

    #[test]
    fn small_is_permutation() {
        for n in [0usize, 1, 2, 17, 100] {
            assert!(is_permutation(&random_permutation(n, 9)), "n={n}");
        }
    }

    #[test]
    fn large_is_permutation() {
        assert!(is_permutation(&random_permutation(100_000, 3)));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_permutation(5000, 1), random_permutation(5000, 1));
        assert_ne!(random_permutation(5000, 1), random_permutation(5000, 2));
    }

    #[test]
    fn looks_shuffled() {
        let p = random_permutation(10_000, 4);
        let fixed = p
            .iter()
            .enumerate()
            .filter(|&(i, &x)| i as u32 == x)
            .count();
        // Expected number of fixed points of a random permutation is 1.
        assert!(fixed < 20, "too many fixed points: {fixed}");
    }
}
