//! Parallel algorithm substrate for `rcforest`.
//!
//! This crate provides the parallel primitives that the paper's C++
//! implementation takes from ParlayLib (Blelloch, Anderson, Dhulipala 2020):
//! prefix sums, filter/pack, flatten, semisort/group-by, concurrent hash
//! tables, parallel list contraction, random shuffles, and deterministic
//! pseudo-random hashing. Everything is built on [`rayon`]'s fork-join
//! scheduler, the Rust equivalent of Parlay's work-stealing scheduler.
//!
//! All primitives are deterministic given their seed arguments, which the
//! RC-tree change-propagation algorithm relies on (see `rc-core`).
//!
//! # Quick example
//!
//! ```
//! use rc_parlay::{scan, pack};
//! let mut xs = vec![1u64, 2, 3, 4];
//! let total = scan::scan_exclusive_u64(&mut xs);
//! assert_eq!(total, 10);
//! assert_eq!(xs, vec![0, 1, 3, 6]);
//! let evens = pack::pack_index(8, |i| i % 2 == 0);
//! assert_eq!(evens, vec![0, 2, 4, 6]);
//! ```

pub mod atomic_slots;
pub mod hashtable;
pub mod inline;
pub mod list;
pub mod pack;
pub mod rng;
pub mod scan;
pub mod semisort;
pub mod shuffle;
pub mod slice;
pub mod sort;

/// Sentinel "null" value used for `u32` indices throughout the workspace.
pub const NONE_U32: u32 = u32::MAX;

/// Granularity below which parallel loops fall back to sequential execution.
///
/// Matches ParlayLib's default granularity philosophy: dispatching to the
/// pool for fewer than ~2k elements costs more than it saves.
pub const SEQ_THRESHOLD: usize = 2048;

/// Smallest chunk [`adaptive_grain`] will hand to a pool thread. Below
/// this, per-chunk scheduling overhead (an atomic claim plus cache
/// traffic) rivals the work in the chunk.
pub const MIN_GRAIN: usize = 256;

/// Grain size adapted to the current pool and input length.
///
/// Returns `n` (one sequential chunk) when the pool is single-threaded or
/// the input is below [`SEQ_THRESHOLD`] — parallel machinery would be pure
/// overhead. Otherwise targets ~8 chunks per pool thread, clamped to
/// `[MIN_GRAIN, SEQ_THRESHOLD]`, so the pool's dynamic chunk claiming can
/// rebalance stragglers while chunks stay big enough to amortize their
/// scheduling cost. Replaces the one-size-fits-all [`SEQ_THRESHOLD`]
/// blocking used before the persistent pool existed: with many threads the
/// old fixed 2048-element blocks left most of the pool idle on mid-sized
/// inputs, and with one thread they still paid the dispatch tax.
pub fn adaptive_grain(n: usize) -> usize {
    let t = rayon::current_num_threads();
    if t <= 1 || n <= SEQ_THRESHOLD {
        return n.max(1);
    }
    (n / (t * 8)).clamp(MIN_GRAIN, SEQ_THRESHOLD)
}

/// Run `f(i)` for every `i in 0..n`, in parallel when `n` is large enough.
///
/// `f` must be safe to run concurrently for distinct indices.
pub fn parallel_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    parallel_for_grain(n, adaptive_grain(n), f)
}

/// Like [`parallel_for`] but with an explicit grain size.
pub fn parallel_for_grain<F: Fn(usize) + Sync>(n: usize, grain: usize, f: F) {
    if n <= grain.max(1) {
        for i in 0..n {
            f(i);
        }
    } else {
        use rayon::prelude::*;
        let grain = grain.max(1);
        let nblocks = n.div_ceil(grain);
        (0..nblocks).into_par_iter().for_each(|b| {
            let lo = b * grain;
            let hi = (lo + grain).min(n);
            for i in lo..hi {
                f(i);
            }
        });
    }
}

/// Map `f` over `0..n` collecting per-thread outputs into one `Vec`,
/// in no particular order. Used to gather marked nodes without scanning
/// the whole structure.
pub fn parallel_collect<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let grain = adaptive_grain(n);
    if n <= grain {
        let mut out = Vec::new();
        for i in 0..n {
            f(i, &mut out);
        }
        return out;
    }
    use rayon::prelude::*;
    let nblocks = n.div_ceil(grain);
    (0..nblocks)
        .into_par_iter()
        .fold(Vec::new, |mut acc, b| {
            let lo = b * grain;
            let hi = (lo + grain).min(n);
            for i in lo..hi {
                f(i, &mut acc);
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            if a.len() < b.len() {
                std::mem::swap(&mut a, &mut b);
            }
            a.append(&mut b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_small_is_sequential() {
        let hits: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_collect_gathers_everything() {
        let mut out = parallel_collect(50_000, |i, acc| {
            if i % 7 == 0 {
                acc.push(i);
            }
        });
        out.sort_unstable();
        let expect: Vec<usize> = (0..50_000).filter(|i| i % 7 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_for_zero_and_one() {
        parallel_for(0, |_| panic!("must not run"));
        let hit = AtomicUsize::new(0);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
