//! Semisort / group-by (§2.1).
//!
//! A semisort groups equal keys together without fully ordering them. The
//! paper uses the expected-linear-work semisort of \[48\]; we hash keys to
//! 64 bits and sort by hash, which has the same interface and, for the
//! word-sized keys used throughout this workspace, differs only by the
//! `O(log n)` comparison-sort factor (documented in DESIGN.md §4). Groups
//! come back as contiguous ranges.

use crate::rng::hash2;
use crate::sort::sort_by_u64_pair_key;
use crate::SEQ_THRESHOLD;
use rayon::prelude::*;

/// Result of [`group_by_key`]: the permuted pairs plus the `(lo, hi)`
/// range of each key's run.
pub type Grouped<V> = (Vec<(u64, V)>, Vec<(u32, u32)>);

/// Group a sequence of `(key, value)` pairs by key.
///
/// Returns `(pairs, group_ranges)`: `pairs` is a permutation of the input
/// with equal keys adjacent; each `(lo, hi)` in `group_ranges` delimits one
/// key's run `pairs[lo..hi]`. Group order is pseudo-random (by key hash).
pub fn group_by_key<V>(pairs: &[(u64, V)], seed: u64) -> Grouped<V>
where
    V: Copy + Send + Sync,
{
    let mut items: Vec<(u64, V)> = pairs.to_vec();
    // One parallel sort by (hash(key), key): equal keys end up adjacent
    // even when two distinct keys collide in the hash (~ n^2 / 2^64 —
    // essentially never — but correctness must not depend on luck).
    sort_by_u64_pair_key(&mut items, |&(k, _)| (hash2(seed, k), k));

    let n = items.len();
    let is_start = |i: usize| i == 0 || items[i - 1].0 != items[i].0;
    let starts: Vec<u32> = if n <= SEQ_THRESHOLD {
        (0..n).filter(|&i| is_start(i)).map(|i| i as u32).collect()
    } else {
        crate::pack::pack_index(n, is_start)
    };
    let mut ranges = Vec::with_capacity(starts.len());
    for (j, &s) in starts.iter().enumerate() {
        let e = if j + 1 < starts.len() {
            starts[j + 1]
        } else {
            n as u32
        };
        ranges.push((s, e));
    }
    (items, ranges)
}

/// Group u32 values by a u32 key — the common case (edges grouped by
/// endpoint in ternarization, clusters grouped by parent in batch queries).
pub fn group_u32_by_u32(pairs: &[(u32, u32)], seed: u64) -> Vec<(u32, Vec<u32>)> {
    let wide: Vec<(u64, u32)> = if pairs.len() <= SEQ_THRESHOLD {
        pairs.iter().map(|&(k, v)| (k as u64, v)).collect()
    } else {
        pairs.par_iter().map(|&(k, v)| (k as u64, v)).collect()
    };
    let (sorted, ranges) = group_by_key(&wide, seed);
    ranges
        .into_iter()
        .map(|(lo, hi)| {
            let key = sorted[lo as usize].0 as u32;
            let vals: Vec<u32> = sorted[lo as usize..hi as usize]
                .iter()
                .map(|&(_, v)| v)
                .collect();
            (key, vals)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn groups_are_complete_and_disjoint() {
        let mut rng = SplitMix64::new(11);
        let pairs: Vec<(u64, u32)> = (0..100_000u32).map(|i| (rng.next_below(500), i)).collect();
        let (sorted, ranges) = group_by_key(&pairs, 42);

        // Every range has a single key; ranges tile [0, n).
        let mut covered = 0usize;
        let mut seen_keys = std::collections::HashSet::new();
        for &(lo, hi) in &ranges {
            assert!(lo < hi);
            assert_eq!(covered, lo as usize);
            covered = hi as usize;
            let k = sorted[lo as usize].0;
            assert!(seen_keys.insert(k), "key {k} split across groups");
            assert!(sorted[lo as usize..hi as usize]
                .iter()
                .all(|&(kk, _)| kk == k));
        }
        assert_eq!(covered, sorted.len());

        // Multiset of values per key matches a reference HashMap grouping.
        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(k, v) in &pairs {
            reference.entry(k).or_default().push(v);
        }
        for &(lo, hi) in &ranges {
            let k = sorted[lo as usize].0;
            let mut got: Vec<u32> = sorted[lo as usize..hi as usize]
                .iter()
                .map(|&(_, v)| v)
                .collect();
            got.sort_unstable();
            let mut want = reference.remove(&k).unwrap();
            want.sort_unstable();
            assert_eq!(got, want);
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn group_u32_small() {
        let pairs = vec![(1u32, 10u32), (2, 20), (1, 11), (3, 30), (2, 21)];
        let groups = group_u32_by_u32(&pairs, 7);
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for (k, mut vs) in groups {
            vs.sort_unstable();
            assert!(map.insert(k, vs).is_none());
        }
        assert_eq!(map[&1], vec![10, 11]);
        assert_eq!(map[&2], vec![20, 21]);
        assert_eq!(map[&3], vec![30]);
    }

    #[test]
    fn empty_input() {
        let (sorted, ranges) = group_by_key::<u32>(&[], 1);
        assert!(sorted.is_empty());
        assert!(ranges.is_empty());
    }
}
