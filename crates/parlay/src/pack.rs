//! Filter, pack, and flatten — the scan-based gather primitives of §2.1.

use crate::scan::scan_exclusive_u32;
use crate::slice::{uninit_copy_vec, ParSlice};
use crate::{adaptive_grain, parallel_for_grain};
use rayon::prelude::*;

/// Indices `i in 0..n` with `pred(i)`, in increasing order.
pub fn pack_index<F: Fn(usize) -> bool + Sync>(n: usize, pred: F) -> Vec<u32> {
    let block = adaptive_grain(n);
    if n <= block {
        return (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
    }
    let nblocks = n.div_ceil(block);
    let mut counts: Vec<u32> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * block;
            let hi = (lo + block).min(n);
            (lo..hi).filter(|&i| pred(i)).count() as u32
        })
        .collect();
    let total = scan_exclusive_u32(&mut counts) as usize;
    let mut out: Vec<u32> = uninit_copy_vec(total);
    {
        let ps = ParSlice::new(&mut out);
        counts.par_iter().enumerate().for_each(|(b, &off)| {
            let lo = b * block;
            let hi = (lo + block).min(n);
            let mut k = off as usize;
            for i in lo..hi {
                if pred(i) {
                    // SAFETY: destination ranges are disjoint per block
                    // (offsets come from the prefix sum of block counts).
                    unsafe { ps.write(k, i as u32) };
                    k += 1;
                }
            }
        });
    }
    out
}

/// Keep the elements satisfying `pred`, preserving order.
pub fn filter<T, F>(xs: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let idx = pack_index(xs.len(), |i| pred(&xs[i]));
    map_index(&idx, |i| xs[i as usize])
}

/// Gather `f(i)` for each index in `idx` (parallel map over an index list).
pub fn map_index<T, F>(idx: &[u32], f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(u32) -> T + Sync,
{
    let mut out: Vec<T> = uninit_copy_vec(idx.len());
    {
        let ps = ParSlice::new(&mut out);
        parallel_for_grain(idx.len(), adaptive_grain(idx.len()), |k| {
            // SAFETY: each k written exactly once.
            unsafe { ps.write(k, f(idx[k])) };
        });
    }
    out
}

/// Concatenate a 2-D structure into a flat vector (§2.1 "flatten").
pub fn flatten<T: Copy + Send + Sync>(nested: &[Vec<T>]) -> Vec<T> {
    let mut offsets: Vec<u32> = nested.iter().map(|v| v.len() as u32).collect();
    let total = scan_exclusive_u32(&mut offsets) as usize;
    let mut out: Vec<T> = uninit_copy_vec(total);
    {
        let ps = ParSlice::new(&mut out);
        nested.par_iter().enumerate().for_each(|(j, v)| {
            let off = offsets[j] as usize;
            for (i, &x) in v.iter().enumerate() {
                // SAFETY: output ranges [off, off+len) are disjoint across j.
                unsafe { ps.write(off + i, x) };
            }
        });
    }
    out
}

/// Count elements satisfying `pred`.
pub fn count<T, F>(xs: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    let block = adaptive_grain(xs.len());
    if xs.len() <= block {
        return xs.iter().filter(|x| pred(x)).count();
    }
    xs.par_chunks(block)
        .map(|c| c.iter().filter(|x| pred(x)).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_index_small_and_large_agree() {
        for n in [0usize, 1, 100, 70_000] {
            let got = pack_index(n, |i| i % 3 == 1);
            let expect: Vec<u32> = (0..n).filter(|i| i % 3 == 1).map(|i| i as u32).collect();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn filter_preserves_order() {
        let xs: Vec<u64> = (0..50_000).map(|i| i * 7 % 13).collect();
        let got = filter(&xs, |&x| x > 6);
        let expect: Vec<u64> = xs.iter().copied().filter(|&x| x > 6).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn flatten_matches_concat() {
        let nested: Vec<Vec<u32>> = (0..1000)
            .map(|i| (0..(i % 7)).map(|j| (i * 10 + j) as u32).collect())
            .collect();
        let got = flatten(&nested);
        let expect: Vec<u32> = nested.iter().flatten().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn flatten_all_empty() {
        let nested: Vec<Vec<u32>> = vec![vec![], vec![], vec![]];
        assert!(flatten(&nested).is_empty());
    }

    #[test]
    fn count_parallel() {
        let xs: Vec<u32> = (0..100_000).collect();
        assert_eq!(count(&xs, |&x| x % 10 == 0), 10_000);
    }

    #[test]
    fn map_index_gathers() {
        let idx = vec![5u32, 1, 3];
        let got = map_index(&idx, |i| i * 2);
        assert_eq!(got, vec![10, 2, 6]);
    }
}
