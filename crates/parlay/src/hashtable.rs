//! A phase-concurrent lock-free hash table (Gil–Matias–Vishkin style, §2.1).
//!
//! Open addressing with linear probing over atomic 64-bit key cells.
//! Supports *phase-concurrent* use in the sense of Shun–Blelloch: any number
//! of threads may perform the *same kind* of operation concurrently
//! (all-inserts, all-lookups, or all-erases); phases are separated by the
//! caller's fork-join barriers. This matches every use site in the paper
//! (ternarization's edge map, query-time compaction maps).
//!
//! Keys are arbitrary `u64` except the two reserved sentinels. Values are
//! `u64`.

use crate::rng::mix64;
use std::sync::atomic::{AtomicU64, Ordering};

const EMPTY: u64 = u64::MAX;
const TOMBSTONE: u64 = u64::MAX - 1;
/// Values equal to `u64::MAX` are reserved (used as the "not yet written"
/// marker that lets concurrent inserts of distinct keys race safely).
const VAL_UNSET: u64 = u64::MAX;

/// Lock-free open-addressing map from `u64` to `u64`.
pub struct ConcurrentMap {
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicU64>,
    mask: usize,
}

impl ConcurrentMap {
    /// Create a table able to hold `capacity` entries at ≤ 50% load.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        let keys = (0..slots).map(|_| AtomicU64::new(EMPTY)).collect();
        let vals = (0..slots).map(|_| AtomicU64::new(VAL_UNSET)).collect();
        Self {
            keys,
            vals,
            mask: slots - 1,
        }
    }

    /// Number of slots (2× requested capacity, rounded up to a power of two).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn start(&self, key: u64) -> usize {
        (mix64(key) as usize) & self.mask
    }

    /// Insert `(key, value)`. Returns the previous value if the key was
    /// already present (last writer wins on races for the same key).
    ///
    /// Tombstones are only reused after the whole probe chain has been
    /// scanned for the key — reusing one eagerly would shadow a live
    /// entry further down the chain.
    ///
    /// Panics if the table is full or `key`/`value` are reserved sentinels.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        assert!(key < TOMBSTONE, "reserved key");
        assert!(value != VAL_UNSET, "reserved value");
        'retry: loop {
            let mut i = self.start(key);
            let mut first_tomb: Option<usize> = None;
            let mut empty_slot: Option<usize> = None;
            for _probe in 0..=self.mask {
                let k = self.keys[i].load(Ordering::Acquire);
                if k == key {
                    let old = self.vals[i].swap(value, Ordering::AcqRel);
                    return if old == VAL_UNSET { None } else { Some(old) };
                }
                if k == TOMBSTONE && first_tomb.is_none() {
                    first_tomb = Some(i);
                }
                if k == EMPTY {
                    empty_slot = Some(i);
                    break;
                }
                i = (i + 1) & self.mask;
            }
            let target = match first_tomb.or(empty_slot) {
                Some(t) => t,
                None => panic!("ConcurrentMap full (capacity {})", self.slots() / 2),
            };
            let cur = self.keys[target].load(Ordering::Acquire);
            if cur != EMPTY && cur != TOMBSTONE {
                continue 'retry; // slot raced away; rescan the chain
            }
            match self.keys[target].compare_exchange(cur, key, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    let old = self.vals[target].swap(value, Ordering::AcqRel);
                    return if old == VAL_UNSET { None } else { Some(old) };
                }
                Err(_) => continue 'retry,
            }
        }
    }

    /// Look up `key`. Safe concurrently with other lookups; concurrent with
    /// inserts it is safe for keys whose insert already completed.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = self.start(key);
        for _probe in 0..=self.mask {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == key {
                // An in-flight insert may have claimed the key cell but not
                // yet published the value; spin briefly (bounded by the
                // other thread's two instructions).
                loop {
                    let v = self.vals[i].load(Ordering::Acquire);
                    if v != VAL_UNSET {
                        return Some(v);
                    }
                    std::hint::spin_loop();
                }
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Remove `key`, returning its value. Phase-concurrent with other
    /// removes of distinct keys.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let mut i = self.start(key);
        for _probe in 0..=self.mask {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == key {
                if self.keys[i]
                    .compare_exchange(key, TOMBSTONE, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let v = self.vals[i].swap(VAL_UNSET, Ordering::AcqRel);
                    return if v == VAL_UNSET { None } else { Some(v) };
                }
                return None;
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Snapshot all `(key, value)` pairs (quiescent use only).
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for i in 0..self.keys.len() {
            let k = self.keys[i].load(Ordering::Acquire);
            if k < TOMBSTONE {
                let v = self.vals[i].load(Ordering::Acquire);
                if v != VAL_UNSET {
                    out.push((k, v));
                }
            }
        }
        out
    }
}

/// Pack an unordered pair of `u32` vertex ids into a `u64` key.
///
/// Used for undirected-edge maps: `edge_key(u, v) == edge_key(v, u)`.
#[inline]
pub fn edge_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for;

    #[test]
    fn insert_get_remove_roundtrip() {
        let m = ConcurrentMap::with_capacity(100);
        assert_eq!(m.insert(3, 30), None);
        assert_eq!(m.insert(3, 31), Some(30));
        assert_eq!(m.get(3), Some(31));
        assert_eq!(m.get(4), None);
        assert_eq!(m.remove(3), Some(31));
        assert_eq!(m.get(3), None);
        assert_eq!(m.remove(3), None);
    }

    #[test]
    fn tombstone_reuse() {
        let m = ConcurrentMap::with_capacity(4);
        for round in 0..20 {
            // Insert+remove more distinct keys than capacity over time;
            // tombstone recycling must keep the table usable.
            let k = 100 + round;
            assert_eq!(m.insert(k, k * 2), None);
            assert_eq!(m.get(k), Some(k * 2));
            assert_eq!(m.remove(k), Some(k * 2));
        }
    }

    #[test]
    fn parallel_insert_then_lookup() {
        let n = 100_000u64;
        let m = ConcurrentMap::with_capacity(n as usize);
        parallel_for(n as usize, |i| {
            m.insert(i as u64, i as u64 + 7);
        });
        parallel_for(n as usize, |i| {
            assert_eq!(m.get(i as u64), Some(i as u64 + 7));
        });
    }

    #[test]
    fn parallel_remove_half() {
        let n = 50_000u64;
        let m = ConcurrentMap::with_capacity(n as usize);
        parallel_for(n as usize, |i| {
            m.insert(i as u64, 1);
        });
        parallel_for(n as usize, |i| {
            if i % 2 == 0 {
                m.remove(i as u64);
            }
        });
        parallel_for(n as usize, |i| {
            let expect = if i % 2 == 0 { None } else { Some(1) };
            assert_eq!(m.get(i as u64), expect, "key {i}");
        });
    }

    #[test]
    fn racing_inserts_same_key_last_writer_wins() {
        let m = ConcurrentMap::with_capacity(16);
        parallel_for(10_000, |i| {
            m.insert(5, (i % 3 + 1) as u64);
        });
        let v = m.get(5).unwrap();
        assert!((1..=3).contains(&v));
    }

    #[test]
    fn edge_key_symmetric() {
        assert_eq!(edge_key(3, 9), edge_key(9, 3));
        assert_ne!(edge_key(3, 9), edge_key(3, 10));
    }

    #[test]
    fn entries_snapshot() {
        let m = ConcurrentMap::with_capacity(10);
        m.insert(1, 10);
        m.insert(2, 20);
        m.remove(1);
        let mut e = m.entries();
        e.sort_unstable();
        assert_eq!(e, vec![(2, 20)]);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overfull_panics() {
        let m = ConcurrentMap::with_capacity(4);
        for i in 0..100 {
            m.insert(i, 1);
        }
    }
}
