//! A tiny lock-free set of at most 3 `u32` slots.
//!
//! RC-tree vertices accumulate at most 3 "hanging" unary clusters (one per
//! adjacency slot in a degree-≤3 forest). During a contraction round, up to
//! two different neighbors may rake into the same vertex concurrently, so
//! membership updates must be atomic; reads happen in later rounds (after a
//! fork-join barrier), so a snapshot view is race-free at its use sites.

use crate::NONE_U32;
use std::sync::atomic::{AtomicU32, Ordering};

/// Number of slots — the maximum degree of a ternarized forest.
pub const SLOTS: usize = 3;

/// Fixed 3-slot atomic set of `u32` values (`NONE_U32` marks empty slots).
#[derive(Debug)]
pub struct AtomicSlots3 {
    slots: [AtomicU32; SLOTS],
}

impl Default for AtomicSlots3 {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for AtomicSlots3 {
    fn clone(&self) -> Self {
        let out = Self::new();
        for i in 0..SLOTS {
            out.slots[i].store(self.slots[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out
    }
}

impl AtomicSlots3 {
    /// An empty set.
    pub fn new() -> Self {
        Self {
            slots: [
                AtomicU32::new(NONE_U32),
                AtomicU32::new(NONE_U32),
                AtomicU32::new(NONE_U32),
            ],
        }
    }

    /// Insert `x` (must not be `NONE_U32`, must not already be present).
    /// Panics when all slots are occupied — that would violate the
    /// degree-≤3 invariant upstream.
    pub fn insert(&self, x: u32) {
        debug_assert_ne!(x, NONE_U32);
        for s in &self.slots {
            if s.compare_exchange(NONE_U32, x, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
        panic!("AtomicSlots3 overflow: degree-3 invariant violated");
    }

    /// Remove `x` if present; returns whether it was found.
    pub fn remove(&self, x: u32) -> bool {
        debug_assert_ne!(x, NONE_U32);
        for s in &self.slots {
            if s.compare_exchange(x, NONE_U32, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// Snapshot of current occupants (quiescent reads).
    pub fn snapshot(&self) -> crate::inline::InlineVec<u32, SLOTS> {
        let mut out = crate::inline::InlineVec::new();
        for s in &self.slots {
            let v = s.load(Ordering::Acquire);
            if v != NONE_U32 {
                out.push(v);
            }
        }
        out
    }

    /// True when no slot is occupied (quiescent reads).
    pub fn is_empty(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.load(Ordering::Acquire) == NONE_U32)
    }

    /// Remove every occupant.
    pub fn clear(&self) {
        for s in &self.slots {
            s.store(NONE_U32, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for;

    #[test]
    fn insert_remove_snapshot() {
        let s = AtomicSlots3::new();
        assert!(s.is_empty());
        s.insert(5);
        s.insert(9);
        let mut snap: Vec<u32> = s.snapshot().iter().collect();
        snap.sort_unstable();
        assert_eq!(snap, vec![5, 9]);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.snapshot().len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn four_inserts_panic() {
        let s = AtomicSlots3::new();
        for i in 1..=4 {
            s.insert(i);
        }
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        // Many sets, 3 concurrent inserters each.
        let sets: Vec<AtomicSlots3> = (0..1000).map(|_| AtomicSlots3::new()).collect();
        parallel_for(3000, |i| {
            let set = &sets[i / 3];
            set.insert((i % 3 + 1) as u32);
        });
        for set in &sets {
            assert_eq!(set.snapshot().len(), 3);
        }
    }

    #[test]
    fn concurrent_insert_and_remove_distinct() {
        let sets: Vec<AtomicSlots3> = (0..500).map(|_| AtomicSlots3::new()).collect();
        for s in &sets {
            s.insert(1);
            s.insert(2);
        }
        parallel_for(1000, |i| {
            let set = &sets[i / 2];
            if i % 2 == 0 {
                set.remove(1);
            } else {
                set.insert(3);
            }
        });
        for set in &sets {
            let mut snap: Vec<u32> = set.snapshot().iter().collect();
            snap.sort_unstable();
            assert_eq!(snap, vec![2, 3]);
        }
    }
}
