//! Parallel list contraction (§2.1, used by ternarization §4).
//!
//! Given doubly linked lists stored as `next`/`prev` index arrays, splice
//! out a set of marked nodes in parallel. Each round selects an independent
//! set of marked nodes by random priorities (a marked node splices when its
//! priority is a strict local maximum among marked neighbors), so adjacent
//! marked nodes never splice simultaneously. Expected `O(m)` work and
//! `O(log m)` rounds w.h.p. for `m` marked nodes — the bounds of
//! Cole–Vishkin-style contraction used in the paper.

use crate::rng::priority;
use crate::slice::ParSlice;
use crate::{parallel_for, NONE_U32};

/// Splice every node in `marked` out of its doubly linked list.
///
/// `next[v]` / `prev[v]` use [`NONE_U32`] as the end-of-list sentinel.
/// After the call, for each marked `v`, its former neighbors are linked to
/// each other and `next[v] == prev[v] == NONE_U32`.
///
/// Marked nodes must be distinct. Unmarked nodes' links are only modified
/// where they pointed at a spliced node.
pub fn splice_out(next: &mut [u32], prev: &mut [u32], marked: &[u32], seed: u64) {
    debug_assert_eq!(next.len(), prev.len());
    let mut live: Vec<u32> = marked.to_vec();
    let mut round = 0u32;
    while !live.is_empty() {
        // is_live[v] tells whether v still awaits splicing this round. We
        // need O(1) membership; use a stamped lookup built per call.
        // For simplicity and predictable memory use we re-derive liveness
        // from the links: a node is "still marked" iff it appears in `live`.
        // Since `live` shrinks geometrically, carrying a boolean stamp map
        // costs O(n) once.
        round += 1;
        let stamp = round;
        let _ = stamp;

        let n_live = live.len();
        let mut mark_flag = vec![false; next.len()];
        for &v in &live {
            mark_flag[v as usize] = true;
        }
        // Select the independent set: v splices when its priority beats all
        // still-marked neighbors'.
        let selected: Vec<u32> = {
            let mark_flag = &mark_flag;
            let next_ro: &[u32] = next;
            let prev_ro: &[u32] = prev;
            let sel: Vec<bool> = (0..n_live)
                .map(|i| {
                    let v = live[i];
                    let p = priority(seed, v, round);
                    let beats = |u: u32| {
                        u == NONE_U32 || !mark_flag[u as usize] || priority(seed, u, round) < p
                    };
                    beats(next_ro[v as usize]) && beats(prev_ro[v as usize])
                })
                .collect();
            live.iter()
                .zip(&sel)
                .filter(|(_, &s)| s)
                .map(|(&v, _)| v)
                .collect()
        };
        debug_assert!(!selected.is_empty(), "IS selection must make progress");
        // Splice the independent set: neighbors of distinct selected nodes
        // are distinct (independence), so writes are disjoint.
        {
            let pn = ParSlice::new(next);
            let pp = ParSlice::new(prev);
            parallel_for(selected.len(), |i| {
                let v = selected[i] as usize;
                // SAFETY: `selected` is an independent set in the list:
                // each neighbor cell is written by at most one node.
                unsafe {
                    let nx = pn.read(v);
                    let pv = pp.read(v);
                    if pv != NONE_U32 {
                        pn.write(pv as usize, nx);
                    }
                    if nx != NONE_U32 {
                        pp.write(nx as usize, pv);
                    }
                    pn.write(v, NONE_U32);
                    pp.write(v, NONE_U32);
                }
            });
        }
        let selected_set: Vec<bool> = {
            let mut s = vec![false; next.len()];
            for &v in &selected {
                s[v as usize] = true;
            }
            s
        };
        live.retain(|&v| !selected_set[v as usize]);
    }
}

/// Build `next`/`prev` arrays for a set of disjoint chains given as vertex
/// sequences. Convenience for tests and the ternarization layer.
pub fn build_lists(n: usize, chains: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut next = vec![NONE_U32; n];
    let mut prev = vec![NONE_U32; n];
    for chain in chains {
        for w in chain.windows(2) {
            next[w[0] as usize] = w[1];
            prev[w[1] as usize] = w[0];
        }
    }
    (next, prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(next: &[u32], start: u32) -> Vec<u32> {
        let mut out = vec![start];
        let mut cur = start;
        while next[cur as usize] != NONE_U32 {
            cur = next[cur as usize];
            out.push(cur);
            assert!(out.len() <= next.len(), "cycle detected");
        }
        out
    }

    #[test]
    fn splice_single_node() {
        let (mut next, mut prev) = build_lists(3, &[vec![0, 1, 2]]);
        splice_out(&mut next, &mut prev, &[1], 42);
        assert_eq!(walk(&next, 0), vec![0, 2]);
        assert_eq!(prev[2], 0);
        assert_eq!(next[1], NONE_U32);
        assert_eq!(prev[1], NONE_U32);
    }

    #[test]
    fn splice_adjacent_run() {
        let chain: Vec<u32> = (0..10).collect();
        let (mut next, mut prev) = build_lists(10, &[chain]);
        splice_out(&mut next, &mut prev, &[3, 4, 5, 6], 7);
        assert_eq!(walk(&next, 0), vec![0, 1, 2, 7, 8, 9]);
        assert_eq!(prev[7], 2);
    }

    #[test]
    fn splice_endpoints() {
        let chain: Vec<u32> = (0..6).collect();
        let (mut next, mut prev) = build_lists(6, &[chain]);
        splice_out(&mut next, &mut prev, &[0, 5], 19);
        assert_eq!(walk(&next, 1), vec![1, 2, 3, 4]);
        assert_eq!(prev[1], NONE_U32);
    }

    #[test]
    fn splice_entire_list() {
        let chain: Vec<u32> = (0..8).collect();
        let (mut next, mut prev) = build_lists(8, &[chain]);
        splice_out(&mut next, &mut prev, &(0..8).collect::<Vec<_>>(), 3);
        assert!(next.iter().all(|&x| x == NONE_U32));
        assert!(prev.iter().all(|&x| x == NONE_U32));
    }

    #[test]
    fn splice_large_random_matches_reference() {
        use crate::rng::SplitMix64;
        let n = 50_000u32;
        let chain: Vec<u32> = (0..n).collect();
        let (mut next, mut prev) = build_lists(n as usize, std::slice::from_ref(&chain));
        let mut rng = SplitMix64::new(1234);
        let marked: Vec<u32> = (0..n).filter(|_| rng.next_f64() < 0.4).collect();
        splice_out(&mut next, &mut prev, &marked, 99);

        let marked_set: Vec<bool> = {
            let mut s = vec![false; n as usize];
            for &v in &marked {
                s[v as usize] = true;
            }
            s
        };
        let expect: Vec<u32> = chain
            .iter()
            .copied()
            .filter(|&v| !marked_set[v as usize])
            .collect();
        if expect.is_empty() {
            assert!(next.iter().all(|&x| x == NONE_U32));
        } else {
            assert_eq!(walk(&next, expect[0]), expect);
        }
    }

    #[test]
    fn multiple_chains_stay_separate() {
        let (mut next, mut prev) = build_lists(9, &[vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]]);
        splice_out(&mut next, &mut prev, &[1, 4, 7], 5);
        assert_eq!(walk(&next, 0), vec![0, 2]);
        assert_eq!(walk(&next, 3), vec![3, 5]);
        assert_eq!(walk(&next, 6), vec![6, 8]);
    }
}
