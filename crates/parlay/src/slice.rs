//! Shared-slice helpers for disjoint parallel writes.
//!
//! PRAM-style algorithms constantly scatter to distinct indices of a shared
//! array from many threads. Rust's safe APIs cannot express "these writes
//! are disjoint", so we provide one carefully audited escape hatch, plus an
//! allocator for uninitialized `Copy` buffers that are fully overwritten.

use std::cell::UnsafeCell;

/// A slice wrapper allowing concurrent writes to *disjoint* indices.
///
/// # Safety contract
/// Callers must guarantee that no index is written by two threads in the
/// same parallel phase and that reads of an index do not race with a write
/// to the same index. Debug builds do not check this; algorithms using it
/// must be structured so disjointness is evident (e.g. scatter by unique
/// destination from a prefix sum).
pub struct ParSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send + Sync> Sync for ParSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for ParSlice<'_, T> {}

impl<'a, T> ParSlice<'a, T> {
    /// Wrap a mutable slice for phase-disjoint parallel access.
    pub fn new(data: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` guarantees exclusive access; `UnsafeCell<T>`
        // has the same layout as `T`.
        let data = unsafe { &*(data as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    /// No other thread may access index `i` during this parallel phase.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        unsafe { *self.data[i].get() = value }
    }

    /// Read the value at `i`.
    ///
    /// # Safety
    /// No other thread may be writing index `i` during this parallel phase.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        unsafe { *self.data[i].get() }
    }

    /// Get a mutable reference to element `i`.
    ///
    /// # Safety
    /// Same disjointness contract as [`ParSlice::write`].
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        unsafe { &mut *self.data[i].get() }
    }
}

/// Allocate a `Vec<T>` of length `n` whose contents are unspecified bit
/// patterns. Only valid for `T: Copy` (no drop obligations) and only sound
/// to *read* after every index has been written.
///
/// This is the standard "result buffer for a scatter" allocation; using
/// `vec![T::default(); n]` instead would add an O(n) initialization pass,
/// which shows up in scan/pack benchmarks.
pub fn uninit_copy_vec<T: Copy>(n: usize) -> Vec<T> {
    let mut v = Vec::with_capacity(n);
    // SAFETY: capacity reserved above; `T: Copy` means no drop is run on
    // the uninitialized contents, and callers must overwrite before reading.
    #[allow(clippy::uninit_vec)]
    unsafe {
        v.set_len(n);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for;

    #[test]
    fn disjoint_parallel_writes() {
        let mut buf = vec![0u64; 100_000];
        {
            let ps = ParSlice::new(&mut buf);
            parallel_for(100_000, |i| unsafe { ps.write(i, i as u64 * 3) });
        }
        assert!(buf.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn uninit_vec_has_len() {
        let mut v: Vec<u32> = uninit_copy_vec(1000);
        assert_eq!(v.len(), 1000);
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = i as u32;
        }
        assert_eq!(v[999], 999);
    }

    #[test]
    fn par_slice_read_after_phase() {
        let mut buf = vec![1u32; 64];
        let ps = ParSlice::new(&mut buf);
        unsafe {
            ps.write(3, 7);
            assert_eq!(ps.read(3), 7);
            *ps.get_mut(4) = 9;
            assert_eq!(ps.read(4), 9);
        }
    }
}
