//! Fixed-capacity inline vectors for `Copy` types.
//!
//! RC-tree level records hold at most 3 adjacency entries (bounded-degree
//! forests) and clusters hold at most 3 children. Heap-allocating a `Vec`
//! per record would dominate memory traffic, so we use a tiny inline
//! array + length, the moral equivalent of `arrayvec` specialized to
//! `Copy` payloads (kept dependency-free on purpose).

/// A stack-allocated vector of at most `N` `Copy` elements.
#[derive(Clone, Copy, Debug)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    items: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self {
            items: [T::default(); N],
            len: 0,
        }
    }
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a slice; panics if the slice is longer than `N`.
    pub fn from_slice(xs: &[T]) -> Self {
        assert!(xs.len() <= N, "InlineVec overflow: {} > {}", xs.len(), N);
        let mut v = Self::new();
        for &x in xs {
            v.push(x);
        }
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append an element; panics when full (capacity `N`).
    #[inline]
    pub fn push(&mut self, x: T) {
        assert!((self.len as usize) < N, "InlineVec overflow (capacity {N})");
        self.items[self.len as usize] = x;
        self.len += 1;
    }

    /// Try to append; returns `false` when full.
    #[inline]
    pub fn try_push(&mut self, x: T) -> bool {
        if (self.len as usize) < N {
            self.items[self.len as usize] = x;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Remove and return the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            Some(self.items[self.len as usize])
        }
    }

    /// Remove the element at `i` (order *not* preserved: swap-remove).
    #[inline]
    pub fn swap_remove(&mut self, i: usize) -> T {
        let n = self.len();
        assert!(i < n);
        let out = self.items[i];
        self.items[i] = self.items[n - 1];
        self.len -= 1;
        out
    }

    /// Remove the first occurrence of an element matching `pred`;
    /// returns it if found (order not preserved).
    pub fn remove_first<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Option<T> {
        (0..self.len())
            .find(|&i| pred(&self.items[i]))
            .map(|i| self.swap_remove(i))
    }

    /// Clear all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }

    /// View as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items[..self.len as usize]
    }

    /// Iterate over elements by value.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.as_slice().iter().copied()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Index<usize> for InlineVec<T, N> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T: Copy + Default, const N: usize> std::ops::IndexMut<usize> for InlineVec<T, N> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.as_mut_slice()[i]
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    type V3 = InlineVec<u32, 3>;

    #[test]
    fn push_pop_len() {
        let mut v = V3::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut v = V3::new();
        for i in 0..4 {
            v.push(i);
        }
    }

    #[test]
    fn try_push_reports_full() {
        let mut v = V3::new();
        assert!(v.try_push(1));
        assert!(v.try_push(2));
        assert!(v.try_push(3));
        assert!(!v.try_push(4));
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn swap_remove_semantics() {
        let mut v = V3::from_slice(&[10, 20, 30]);
        assert_eq!(v.swap_remove(0), 10);
        assert_eq!(v.as_slice(), &[30, 20]);
    }

    #[test]
    fn remove_first_finds_and_removes() {
        let mut v = V3::from_slice(&[5, 7, 9]);
        assert_eq!(v.remove_first(|&x| x == 7), Some(7));
        assert_eq!(v.len(), 2);
        assert_eq!(v.remove_first(|&x| x == 7), None);
    }

    #[test]
    fn equality_ignores_slack() {
        let mut a = V3::from_slice(&[1, 2, 3]);
        a.pop();
        let b = V3::from_slice(&[1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn indexing() {
        let mut v = V3::from_slice(&[4, 5]);
        v[1] = 6;
        assert_eq!(v[0], 4);
        assert_eq!(v[1], 6);
    }
}
