//! Property-based tests for the parallel substrate.
//!
//! Seeded randomized trials (the workspace has no registry access, so no
//! `proptest`; `SplitMix64`-driven generation is the repo-wide idiom). Each
//! property runs many trials over randomized sizes and contents.

use rc_parlay::hashtable::ConcurrentMap;
use rc_parlay::list::{build_lists, splice_out};
use rc_parlay::pack::{filter, flatten, pack_index};
use rc_parlay::rng::SplitMix64;
use rc_parlay::scan::{reduce, scan_exclusive, scan_exclusive_u64};
use rc_parlay::semisort::group_by_key;
use rc_parlay::shuffle::random_permutation;
use rc_parlay::sort::counting_sort_by;
use rc_parlay::NONE_U32;
use std::collections::{HashMap, HashSet};

const TRIALS: usize = 24;

fn vec_u64(rng: &mut SplitMix64, max_len: u64, below: u64) -> Vec<u64> {
    let len = rng.next_below(max_len) as usize;
    (0..len).map(|_| rng.next_below(below)).collect()
}

#[test]
fn scan_matches_sequential() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..TRIALS {
        let xs = vec_u64(&mut rng, 5_000, 1_000);
        let mut par = xs.clone();
        let total = scan_exclusive_u64(&mut par);
        let mut acc = 0u64;
        let mut seq = Vec::with_capacity(xs.len());
        for &x in &xs {
            seq.push(acc);
            acc += x;
        }
        assert_eq!(total, acc);
        assert_eq!(par, seq);
    }
}

#[test]
fn scan_max_is_running_max() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..TRIALS {
        let len = 1 + rng.next_below(2_000) as usize;
        let xs: Vec<i64> = (0..len)
            .map(|_| rng.next_below(2_000) as i64 - 1_000)
            .collect();
        let mut par = xs.clone();
        let total = scan_exclusive(&mut par, i64::MIN, |a, b| a.max(b));
        assert_eq!(total, xs.iter().copied().max().unwrap());
        let mut m = i64::MIN;
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(par[i], m);
            m = m.max(x);
        }
    }
}

#[test]
fn reduce_equals_fold() {
    let mut rng = SplitMix64::new(0xC0DE);
    for _ in 0..TRIALS {
        let xs = vec_u64(&mut rng, 3_000, 100);
        assert_eq!(reduce(&xs, 0, |a, b| a + b), xs.iter().sum::<u64>());
    }
}

#[test]
fn pack_and_filter_agree() {
    let mut rng = SplitMix64::new(0xD1CE);
    for _ in 0..TRIALS {
        let len = rng.next_below(3_000) as usize;
        let xs: Vec<u32> = (0..len).map(|_| rng.next_below(50) as u32).collect();
        let idx = pack_index(xs.len(), |i| xs[i].is_multiple_of(2));
        let manual: Vec<u32> = (0..xs.len() as u32)
            .filter(|&i| xs[i as usize].is_multiple_of(2))
            .collect();
        assert_eq!(idx, manual);
        let f = filter(&xs, |&x| x > 25);
        let manual2: Vec<u32> = xs.iter().copied().filter(|&x| x > 25).collect();
        assert_eq!(f, manual2);
    }
}

#[test]
fn flatten_is_concat() {
    let mut rng = SplitMix64::new(0xF1A7);
    for _ in 0..TRIALS {
        let outer = rng.next_below(200) as usize;
        let nested: Vec<Vec<u32>> = (0..outer)
            .map(|_| {
                let inner = rng.next_below(10) as usize;
                (0..inner).map(|_| rng.next_below(100) as u32).collect()
            })
            .collect();
        let got = flatten(&nested);
        let expect: Vec<u32> = nested.iter().flatten().copied().collect();
        assert_eq!(got, expect);
    }
}

#[test]
fn counting_sort_sorts_stably() {
    let mut rng = SplitMix64::new(0x5027);
    for _ in 0..TRIALS {
        let len = rng.next_below(3_000) as usize;
        let tagged: Vec<(u32, u32)> = (0..len)
            .map(|i| (rng.next_below(16) as u32, i as u32))
            .collect();
        let (sorted, offs) = counting_sort_by(&tagged, 16, |&(k, _)| k as usize);
        let mut expect = tagged.clone();
        expect.sort_by_key(|&(k, i)| (k, i));
        assert_eq!(sorted, expect);
        assert_eq!(offs[16] as usize, len);
    }
}

#[test]
fn group_by_is_partition() {
    let mut rng = SplitMix64::new(0x6209);
    for trial in 0..TRIALS {
        let len = rng.next_below(2_000) as usize;
        let pairs: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.next_below(64), rng.next_below(10_000) as u32))
            .collect();
        let (sorted, ranges) = group_by_key(&pairs, 99 + trial as u64);
        let mut re: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(lo, hi) in &ranges {
            let k = sorted[lo as usize].0;
            assert!(!re.contains_key(&k), "key {k} split across groups");
            re.insert(
                k,
                sorted[lo as usize..hi as usize]
                    .iter()
                    .map(|&(_, v)| v)
                    .collect(),
            );
        }
        let mut want: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(k, v) in &pairs {
            want.entry(k).or_default().push(v);
        }
        for (k, mut vs) in want {
            let mut got = re.remove(&k).unwrap();
            got.sort_unstable();
            vs.sort_unstable();
            assert_eq!(got, vs);
        }
        assert!(re.is_empty());
    }
}

#[test]
fn permutation_is_bijective() {
    let mut rng = SplitMix64::new(0x9e37);
    for _ in 0..TRIALS {
        let n = rng.next_below(5_000) as usize;
        let seed = rng.next_below(1_000);
        let p = random_permutation(n, seed);
        let set: HashSet<u32> = p.iter().copied().collect();
        assert_eq!(set.len(), n);
        assert!(p.iter().all(|&x| (x as usize) < n));
    }
}

#[test]
fn hash_map_semantics() {
    let mut rng = SplitMix64::new(0x11A5);
    for _ in 0..TRIALS {
        let nops = rng.next_below(500) as usize;
        let m = ConcurrentMap::with_capacity(256);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for _ in 0..nops {
            let k = rng.next_below(50);
            let v = rng.next_below(100);
            if v.is_multiple_of(5) {
                assert_eq!(m.remove(k), reference.remove(&k));
            } else {
                assert_eq!(m.insert(k, v), reference.insert(k, v));
            }
        }
        for k in 0..50u64 {
            assert_eq!(m.get(k), reference.get(&k).copied());
        }
    }
}

#[test]
fn splice_preserves_survivors() {
    let mut rng = SplitMix64::new(0x571C);
    for _ in 0..TRIALS {
        let n = 2 + rng.next_below(298) as u32;
        let marks: Vec<bool> = (0..n).map(|_| rng.next_f64() < 0.5).collect();
        let seed = rng.next_below(100);
        let chain: Vec<u32> = (0..n).collect();
        let (mut next, mut prev) = build_lists(n as usize, std::slice::from_ref(&chain));
        let marked: Vec<u32> = (0..n).filter(|&v| marks[v as usize]).collect();
        splice_out(&mut next, &mut prev, &marked, seed);
        let survivors: Vec<u32> = (0..n).filter(|&v| !marks[v as usize]).collect();
        if let Some(&first) = survivors.first() {
            let mut walked = vec![first];
            let mut cur = first;
            while next[cur as usize] != NONE_U32 {
                cur = next[cur as usize];
                walked.push(cur);
            }
            assert_eq!(walked, survivors);
        }
    }
}
