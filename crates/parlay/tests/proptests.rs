//! Property-based tests for the parallel substrate.

use proptest::prelude::*;
use rc_parlay::hashtable::ConcurrentMap;
use rc_parlay::list::{build_lists, splice_out};
use rc_parlay::pack::{filter, flatten, pack_index};
use rc_parlay::scan::{reduce, scan_exclusive, scan_exclusive_u64};
use rc_parlay::semisort::group_by_key;
use rc_parlay::shuffle::random_permutation;
use rc_parlay::sort::counting_sort_by;
use rc_parlay::NONE_U32;
use std::collections::{HashMap, HashSet};

proptest! {
    #[test]
    fn scan_matches_sequential(xs in prop::collection::vec(0u64..1_000, 0..5_000)) {
        let mut par = xs.clone();
        let total = scan_exclusive_u64(&mut par);
        let mut acc = 0u64;
        let mut seq = Vec::with_capacity(xs.len());
        for &x in &xs {
            seq.push(acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn scan_max_is_running_max(xs in prop::collection::vec(-1000i64..1000, 1..2_000)) {
        let mut par = xs.clone();
        let total = scan_exclusive(&mut par, i64::MIN, |a, b| a.max(b));
        prop_assert_eq!(total, xs.iter().copied().max().unwrap());
        let mut m = i64::MIN;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(par[i], m);
            m = m.max(x);
        }
    }

    #[test]
    fn reduce_equals_fold(xs in prop::collection::vec(0u64..100, 0..3_000)) {
        prop_assert_eq!(reduce(&xs, 0, |a, b| a + b), xs.iter().sum::<u64>());
    }

    #[test]
    fn pack_and_filter_agree(xs in prop::collection::vec(0u32..50, 0..3_000)) {
        let idx = pack_index(xs.len(), |i| xs[i] % 2 == 0);
        let manual: Vec<u32> = (0..xs.len() as u32).filter(|&i| xs[i as usize] % 2 == 0).collect();
        prop_assert_eq!(idx, manual);
        let f = filter(&xs, |&x| x > 25);
        let manual2: Vec<u32> = xs.iter().copied().filter(|&x| x > 25).collect();
        prop_assert_eq!(f, manual2);
    }

    #[test]
    fn flatten_is_concat(nested in prop::collection::vec(prop::collection::vec(0u32..100, 0..10), 0..200)) {
        let got = flatten(&nested);
        let expect: Vec<u32> = nested.iter().flatten().copied().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn counting_sort_sorts_stably(xs in prop::collection::vec(0u32..16, 0..3_000)) {
        let tagged: Vec<(u32, u32)> = xs.iter().enumerate().map(|(i, &x)| (x, i as u32)).collect();
        let (sorted, offs) = counting_sort_by(&tagged, 16, |&(k, _)| k as usize);
        let mut expect = tagged.clone();
        expect.sort_by_key(|&(k, i)| (k, i));
        prop_assert_eq!(sorted, expect);
        prop_assert_eq!(offs[16] as usize, xs.len());
    }

    #[test]
    fn group_by_is_partition(pairs in prop::collection::vec((0u64..64, 0u32..10_000), 0..2_000)) {
        let (sorted, ranges) = group_by_key(&pairs, 99);
        let mut re: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(lo, hi) in &ranges {
            let k = sorted[lo as usize].0;
            prop_assert!(!re.contains_key(&k));
            re.insert(k, sorted[lo as usize..hi as usize].iter().map(|&(_, v)| v).collect());
        }
        let mut want: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(k, v) in &pairs {
            want.entry(k).or_default().push(v);
        }
        for (k, mut vs) in want {
            let mut got = re.remove(&k).unwrap();
            got.sort_unstable();
            vs.sort_unstable();
            prop_assert_eq!(got, vs);
        }
        prop_assert!(re.is_empty());
    }

    #[test]
    fn permutation_is_bijective(n in 0usize..5_000, seed in 0u64..1_000) {
        let p = random_permutation(n, seed);
        let set: HashSet<u32> = p.iter().copied().collect();
        prop_assert_eq!(set.len(), n);
        prop_assert!(p.iter().all(|&x| (x as usize) < n));
    }

    #[test]
    fn hash_map_semantics(ops in prop::collection::vec((0u64..50, 0u64..100), 0..500)) {
        let m = ConcurrentMap::with_capacity(256);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &ops {
            if v % 5 == 0 {
                prop_assert_eq!(m.remove(k), reference.remove(&k));
            } else {
                prop_assert_eq!(m.insert(k, v), reference.insert(k, v));
            }
        }
        for k in 0..50u64 {
            prop_assert_eq!(m.get(k), reference.get(&k).copied());
        }
    }

    #[test]
    fn splice_preserves_survivors(
        n in 2u32..300,
        marks in prop::collection::vec(any::<bool>(), 300),
        seed in 0u64..100,
    ) {
        let chain: Vec<u32> = (0..n).collect();
        let (mut next, mut prev) = build_lists(n as usize, &[chain.clone()]);
        let marked: Vec<u32> = (0..n).filter(|&v| marks[v as usize]).collect();
        splice_out(&mut next, &mut prev, &marked, seed);
        let survivors: Vec<u32> = (0..n).filter(|&v| !marks[v as usize]).collect();
        if let Some(&first) = survivors.first() {
            let mut walked = vec![first];
            let mut cur = first;
            while next[cur as usize] != NONE_U32 {
                cur = next[cur as usize];
                walked.push(cur);
            }
            prop_assert_eq!(walked, survivors);
        }
    }
}
