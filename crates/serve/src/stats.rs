//! Per-epoch and aggregate serving statistics.
//!
//! The latency histogram itself now lives in `rc-obs` (it is shared by
//! the store and the flight recorder); this module re-exports it under
//! the historical serve names and keeps the serve-specific stats types.

/// The shared quarter-octave histogram, re-exported under the name this
/// crate has always used.
pub use rc_obs::Histogram as LatencyHistogram;
/// Percentile snapshot of a [`LatencyHistogram`].
pub use rc_obs::HistogramSummary as LatencySummary;

/// Instrumentation of one drained epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    /// Epoch ordinal (1-based).
    pub epoch: u64,
    /// Requests drained into this epoch.
    pub batch: usize,
    /// Queue depth observed at drain time (before capping).
    pub queue_depth: usize,
    /// Update requests (including rejected ones).
    pub updates: usize,
    /// Query requests.
    pub queries: usize,
    /// Sub-batch flushes forced by in-epoch conflicts (1 = fully
    /// coalesced update phase).
    pub flushes: usize,
    /// Wall time of the update phase (admission + commit + WAL append).
    pub update_ns: u64,
    /// True wall time of the query fan-out, measured on the thread that
    /// ran it — the executor thread in pipelined mode, the worker under
    /// strict alternation. (Before rc-obs this was mis-accounted on the
    /// worker that handed the job off.)
    pub query_ns: u64,
    /// Pipelined mode: dispatch-to-pickup latency of the query job on
    /// the executor thread (0 when queries ran inline).
    pub handoff_ns: u64,
    /// Forest version stamp after the epoch committed.
    pub version_after: u64,
    /// MVCC version the epoch's queries observed: the last state-changing
    /// epoch in pipelined mode (`<=` this epoch), the epoch itself under
    /// strict alternation.
    pub snapshot_version: u64,
}

/// Aggregate server statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Epochs committed.
    pub epochs: u64,
    /// Requests served.
    pub ops: u64,
    /// Update requests served.
    pub updates: u64,
    /// Query requests served.
    pub queries: u64,
    /// Total sub-batch flushes across all epochs.
    pub flushes: u64,
    /// Mean epoch batch size.
    pub mean_batch: f64,
    /// Largest epoch batch.
    pub max_batch: usize,
    /// End-to-end request latency (submit → response).
    pub latency: LatencySummary,
    /// Request traces captured by the deterministic 1-in-N sampler.
    pub traces_sampled: u64,
    /// Request traces captured because end-to-end latency exceeded the
    /// slow threshold (independent of sampling).
    pub traces_slow: u64,
}
