//! Shared read-only query execution: one batch call per family, over an
//! `&`-forest.
//!
//! Both halves of the pipelined coalescer run queries through this module
//! — the epoch worker (inline, strict-alternation mode) and the query
//! executor thread (pipelined mode, against a published immutable
//! version) — as do client-held [`crate::Snapshot`]s. Everything here
//! takes the forest by shared reference: the RC forest's batch query
//! entry points are `&self` (scratch comes from an internal pool), which
//! is exactly what lets a non-owning executor sweep version E while the
//! worker mutates the live forest for epoch E+1.

use crate::agg::ServeForest;
use crate::request::{CptResult, Request, Response};
use rc_core::NO_VERTEX;
use std::time::Instant;

/// Per-family wall time and query counts of one `answer_requests_timed`
/// fan-out, indexed like [`rc_obs::FAMILY_NAMES`] (conn, repr, path,
/// subtree, lca, bottleneck, near, cpt).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FamilyTimings {
    pub(crate) ns: [u64; 8],
    pub(crate) counts: [u32; 8],
}

/// Span names for the per-family query spans on request traces, indexed
/// like [`rc_obs::FAMILY_NAMES`].
pub(crate) const QUERY_SPAN_NAMES: [&str; 8] = [
    "query:conn",
    "query:repr",
    "query:path",
    "query:subtree",
    "query:lca",
    "query:bottleneck",
    "query:near",
    "query:cpt",
];

/// Family index of a query request (per [`rc_obs::FAMILY_NAMES`]);
/// `None` for updates and `DumpTelemetry`.
pub(crate) fn family_index(req: &Request) -> Option<usize> {
    match req {
        Request::Connected { .. } => Some(0),
        Request::Representative { .. } => Some(1),
        Request::PathSum { .. } => Some(2),
        Request::SubtreeSum { .. } => Some(3),
        Request::Lca { .. } => Some(4),
        Request::Bottleneck { .. } => Some(5),
        Request::NearestMarked { .. } => Some(6),
        Request::Cpt { .. } => Some(7),
        _ => None,
    }
}

/// Answer a slice of requests against `forest`, grouping queries by
/// family into one batch call each. Update requests answer
/// [`Response::Rejected`]: this executor is read-only by construction
/// (the coalescer never routes updates here; snapshots may).
pub(crate) fn answer_requests(forest: &ServeForest, requests: &[&Request]) -> Vec<Response> {
    answer_requests_timed(forest, requests).0
}

/// Public read-only query fan-out over a caller-owned forest: the same
/// one-batch-call-per-family execution the coalescer and [`crate::Snapshot`]s
/// use, for callers that hold a forest outside any server — replication
/// followers answer staleness-bounded reads against their replica
/// through this. Update requests answer [`Response::Rejected`].
pub fn answer_read_only(forest: &ServeForest, requests: &[Request]) -> Vec<Response> {
    let refs: Vec<&Request> = requests.iter().collect();
    answer_requests(forest, &refs)
}

/// [`answer_requests`] plus per-family batch-call timings for the
/// flight recorder.
pub(crate) fn answer_requests_timed(
    forest: &ServeForest,
    requests: &[&Request],
) -> (Vec<Response>, FamilyTimings) {
    let mut fam = FamilyTimings::default();
    let mut responses: Vec<Option<Response>> = vec![None; requests.len()];

    let mut conn: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut repr: (Vec<u32>, Vec<usize>) = Default::default();
    let mut path: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut subtree: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut lca: (Vec<(u32, u32, u32)>, Vec<usize>) = Default::default();
    let mut bottleneck: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut near: (Vec<u32>, Vec<usize>) = Default::default();

    for (i, req) in requests.iter().enumerate() {
        match req {
            Request::Connected { u, v } => {
                conn.0.push((*u, *v));
                conn.1.push(i);
            }
            Request::Representative { v } => {
                repr.0.push(*v);
                repr.1.push(i);
            }
            Request::PathSum { u, v } => {
                path.0.push((*u, *v));
                path.1.push(i);
            }
            Request::SubtreeSum { v, parent } => {
                subtree.0.push((*v, *parent));
                subtree.1.push(i);
            }
            Request::Lca { u, v, r } => {
                lca.0.push((*u, *v, *r));
                lca.1.push(i);
            }
            Request::Bottleneck { u, v } => {
                bottleneck.0.push((*u, *v));
                bottleneck.1.push(i);
            }
            Request::NearestMarked { v } => {
                near.0.push(*v);
                near.1.push(i);
            }
            Request::Cpt { terminals } => {
                let t = Instant::now();
                let cpt = forest.compressed_path_tree(terminals);
                fam.ns[7] += t.elapsed().as_nanos() as u64;
                fam.counts[7] += 1;
                responses[i] = Some(Response::Cpt(CptResult {
                    vertices: cpt.vertices,
                    edges: cpt.edges,
                }));
            }
            _ => responses[i] = Some(Response::Rejected),
        }
    }

    if !conn.0.is_empty() {
        let t = Instant::now();
        let answers = forest.batch_connected(&conn.0);
        fam.ns[0] = t.elapsed().as_nanos() as u64;
        fam.counts[0] = conn.0.len() as u32;
        for (ans, &i) in answers.into_iter().zip(&conn.1) {
            responses[i] = Some(Response::Bool(ans));
        }
    }
    if !repr.0.is_empty() {
        let t = Instant::now();
        let answers = forest.batch_find_representatives(&repr.0);
        fam.ns[1] = t.elapsed().as_nanos() as u64;
        fam.counts[1] = repr.0.len() as u32;
        for (ans, &i) in answers.into_iter().zip(&repr.1) {
            responses[i] = Some(Response::Vertex((ans != NO_VERTEX).then_some(ans)));
        }
    }
    if !path.0.is_empty() {
        let t = Instant::now();
        let answers = forest.batch_path_aggregate(&path.0);
        fam.ns[2] = t.elapsed().as_nanos() as u64;
        fam.counts[2] = path.0.len() as u32;
        for (ans, &i) in answers.into_iter().zip(&path.1) {
            responses[i] = Some(Response::Sum(ans.map(|p| p.sum)));
        }
    }
    if !subtree.0.is_empty() {
        let t = Instant::now();
        let answers = forest.batch_subtree_aggregate(&subtree.0);
        fam.ns[3] = t.elapsed().as_nanos() as u64;
        fam.counts[3] = subtree.0.len() as u32;
        for (ans, &i) in answers.into_iter().zip(&subtree.1) {
            responses[i] = Some(Response::Sum(ans));
        }
    }
    if !lca.0.is_empty() {
        let t = Instant::now();
        let answers = forest.batch_lca(&lca.0);
        fam.ns[4] = t.elapsed().as_nanos() as u64;
        fam.counts[4] = lca.0.len() as u32;
        for (ans, &i) in answers.into_iter().zip(&lca.1) {
            responses[i] = Some(Response::Vertex(ans));
        }
    }
    if !bottleneck.0.is_empty() {
        let t = Instant::now();
        let answers = forest.batch_path_extrema(&bottleneck.0);
        fam.ns[5] = t.elapsed().as_nanos() as u64;
        fam.counts[5] = bottleneck.0.len() as u32;
        for (ans, &i) in answers.into_iter().zip(&bottleneck.1) {
            responses[i] = Some(Response::Extrema(ans));
        }
    }
    if !near.0.is_empty() {
        let t = Instant::now();
        let answers = forest.batch_nearest_marked(&near.0);
        fam.ns[6] = t.elapsed().as_nanos() as u64;
        fam.counts[6] = near.0.len() as u32;
        for (ans, &i) in answers.into_iter().zip(&near.1) {
            responses[i] = Some(Response::Near(ans));
        }
    }

    (
        responses
            .into_iter()
            .map(|r| r.expect("every query family answered"))
            .collect(),
        fam,
    )
}
