//! Shared read-only query execution with adaptive per-family dispatch.
//!
//! Both halves of the pipelined coalescer run queries through this module
//! — the epoch worker (inline, strict-alternation mode) and the query
//! executor thread (pipelined mode, against a published immutable
//! version) — as do client-held [`crate::Snapshot`]s. Everything here
//! takes the forest by shared reference: the RC forest's batch query
//! entry points are `&self` (scratch comes from an internal pool), which
//! is exactly what lets a non-owning executor sweep version E while the
//! worker mutates the live forest for epoch E+1.
//!
//! Each family's fan-out can run on one of three engines over the same
//! forest state (the paper's fig. 11 regimes — see
//! [`rc_obs::CostModel`]):
//!
//! - **batched** — one batch call per family (shared marked-subtree
//!   sweep; wins 2–8x at large k),
//! - **independent** — one parallel task per query, each an independent
//!   `&self` walk (wins at small k, where the sweep setup dominates),
//! - **sequential** — a plain loop of single-query walks (wins at tiny
//!   k, where even task spawning costs more than the queries).
//!
//! The engines are answer-invariant by construction: the single-query
//! entry points share the batch paths' out-of-range/`None` contract and
//! exact aggregate semantics, so a [`Dispatcher`] may pick any engine
//! per family per epoch without changing any response (the
//! serializability oracle replays under every mode).

use crate::agg::ServeForest;
use crate::request::{CptResult, Request, Response};
use rc_core::NO_VERTEX;
use rc_obs::{CostModel, Decision, DispatchMode, Engine};
use rc_parlay::parallel_for;
use rc_parlay::slice::ParSlice;
use std::sync::Arc;
use std::time::Instant;

/// Per-family wall time, query counts, and dispatch decisions of one
/// query fan-out, indexed like [`rc_obs::FAMILY_NAMES`] (conn, repr,
/// path, subtree, lca, bottleneck, near, cpt).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FamilyTimings {
    pub(crate) ns: [u64; 8],
    pub(crate) counts: [u32; 8],
    /// 0 = family did not run, else `1 + Engine::index()`.
    pub(crate) engine: [u8; 8],
    /// Cost-model prediction for the chosen engine, ns (0 = none).
    pub(crate) predicted_ns: [u64; 8],
    /// Bitmask of families whose engine choice was an exploration.
    pub(crate) explored: u8,
}

/// Span names for the per-family query spans on request traces, indexed
/// like [`rc_obs::FAMILY_NAMES`].
pub(crate) const QUERY_SPAN_NAMES: [&str; 8] = [
    "query:conn",
    "query:repr",
    "query:path",
    "query:subtree",
    "query:lca",
    "query:bottleneck",
    "query:near",
    "query:cpt",
];

/// Family index of a query request (per [`rc_obs::FAMILY_NAMES`]);
/// `None` for updates and `DumpTelemetry`.
pub(crate) fn family_index(req: &Request) -> Option<usize> {
    match req {
        Request::Connected { .. } => Some(0),
        Request::Representative { .. } => Some(1),
        Request::PathSum { .. } => Some(2),
        Request::SubtreeSum { .. } => Some(3),
        Request::Lca { .. } => Some(4),
        Request::Bottleneck { .. } => Some(5),
        Request::NearestMarked { .. } => Some(6),
        Request::Cpt { .. } => Some(7),
        _ => None,
    }
}

/// The per-epoch engine picker: a shared [`CostModel`] plus the
/// configured [`DispatchMode`]. Cloned handles (it is all `Arc`s) live
/// on the epoch worker and the query executor; observations feed the
/// model in every mode, so even `AlwaysBatched` servers learn a table
/// they can export or persist.
#[derive(Clone, Debug)]
pub(crate) struct Dispatcher {
    pub(crate) model: Arc<CostModel>,
    pub(crate) mode: DispatchMode,
}

impl Dispatcher {
    pub(crate) fn new(model: Arc<CostModel>, mode: DispatchMode) -> Self {
        Dispatcher { model, mode }
    }

    /// Pick the engine for `k` queries of `family` and count the
    /// dispatch.
    fn decide(&self, family: usize, k: u32) -> Decision {
        let forced = match self.mode {
            DispatchMode::Adaptive => None,
            DispatchMode::AlwaysBatched => Some(Engine::Batched),
            DispatchMode::AlwaysIndependent => Some(Engine::Independent),
            DispatchMode::AlwaysSequential => Some(Engine::Sequential),
        };
        let d = match forced {
            None => self.model.choose(family, k),
            Some(engine) => Decision {
                engine,
                predicted_ns: self.model.predict(family, engine, k).unwrap_or(0),
                explored: false,
            },
        };
        self.model.note_dispatch(family, d.engine, k, d.explored);
        d
    }
}

/// Answer a slice of requests against `forest`, grouping queries by
/// family into one batch call each. Update requests answer
/// [`Response::Rejected`]: this executor is read-only by construction
/// (the coalescer never routes updates here; snapshots may).
pub(crate) fn answer_requests(forest: &ServeForest, requests: &[&Request]) -> Vec<Response> {
    answer_requests_timed(forest, requests, None).0
}

/// Public read-only query fan-out over a caller-owned forest: the same
/// one-batch-call-per-family execution the coalescer and [`crate::Snapshot`]s
/// use, for callers that hold a forest outside any server — replication
/// followers answer staleness-bounded reads against their replica
/// through this. Update requests answer [`Response::Rejected`].
pub fn answer_read_only(forest: &ServeForest, requests: &[Request]) -> Vec<Response> {
    let refs: Vec<&Request> = requests.iter().collect();
    answer_requests(forest, &refs)
}

/// Run one family's fan-out on the engine the dispatcher picks (batched
/// when there is no dispatcher), record its timing + decision in `fam`,
/// feed the observation back to the model, and scatter the answers into
/// their request slots.
#[allow(clippy::too_many_arguments)]
fn run_family<A: Sync>(
    fam: &mut FamilyTimings,
    responses: &mut [Option<Response>],
    family: usize,
    args: &[A],
    idxs: &[usize],
    dispatch: Option<&Dispatcher>,
    batch: impl FnOnce(&[A]) -> Vec<Response>,
    single: impl Fn(&A) -> Response + Sync,
) {
    if args.is_empty() {
        return;
    }
    let k = args.len() as u32;
    let decision = dispatch.map(|d| d.decide(family, k));
    let engine = decision.map_or(Engine::Batched, |d| d.engine);
    let t = Instant::now();
    let answers: Vec<Response> = match engine {
        Engine::Batched => batch(args),
        Engine::Independent => {
            let mut out: Vec<Option<Response>> = vec![None; args.len()];
            let po = ParSlice::new(&mut out);
            parallel_for(args.len(), |j| unsafe {
                po.write(j, Some(single(&args[j])));
            });
            out.into_iter()
                .map(|r| r.expect("independent slot filled"))
                .collect()
        }
        Engine::Sequential => args.iter().map(&single).collect(),
    };
    let ns = t.elapsed().as_nanos() as u64;
    fam.ns[family] = ns;
    fam.counts[family] = k;
    fam.engine[family] = 1 + engine.index() as u8;
    if let Some(d) = decision {
        fam.predicted_ns[family] = d.predicted_ns;
        if d.explored {
            fam.explored |= 1 << family;
        }
    }
    if let Some(d) = dispatch {
        d.model.observe(family, engine, k, ns);
    }
    for (ans, &i) in answers.into_iter().zip(idxs) {
        responses[i] = Some(ans);
    }
}

/// [`answer_requests`] plus per-family timings + dispatch decisions for
/// the flight recorder. With a [`Dispatcher`], each family's fan-out
/// routes to the engine the cost model picks; without one, every family
/// runs batched (snapshots, follower reads).
pub(crate) fn answer_requests_timed(
    forest: &ServeForest,
    requests: &[&Request],
    dispatch: Option<&Dispatcher>,
) -> (Vec<Response>, FamilyTimings) {
    let mut fam = FamilyTimings::default();
    let mut responses: Vec<Option<Response>> = vec![None; requests.len()];

    let mut conn: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut repr: (Vec<u32>, Vec<usize>) = Default::default();
    let mut path: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut subtree: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut lca: (Vec<(u32, u32, u32)>, Vec<usize>) = Default::default();
    let mut bottleneck: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut near: (Vec<u32>, Vec<usize>) = Default::default();

    for (i, req) in requests.iter().enumerate() {
        match req {
            Request::Connected { u, v } => {
                conn.0.push((*u, *v));
                conn.1.push(i);
            }
            Request::Representative { v } => {
                repr.0.push(*v);
                repr.1.push(i);
            }
            Request::PathSum { u, v } => {
                path.0.push((*u, *v));
                path.1.push(i);
            }
            Request::SubtreeSum { v, parent } => {
                subtree.0.push((*v, *parent));
                subtree.1.push(i);
            }
            Request::Lca { u, v, r } => {
                lca.0.push((*u, *v, *r));
                lca.1.push(i);
            }
            Request::Bottleneck { u, v } => {
                bottleneck.0.push((*u, *v));
                bottleneck.1.push(i);
            }
            Request::NearestMarked { v } => {
                near.0.push(*v);
                near.1.push(i);
            }
            Request::Cpt { terminals } => {
                // CPT extraction has no single-query form — it is one
                // structured computation per request, always "batched".
                let t = Instant::now();
                let cpt = forest.compressed_path_tree(terminals);
                fam.ns[7] += t.elapsed().as_nanos() as u64;
                fam.counts[7] += 1;
                fam.engine[7] = 1 + Engine::Batched.index() as u8;
                responses[i] = Some(Response::Cpt(CptResult {
                    vertices: cpt.vertices,
                    edges: cpt.edges,
                }));
            }
            _ => responses[i] = Some(Response::Rejected),
        }
    }

    run_family(
        &mut fam,
        &mut responses,
        0,
        &conn.0,
        &conn.1,
        dispatch,
        |args| {
            forest
                .batch_connected(args)
                .into_iter()
                .map(Response::Bool)
                .collect()
        },
        |&(u, v)| Response::Bool(forest.connected(u, v)),
    );
    run_family(
        &mut fam,
        &mut responses,
        1,
        &repr.0,
        &repr.1,
        dispatch,
        |args| {
            forest
                .batch_find_representatives(args)
                .into_iter()
                .map(|ans| Response::Vertex((ans != NO_VERTEX).then_some(ans)))
                .collect()
        },
        |&v| Response::Vertex(forest.in_range(v).then(|| forest.find_representative(v))),
    );
    run_family(
        &mut fam,
        &mut responses,
        2,
        &path.0,
        &path.1,
        dispatch,
        |args| {
            forest
                .batch_path_aggregate(args)
                .into_iter()
                .map(|ans| Response::Sum(ans.map(|p| p.sum)))
                .collect()
        },
        |&(u, v)| Response::Sum(forest.path_aggregate(u, v).map(|p| p.sum)),
    );
    run_family(
        &mut fam,
        &mut responses,
        3,
        &subtree.0,
        &subtree.1,
        dispatch,
        |args| {
            forest
                .batch_subtree_aggregate(args)
                .into_iter()
                .map(Response::Sum)
                .collect()
        },
        |&(v, parent)| Response::Sum(forest.subtree_aggregate(v, parent)),
    );
    run_family(
        &mut fam,
        &mut responses,
        4,
        &lca.0,
        &lca.1,
        dispatch,
        |args| {
            forest
                .batch_lca(args)
                .into_iter()
                .map(Response::Vertex)
                .collect()
        },
        |&(u, v, r)| Response::Vertex(forest.lca(u, v, r)),
    );
    run_family(
        &mut fam,
        &mut responses,
        5,
        &bottleneck.0,
        &bottleneck.1,
        dispatch,
        |args| {
            forest
                .batch_path_extrema(args)
                .into_iter()
                .map(Response::Extrema)
                .collect()
        },
        // The single walk combines the full PathSummary monoid exactly
        // (min/max over a total order is evaluation-order independent),
        // with the same None / u==v identity contract as the CPT solver.
        |&(u, v)| Response::Extrema(forest.path_aggregate(u, v)),
    );
    run_family(
        &mut fam,
        &mut responses,
        6,
        &near.0,
        &near.1,
        dispatch,
        |args| {
            forest
                .batch_nearest_marked(args)
                .into_iter()
                .map(Response::Near)
                .collect()
        },
        |&v| Response::Near(forest.nearest_marked(v)),
    );

    (
        responses
            .into_iter()
            .map(|r| r.expect("every query family answered"))
            .collect(),
        fam,
    )
}
