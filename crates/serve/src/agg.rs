//! The serving aggregate — the standard combined aggregate of `rc-core`.
//!
//! The combined sum + min/max-edge + nearest-marked aggregate originally
//! lived here; it is now [`rc_core::StdAgg`] (the weight model of the
//! [`rc_core::DynamicForest`] backend trait), re-exported under the
//! historical serve-layer names. See `rc_core::aggregates::std_agg` for
//! the product-monoid caveats (`GroupPathAggregate` is exact on `sum`
//! only).

pub use rc_core::aggregates::std_agg::PathSummary;
use rc_core::RcForest;

/// The combined serving aggregate (alias of [`rc_core::StdAgg`]).
pub type ServeAgg = rc_core::StdAgg;

/// Vertex payload: additive weight + mark bit (alias of
/// [`rc_core::StdVertexWeight`]).
pub type ServeVertexWeight = rc_core::StdVertexWeight;

/// The forest type served by the coalescer.
pub type ServeForest = RcForest<ServeAgg>;
