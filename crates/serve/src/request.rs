//! Requests, responses and the oneshot response handle.

use crate::agg::PathSummary;
use rc_core::ForestError;
use rc_gen::StreamOp;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One single-shot operation submitted to the coalescer.
///
/// Update requests answer [`Response::Updated`] with the same
/// [`ForestError`] contract as the underlying batch calls, evaluated
/// against the serialized in-epoch state in submission order (documented
/// check order for `Link`: range of `u`, range of `v`, self-loop,
/// duplicate edge, degree of `u`, degree of `v`, cycle). Query requests
/// answer the uniform `None` contract of `rc_core::queries`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Insert edge `{u, v}` with weight `w`.
    Link { u: u32, v: u32, w: u64 },
    /// Delete edge `{u, v}`.
    Cut { u: u32, v: u32 },
    /// Set the weight of existing edge `{u, v}`.
    UpdateEdgeWeight { u: u32, v: u32, w: u64 },
    /// Set the additive weight of vertex `v` (mark bit unchanged).
    UpdateVertexWeight { v: u32, w: u64 },
    /// Mark vertex `v` for nearest-marked queries (weight unchanged).
    Mark { v: u32 },
    /// Unmark vertex `v`.
    Unmark { v: u32 },
    /// Are `u` and `v` in the same tree?
    Connected { u: u32, v: u32 },
    /// Component representative of `v` (stable between structural epochs).
    Representative { v: u32 },
    /// Sum of edge weights on the `u..v` path.
    PathSum { u: u32, v: u32 },
    /// Sum of edge + vertex weights in the subtree at `v` away from
    /// neighbor `parent`.
    SubtreeSum { v: u32, parent: u32 },
    /// LCA of `u` and `v` with respect to root `r`.
    Lca { u: u32, v: u32, r: u32 },
    /// Lightest + heaviest edge on the `u..v` path.
    Bottleneck { u: u32, v: u32 },
    /// Nearest marked vertex to `v` as `(distance, vertex)`.
    NearestMarked { v: u32 },
    /// Compressed path tree over `terminals`.
    Cpt { terminals: Vec<u32> },
    /// Dump the server's telemetry — metrics snapshot + flight-recorder
    /// traces — through the normal request path. Answered at the drain
    /// boundary of the epoch that picks it up (so the dump is consistent
    /// with a committed prefix); answers [`Response::Telemetry`].
    /// Read-only snapshots answer it [`Response::Rejected`].
    DumpTelemetry,
}

impl Request {
    /// Is this a mutating request (update phase) vs a read (query phase)?
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            Request::Link { .. }
                | Request::Cut { .. }
                | Request::UpdateEdgeWeight { .. }
                | Request::UpdateVertexWeight { .. }
                | Request::Mark { .. }
                | Request::Unmark { .. }
        )
    }

    /// Short static name of this request kind, used as the `kind` label
    /// on per-request traces ([`crate::RequestTrace`]).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Link { .. } => "link",
            Request::Cut { .. } => "cut",
            Request::UpdateEdgeWeight { .. } => "update_edge_weight",
            Request::UpdateVertexWeight { .. } => "update_vertex_weight",
            Request::Mark { .. } => "mark",
            Request::Unmark { .. } => "unmark",
            Request::Connected { .. } => "connected",
            Request::Representative { .. } => "representative",
            Request::PathSum { .. } => "path_sum",
            Request::SubtreeSum { .. } => "subtree_sum",
            Request::Lca { .. } => "lca",
            Request::Bottleneck { .. } => "bottleneck",
            Request::NearestMarked { .. } => "nearest_marked",
            Request::Cpt { .. } => "cpt",
            Request::DumpTelemetry => "dump_telemetry",
        }
    }

    /// Translate a generated [`StreamOp`] (the `rc-gen` request stream)
    /// into a serve request.
    pub fn from_stream(op: StreamOp) -> Request {
        match op {
            StreamOp::Link { u, v, w } => Request::Link { u, v, w },
            StreamOp::Cut { u, v } => Request::Cut { u, v },
            StreamOp::UpdateEdgeWeight { u, v, w } => Request::UpdateEdgeWeight { u, v, w },
            StreamOp::UpdateVertexWeight { v, w } => Request::UpdateVertexWeight { v, w },
            StreamOp::Mark { v } => Request::Mark { v },
            StreamOp::Unmark { v } => Request::Unmark { v },
            StreamOp::Connected { u, v } => Request::Connected { u, v },
            StreamOp::Representative { v } => Request::Representative { v },
            StreamOp::PathSum { u, v } => Request::PathSum { u, v },
            StreamOp::SubtreeSum { v, parent } => Request::SubtreeSum { v, parent },
            StreamOp::Lca { u, v, r } => Request::Lca { u, v, r },
            StreamOp::Bottleneck { u, v } => Request::Bottleneck { u, v },
            StreamOp::NearestMarked { v } => Request::NearestMarked { v },
            StreamOp::Cpt { terminals } => Request::Cpt { terminals },
        }
    }
}

/// A compressed path tree, by value: original vertex ids plus edges
/// carrying the exact [`PathSummary`] of the contracted path.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CptResult {
    /// Original vertex ids present in the compressed tree.
    pub vertices: Vec<u32>,
    /// Edges with the product path value of the original path.
    pub edges: Vec<(u32, u32, PathSummary)>,
}

/// The answer to one [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Outcome of an update request.
    Updated(Result<(), ForestError>),
    /// `Connected`.
    Bool(bool),
    /// `Representative` / `Lca` (`None`: out of range / disconnected).
    Vertex(Option<u32>),
    /// `PathSum` / `SubtreeSum` (`None` per the uniform contract).
    Sum(Option<u64>),
    /// `Bottleneck`: `None` when disconnected or out of range; the
    /// summary's `min`/`max` are `None` on the empty (self) path.
    Extrema(Option<PathSummary>),
    /// `NearestMarked`.
    Near(Option<(u64, u32)>),
    /// `Cpt`.
    Cpt(CptResult),
    /// `DumpTelemetry` (boxed: dumps are much larger than every other
    /// response).
    Telemetry(Box<crate::telemetry::TelemetryDump>),
    /// The server is shutting down; the request was not executed.
    Rejected,
    /// The client-side deadline (`ServeClient::with_deadline`) expired
    /// before the response arrived. The request itself may still commit
    /// server-side — the deadline bounds *waiting*, not execution.
    TimedOut,
}

/// Internal oneshot slot.
#[derive(Default)]
pub(crate) struct Slot {
    state: Mutex<Option<Response>>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn fill(&self, r: Response) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(g.is_none(), "response slot filled twice");
        *g = Some(r);
        self.cv.notify_all();
    }
}

/// A future-style handle to one in-flight request (no async runtime:
/// std `Mutex` + `Condvar`). Obtained from `ServeClient::submit`.
pub struct ResponseHandle {
    pub(crate) slot: Arc<Slot>,
    /// Per-request deadline sealed at submit time (from
    /// `ServeClient::with_deadline`): [`ResponseHandle::wait`] resolves
    /// to [`Response::TimedOut`] once it expires.
    pub(crate) deadline: Option<Duration>,
}

impl ResponseHandle {
    /// Block until the response arrives — or, when the submitting client
    /// carried a deadline, until it expires, resolving to
    /// [`Response::TimedOut`] instead of blocking forever on a wedged
    /// or dead worker. The slot is left unfilled on timeout; a late
    /// server-side fill lands in the abandoned slot and is dropped with
    /// it.
    pub fn wait(self) -> Response {
        if let Some(deadline) = self.deadline {
            return match self.wait_timeout(deadline) {
                Some(r) => r,
                None => Response::TimedOut,
            };
        }
        let mut g = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.slot.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking poll; consumes the response when ready.
    pub fn try_take(&self) -> Option<Response> {
        self.slot
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// Block up to `timeout`; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Response> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = g.take() {
                return Some(r);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (g2, _) = self
                .slot
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_roundtrip() {
        let slot = Arc::new(Slot::default());
        let h = ResponseHandle {
            slot: slot.clone(),
            deadline: None,
        };
        assert!(h.try_take().is_none());
        assert_eq!(h.wait_timeout(Duration::from_millis(1)), None);
        let t = std::thread::spawn(move || slot.fill(Response::Bool(true)));
        assert_eq!(h.wait(), Response::Bool(true));
        t.join().unwrap();
    }

    #[test]
    fn deadline_wait_times_out_on_unfilled_slot() {
        let slot = Arc::new(Slot::default());
        let h = ResponseHandle {
            slot,
            deadline: Some(Duration::from_millis(5)),
        };
        assert_eq!(h.wait(), Response::TimedOut);
    }

    #[test]
    fn stream_translation_covers_all_ops() {
        let op = StreamOp::Lca { u: 1, v: 2, r: 3 };
        assert_eq!(Request::from_stream(op), Request::Lca { u: 1, v: 2, r: 3 });
        assert!(Request::from_stream(StreamOp::Link { u: 0, v: 1, w: 5 }).is_update());
        assert!(!Request::from_stream(StreamOp::Connected { u: 0, v: 1 }).is_update());
    }
}
