//! The server's telemetry hub: one [`MetricsRegistry`] + one
//! [`FlightRecorder`] per [`RcServe`](crate::RcServe), fed by the epoch
//! worker, the query executor, and (when durable) the store.
//!
//! Pipelined epochs are recorded in two halves — the worker owns the
//! update-side phase timings, the executor owns the query-side ones —
//! and the halves meet here: whichever side finishes second merges the
//! two (all fields are disjoint, so the merge is a field-wise sum) and
//! publishes the completed [`EpochTrace`].

use crate::coalescer::ServeConfig;
use rc_obs::{
    Counter, EpochTrace, FlightRecorder, Gauge, HealthState, HealthView, Histogram,
    MetricsRegistry, MetricsSnapshot, RecycleOutcome, RequestTrace, StallInfo, TraceDump,
    TraceSink, ENGINE_NAMES, FAMILY_NAMES,
};
use rc_store::StoreMetrics;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Phase indices published by the worker/executor threads for the
/// watchdog probe (index into [`PHASE_NAMES`]).
pub(crate) const PHASE_IDLE: usize = 0;
pub(crate) const PHASE_DRAIN: usize = 1;
pub(crate) const PHASE_ADMIT: usize = 2;
pub(crate) const PHASE_WAL: usize = 3;
pub(crate) const PHASE_PUBLISH: usize = 4;
pub(crate) const PHASE_DISPATCH: usize = 5;
pub(crate) const PHASE_QUERY: usize = 6;
pub(crate) const PHASE_RESPOND: usize = 7;
pub(crate) const PHASE_NAMES: [&str; 8] = [
    "idle", "drain", "admit", "wal", "publish", "dispatch", "query", "respond",
];

/// Per-epoch phase durations a request's trace spans are cut from. The
/// worker fills the update-side fields; the executor copies the layout
/// out of the [`QueryJob`](crate::coalescer) and adds the query-side
/// ones before capturing query traces.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SpanLayout {
    pub(crate) epoch: u64,
    pub(crate) epoch_start: Instant,
    pub(crate) drain_ns: u64,
    pub(crate) admit_ns: u64,
    pub(crate) commit_ns: u64,
    pub(crate) wal_ns: u64,
    pub(crate) publish_ns: u64,
    pub(crate) handoff_ns: u64,
    pub(crate) query_ns: u64,
}

impl SpanLayout {
    pub(crate) fn new(epoch: u64, epoch_start: Instant) -> Self {
        SpanLayout {
            epoch,
            epoch_start,
            drain_ns: 0,
            admit_ns: 0,
            commit_ns: 0,
            wal_ns: 0,
            publish_ns: 0,
            handoff_ns: 0,
            query_ns: 0,
        }
    }
}

/// Postmortem frozen by the epoch-stall watchdog: what the watchdog saw,
/// the flight recorder's epochs at declaration time, and the most recent
/// captured request trace (slow ring preferred). Retrieved via
/// [`RcServe::stall_report`](crate::RcServe::stall_report).
#[derive(Clone, Debug)]
pub struct StallReport {
    /// The watchdog's observation (stuck phase, queue depth, duration).
    pub info: StallInfo,
    /// Flight-recorder epochs retained when the stall was declared.
    pub flight: Vec<EpochTrace>,
    /// The most recently captured request trace, if any — often the last
    /// request that completed before the wedge.
    pub last_trace: Option<RequestTrace>,
}

/// On-demand dump of the server's telemetry: the metrics snapshot plus
/// the flight recorder's retained epoch traces. Returned by
/// [`Request::DumpTelemetry`](crate::Request::DumpTelemetry) and the
/// direct [`RcServe::metrics`](crate::RcServe::metrics) /
/// [`flight_dump`](crate::RcServe::flight_dump) accessors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryDump {
    /// Point-in-time value of every registered metric.
    pub snapshot: MetricsSnapshot,
    /// The newest retained epoch traces, oldest first.
    pub traces: Vec<EpochTrace>,
}

/// Per-server telemetry state shared by the worker and query-executor
/// threads (via `Shared`).
pub(crate) struct ServeTelemetry {
    pub(crate) registry: MetricsRegistry,
    pub(crate) flight: FlightRecorder,
    /// Halves of pipelined epochs waiting for their other half.
    pending: Mutex<HashMap<u64, EpochTrace>>,
    /// The flight-recorder dump taken when the worker failed (WAL append
    /// or compaction error) — the postmortem for the rollback/poison
    /// paths.
    failure: Mutex<Option<Vec<EpochTrace>>>,
    /// Captured request traces (sampled ring + slow ring + exemplars).
    pub(crate) sink: TraceSink,
    /// Slow-capture threshold from [`ServeConfig::slow_request_threshold`].
    slow_threshold_ns: u64,
    /// Liveness state consulted by `/health` + `/ready` and flipped by
    /// the watchdog / failure paths.
    pub(crate) health: Arc<HealthState>,
    /// Stall postmortem frozen by the watchdog's one-shot callback.
    stall: Mutex<Option<StallReport>>,
    /// Current worker/executor phases (indices into [`PHASE_NAMES`]) for
    /// the watchdog probe.
    worker_phase: AtomicUsize,
    exec_phase: AtomicUsize,
    /// Store metric handles when durable — lets `/traces` append the
    /// WAL append/fsync exemplars.
    store_metrics: OnceLock<StoreMetrics>,
    /// Epochs completed by the worker thread (monotone heartbeat).
    worker_heartbeat: Arc<Gauge>,
    /// Query phases completed by the executor thread.
    executor_heartbeat: Arc<Gauge>,
    stalls_total: Arc<Counter>,
    traces_sampled_total: Arc<Counter>,
    traces_slow_total: Arc<Counter>,
    epochs_total: Arc<Counter>,
    failed_epochs_total: Arc<Counter>,
    requests_total: Arc<Counter>,
    updates_total: Arc<Counter>,
    queries_total: Arc<Counter>,
    flushes_total: Arc<Counter>,
    recycle_caught_up_total: Arc<Counter>,
    recycle_cloned_total: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    drain_ns: Arc<Histogram>,
    admit_ns: Arc<Histogram>,
    commit_ns: Arc<Histogram>,
    wal_ns: Arc<Histogram>,
    publish_ns: Arc<Histogram>,
    backpressure_ns: Arc<Histogram>,
    handoff_ns: Arc<Histogram>,
    query_ns: Arc<Histogram>,
    respond_ns: Arc<Histogram>,
    epoch_wall_ns: Arc<Histogram>,
    /// Per-(family, engine) fan-out wall time — the per-family timings
    /// split by which dispatch engine ran them
    /// (`serve_family_query_ns{family=...,engine=...}`).
    family_engine_ns: [[Arc<Histogram>; 3]; 8],
    /// Dispatch decisions per (family, engine).
    dispatch_total: [[Arc<Counter>; 3]; 8],
    /// Decisions that were exploration samples.
    dispatch_explored_total: Arc<Counter>,
}

impl ServeTelemetry {
    /// Fresh registry + flight recorder + trace sink; `latency` is the
    /// existing end-to-end request histogram, attached under its metric
    /// name so it shows up in every snapshot.
    pub(crate) fn new(cfg: &ServeConfig, latency: Arc<Histogram>) -> Self {
        let registry = MetricsRegistry::new();
        registry.attach_histogram("serve_request_latency_ns", latency);
        ServeTelemetry {
            flight: FlightRecorder::new(cfg.flight_recorder),
            pending: Mutex::new(HashMap::new()),
            failure: Mutex::new(None),
            sink: TraceSink::new(cfg.trace_ring, cfg.trace_ring),
            slow_threshold_ns: cfg.slow_request_threshold.as_nanos() as u64,
            health: Arc::new(HealthState::default()),
            stall: Mutex::new(None),
            worker_phase: AtomicUsize::new(PHASE_IDLE),
            exec_phase: AtomicUsize::new(PHASE_IDLE),
            store_metrics: OnceLock::new(),
            worker_heartbeat: registry.gauge("serve_worker_heartbeat"),
            executor_heartbeat: registry.gauge("serve_executor_heartbeat"),
            stalls_total: registry.counter("serve_stalls_total"),
            traces_sampled_total: registry.counter("serve_traces_sampled_total"),
            traces_slow_total: registry.counter("serve_traces_slow_total"),
            epochs_total: registry.counter("serve_epochs_total"),
            failed_epochs_total: registry.counter("serve_failed_epochs_total"),
            requests_total: registry.counter("serve_requests_total"),
            updates_total: registry.counter("serve_updates_total"),
            queries_total: registry.counter("serve_queries_total"),
            flushes_total: registry.counter("serve_flushes_total"),
            recycle_caught_up_total: registry.counter("serve_recycle_caught_up_total"),
            recycle_cloned_total: registry.counter("serve_recycle_cloned_total"),
            queue_depth: registry.gauge("serve_queue_depth"),
            drain_ns: registry.histogram("serve_phase_drain_ns"),
            admit_ns: registry.histogram("serve_phase_admit_ns"),
            commit_ns: registry.histogram("serve_phase_commit_ns"),
            wal_ns: registry.histogram("serve_phase_wal_ns"),
            publish_ns: registry.histogram("serve_phase_publish_ns"),
            backpressure_ns: registry.histogram("serve_backpressure_ns"),
            handoff_ns: registry.histogram("serve_handoff_ns"),
            query_ns: registry.histogram("serve_phase_query_ns"),
            respond_ns: registry.histogram("serve_phase_respond_ns"),
            epoch_wall_ns: registry.histogram("serve_epoch_wall_ns"),
            family_engine_ns: std::array::from_fn(|f| {
                std::array::from_fn(|e| {
                    registry.histogram(&format!(
                        "serve_family_query_ns{{family=\"{}\",engine=\"{}\"}}",
                        FAMILY_NAMES[f], ENGINE_NAMES[e]
                    ))
                })
            }),
            dispatch_total: std::array::from_fn(|f| {
                std::array::from_fn(|e| {
                    registry.counter(&format!(
                        "serve_dispatch_total{{family=\"{}\",engine=\"{}\"}}",
                        FAMILY_NAMES[f], ENGINE_NAMES[e]
                    ))
                })
            }),
            dispatch_explored_total: registry.counter("serve_dispatch_explored_total"),
            registry,
        }
    }

    /// Observe the queue depth seen at drain time.
    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as i64);
    }

    /// Durable servers hand over the store's metric handles so `/traces`
    /// can include the WAL append/fsync exemplars.
    pub(crate) fn set_store_metrics(&self, m: StoreMetrics) {
        let _ = self.store_metrics.set(m);
    }

    pub(crate) fn set_worker_phase(&self, phase: usize) {
        self.worker_phase.store(phase, Ordering::Relaxed);
    }

    pub(crate) fn set_exec_phase(&self, phase: usize) {
        self.exec_phase.store(phase, Ordering::Relaxed);
    }

    /// One epoch finished on the worker thread.
    pub(crate) fn worker_tick(&self) {
        self.worker_heartbeat.add(1);
    }

    /// One query phase finished on the executor thread.
    pub(crate) fn exec_tick(&self) {
        self.executor_heartbeat.add(1);
    }

    /// Monotone progress counter for the watchdog probe: any completed
    /// epoch or query phase advances it.
    pub(crate) fn progress(&self) -> u64 {
        self.worker_heartbeat.get() as u64 + self.executor_heartbeat.get() as u64
    }

    /// Is either thread mid-phase? (An idle server never stalls.)
    pub(crate) fn phase_active(&self) -> bool {
        self.worker_phase.load(Ordering::Relaxed) != PHASE_IDLE
            || self.exec_phase.load(Ordering::Relaxed) != PHASE_IDLE
    }

    /// The phase to blame in a stall report: the worker's unless it is
    /// idle, then the executor's.
    pub(crate) fn current_phase(&self) -> &'static str {
        let w = self.worker_phase.load(Ordering::Relaxed);
        if w != PHASE_IDLE {
            return PHASE_NAMES[w.min(PHASE_NAMES.len() - 1)];
        }
        PHASE_NAMES[self
            .exec_phase
            .load(Ordering::Relaxed)
            .min(PHASE_NAMES.len() - 1)]
    }

    /// Capture one request's trace if it is sampled or slow; every call
    /// also feeds the latency exemplars. `layout` carries the epoch's
    /// phase durations; the spans are laid end to end from the submit
    /// instant (queue wait, then each phase the request rode through,
    /// then a respond remainder) so they partition `e2e_ns` exactly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn maybe_capture(
        &self,
        layout: &SpanLayout,
        seq: u64,
        submitted: Instant,
        kind: &'static str,
        family: Option<usize>,
        sampled: bool,
        e2e_ns: u64,
    ) {
        let trace_id = seq + 1; // 0 is reserved for "no trace context"
        let slow = self.slow_threshold_ns > 0 && e2e_ns >= self.slow_threshold_ns;
        if !sampled && !slow {
            self.sink.exemplars.observe(e2e_ns, trace_id);
            return;
        }
        let mut t = RequestTrace {
            trace_id,
            epoch: layout.epoch,
            kind,
            sampled,
            slow,
            e2e_ns,
            ..RequestTrace::default()
        };
        let queue_ns = layout
            .epoch_start
            .saturating_duration_since(submitted)
            .as_nanos() as u64;
        let mut cursor = 0u64;
        let mut push = |t: &mut RequestTrace, name: &'static str, dur: u64| {
            t.push_span(name, cursor, dur);
            cursor += dur;
        };
        push(&mut t, "queue", queue_ns);
        push(&mut t, "drain", layout.drain_ns);
        push(&mut t, "admit", layout.admit_ns);
        push(&mut t, "commit", layout.commit_ns);
        if layout.wal_ns > 0 {
            push(&mut t, "wal", layout.wal_ns);
        }
        if layout.publish_ns > 0 {
            push(&mut t, "publish", layout.publish_ns);
        }
        if layout.handoff_ns > 0 {
            push(&mut t, "handoff", layout.handoff_ns);
        }
        if let Some(f) = family {
            push(&mut t, crate::exec::QUERY_SPAN_NAMES[f], layout.query_ns);
        }
        // Whatever remains of the measured end-to-end latency is the
        // respond tail; phase timings racing the fill can overshoot by
        // nanoseconds, so saturate rather than wrap.
        t.push_span("respond", cursor, e2e_ns.saturating_sub(cursor));
        if sampled {
            self.traces_sampled_total.inc();
        }
        if slow {
            self.traces_slow_total.inc();
        }
        self.sink.push(t);
    }

    /// Dump the captured request traces, appending the store's WAL
    /// append/fsync exemplars when durable.
    pub(crate) fn traces(&self) -> TraceDump {
        let mut d = self.sink.dump();
        if let Some(sm) = self.store_metrics.get() {
            d.exemplars
                .extend(sm.append_exemplars.dump("store_append_ns"));
            d.exemplars.extend(sm.fsync_exemplars.dump("wal_fsync_ns"));
        }
        d
    }

    /// Liveness view for `/health` + `/ready`: `ready` additionally
    /// requires the server to still be accepting requests.
    pub(crate) fn health_view(&self, accepting: bool) -> HealthView {
        let detail = match self.health.last_stall() {
            Some(info) if !self.health.healthy() => format!(
                "stalled in \"{}\" for {:?} with {} queued",
                info.phase, info.stalled_for, info.queued
            ),
            _ if !accepting => "not accepting (shut down or failed)".to_string(),
            _ => String::new(),
        };
        HealthView {
            healthy: self.health.healthy(),
            ready: self.health.ready() && accepting,
            stalls: self.health.stall_count(),
            detail,
        }
    }

    /// The watchdog declared a stall: count it and freeze a postmortem
    /// (flight recorder + the newest captured request trace). One-shot
    /// per episode — the watchdog only fires the callback once.
    pub(crate) fn note_stall(&self, info: &StallInfo) {
        self.stalls_total.inc();
        let dump = self.sink.dump();
        let last_trace = dump.slow.last().or(dump.recent.last()).copied();
        let report = StallReport {
            info: info.clone(),
            flight: self.flight.dump(),
            last_trace,
        };
        *self.stall.lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
    }

    /// The postmortem frozen by the most recent stall, if any.
    pub(crate) fn stall_report(&self) -> Option<StallReport> {
        self.stall.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Sampled/slow capture totals since startup.
    pub(crate) fn capture_totals(&self) -> (u64, u64) {
        (self.sink.sampled_total(), self.sink.slow_total())
    }

    /// Publish one *complete* epoch trace: counters, phase histograms,
    /// and the flight-recorder ring.
    pub(crate) fn record_trace(&self, t: EpochTrace) {
        self.epochs_total.inc();
        if t.failed {
            self.failed_epochs_total.inc();
        }
        self.requests_total.add(t.batch as u64);
        self.updates_total.add(t.updates as u64);
        self.queries_total.add(t.queries as u64);
        self.flushes_total.add(t.flushes as u64);
        match t.recycle {
            RecycleOutcome::None => {}
            RecycleOutcome::CaughtUp => self.recycle_caught_up_total.inc(),
            RecycleOutcome::Cloned => self.recycle_cloned_total.inc(),
        }
        self.drain_ns.record(t.drain_ns);
        self.admit_ns.record(t.admit_ns);
        self.commit_ns.record(t.commit_ns);
        if t.wal_ns > 0 {
            self.wal_ns.record(t.wal_ns);
        }
        if t.publish_ns > 0 {
            self.publish_ns.record(t.publish_ns);
        }
        if t.backpressure_ns > 0 {
            self.backpressure_ns.record(t.backpressure_ns);
        }
        if t.handoff_ns > 0 {
            self.handoff_ns.record(t.handoff_ns);
        }
        self.query_ns.record(t.query_ns);
        self.respond_ns.record(t.respond_ns);
        self.epoch_wall_ns.record(t.epoch_wall_ns);
        for i in 0..8 {
            // 0 = family did not run (or a pre-dispatch trace); else the
            // recorded engine splits the family's timing series.
            if t.family_engine[i] == 0 {
                continue;
            }
            let e = (t.family_engine[i] as usize - 1).min(2);
            self.family_engine_ns[i][e].record(t.family_ns[i]);
            self.dispatch_total[i][e].inc();
            if (t.family_explored >> i) & 1 == 1 {
                self.dispatch_explored_total.inc();
            }
        }
        self.flight.record(t);
    }

    /// Publish one *half* of a pipelined epoch's trace (the worker's
    /// update side or the executor's query side). The halves fill
    /// disjoint fields; whichever arrives second merges field-wise and
    /// records the completed trace.
    pub(crate) fn record_half(&self, half: EpochTrace) {
        let merged = {
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            match pending.remove(&half.epoch) {
                Some(other) => Some(merge_halves(other, half)),
                None => {
                    pending.insert(half.epoch, half);
                    None
                }
            }
        };
        if let Some(t) = merged {
            self.record_trace(t);
        }
    }

    /// The worker failed (WAL append error): record the failing epoch's
    /// partial trace, then freeze a dump for postmortems.
    pub(crate) fn note_failure(&self, failing: EpochTrace) {
        self.record_trace(failing);
        self.health.mark_failed();
        self.freeze(failing.epoch);
    }

    /// Freeze the current flight-recorder contents as the failure dump
    /// (the poisoned-compaction path calls this after the in-flight
    /// query phase has drained, so the failing epoch's trace is
    /// complete) and summarize on stderr.
    pub(crate) fn freeze(&self, failing_epoch: u64) {
        let dump = self.flight.dump();
        eprintln!(
            "rc-serve: flight recorder: froze {} trace(s) after failure at epoch {}; \
             dump available via failure_dump()",
            dump.len(),
            failing_epoch,
        );
        *self.failure.lock().unwrap_or_else(|e| e.into_inner()) = Some(dump);
    }

    /// The dump frozen by [`note_failure`](Self::note_failure), if the
    /// worker has failed.
    pub(crate) fn failure_dump(&self) -> Option<Vec<EpochTrace>> {
        self.failure
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot every registered metric, appending the work-stealing
    /// pool's counters when the `pool-metrics` feature is enabled.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        #[allow(unused_mut)]
        let mut snap = self.registry.snapshot();
        #[cfg(feature = "pool-metrics")]
        {
            let pm = rayon::pool_metrics();
            for (name, v) in [
                ("pool_jobs_published_total", pm.jobs_published),
                ("pool_chunks_claimed_total", pm.chunks_claimed),
                ("pool_join_tasks_stolen_total", pm.join_tasks_stolen),
                ("pool_join_tasks_reclaimed_total", pm.join_tasks_reclaimed),
                ("pool_parks_total", pm.parks),
                ("pool_unparks_total", pm.unparks),
            ] {
                snap.metrics
                    .push((name.to_string(), rc_obs::MetricValue::Counter(v)));
            }
        }
        snap
    }
}

/// Field-wise union of the two halves of a pipelined epoch's trace.
/// Every timing/count field is filled by exactly one side, so addition
/// is the union; `recycle`/`failed` come from whichever side set them.
fn merge_halves(a: EpochTrace, b: EpochTrace) -> EpochTrace {
    debug_assert_eq!(a.epoch, b.epoch);
    let mut t = EpochTrace {
        epoch: a.epoch,
        batch: a.batch + b.batch,
        updates: a.updates + b.updates,
        queries: a.queries + b.queries,
        flushes: a.flushes + b.flushes,
        queue_depth: a.queue_depth + b.queue_depth,
        drain_ns: a.drain_ns + b.drain_ns,
        admit_ns: a.admit_ns + b.admit_ns,
        commit_ns: a.commit_ns + b.commit_ns,
        wal_ns: a.wal_ns + b.wal_ns,
        publish_ns: a.publish_ns + b.publish_ns,
        backpressure_ns: a.backpressure_ns + b.backpressure_ns,
        handoff_ns: a.handoff_ns + b.handoff_ns,
        query_ns: a.query_ns + b.query_ns,
        respond_ns: a.respond_ns + b.respond_ns,
        epoch_wall_ns: a.epoch_wall_ns.max(b.epoch_wall_ns),
        family_ns: [0; 8],
        family_counts: [0; 8],
        family_engine: [0; 8],
        family_predicted_ns: [0; 8],
        family_explored: a.family_explored | b.family_explored,
        recycle: if a.recycle == RecycleOutcome::None {
            b.recycle
        } else {
            a.recycle
        },
        failed: a.failed || b.failed,
    };
    for i in 0..8 {
        t.family_ns[i] = a.family_ns[i] + b.family_ns[i];
        t.family_counts[i] = a.family_counts[i] + b.family_counts[i];
        // Only the query side records a family's engine/prediction —
        // max/sum are both "take the set half".
        t.family_engine[i] = a.family_engine[i].max(b.family_engine[i]);
        t.family_predicted_ns[i] = a.family_predicted_ns[i] + b.family_predicted_ns[i];
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tel_with_flight(flight_recorder: usize) -> ServeTelemetry {
        let cfg = ServeConfig {
            flight_recorder,
            ..ServeConfig::default()
        };
        ServeTelemetry::new(&cfg, Arc::new(Histogram::default()))
    }

    #[test]
    fn halves_merge_once_both_arrive() {
        let tel = tel_with_flight(16);
        let worker_half = EpochTrace {
            epoch: 3,
            batch: 10,
            updates: 4,
            drain_ns: 100,
            admit_ns: 200,
            commit_ns: 300,
            recycle: RecycleOutcome::CaughtUp,
            ..EpochTrace::default()
        };
        let exec_half = EpochTrace {
            epoch: 3,
            queries: 6,
            handoff_ns: 50,
            query_ns: 400,
            respond_ns: 25,
            epoch_wall_ns: 1_100,
            ..EpochTrace::default()
        };
        tel.record_half(worker_half);
        assert!(tel.flight.dump().is_empty(), "half alone is not recorded");
        tel.record_half(exec_half);
        let dump = tel.flight.dump();
        assert_eq!(dump.len(), 1);
        let t = dump[0];
        assert_eq!(t.epoch, 3);
        assert_eq!(t.batch, 10);
        assert_eq!(t.updates, 4);
        assert_eq!(t.queries, 6);
        assert_eq!(t.drain_ns, 100);
        assert_eq!(t.handoff_ns, 50);
        assert_eq!(t.query_ns, 400);
        assert_eq!(t.epoch_wall_ns, 1_100);
        assert_eq!(t.recycle, RecycleOutcome::CaughtUp);
        assert_eq!(t.phase_sum_ns(), 100 + 200 + 300 + 50 + 400 + 25);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("serve_epochs_total"), Some(1));
        assert_eq!(snap.counter("serve_recycle_caught_up_total"), Some(1));
    }

    #[test]
    fn failure_freezes_a_dump() {
        let tel = tel_with_flight(8);
        tel.record_trace(EpochTrace {
            epoch: 1,
            ..EpochTrace::default()
        });
        assert!(tel.failure_dump().is_none());
        tel.note_failure(EpochTrace {
            epoch: 2,
            failed: true,
            wal_ns: 77,
            ..EpochTrace::default()
        });
        let dump = tel.failure_dump().expect("frozen dump");
        assert_eq!(dump.len(), 2);
        assert!(dump.iter().any(|t| t.epoch == 2 && t.failed));
        assert_eq!(tel.snapshot().counter("serve_failed_epochs_total"), Some(1));
    }
}
