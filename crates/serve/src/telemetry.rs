//! The server's telemetry hub: one [`MetricsRegistry`] + one
//! [`FlightRecorder`] per [`RcServe`](crate::RcServe), fed by the epoch
//! worker, the query executor, and (when durable) the store.
//!
//! Pipelined epochs are recorded in two halves — the worker owns the
//! update-side phase timings, the executor owns the query-side ones —
//! and the halves meet here: whichever side finishes second merges the
//! two (all fields are disjoint, so the merge is a field-wise sum) and
//! publishes the completed [`EpochTrace`].

use rc_obs::{
    Counter, EpochTrace, FlightRecorder, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
    RecycleOutcome,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// On-demand dump of the server's telemetry: the metrics snapshot plus
/// the flight recorder's retained epoch traces. Returned by
/// [`Request::DumpTelemetry`](crate::Request::DumpTelemetry) and the
/// direct [`RcServe::metrics`](crate::RcServe::metrics) /
/// [`flight_dump`](crate::RcServe::flight_dump) accessors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryDump {
    /// Point-in-time value of every registered metric.
    pub snapshot: MetricsSnapshot,
    /// The newest retained epoch traces, oldest first.
    pub traces: Vec<EpochTrace>,
}

/// Per-server telemetry state shared by the worker and query-executor
/// threads (via `Shared`).
pub(crate) struct ServeTelemetry {
    pub(crate) registry: MetricsRegistry,
    pub(crate) flight: FlightRecorder,
    /// Halves of pipelined epochs waiting for their other half.
    pending: Mutex<HashMap<u64, EpochTrace>>,
    /// The flight-recorder dump taken when the worker failed (WAL append
    /// or compaction error) — the postmortem for the rollback/poison
    /// paths.
    failure: Mutex<Option<Vec<EpochTrace>>>,
    epochs_total: Arc<Counter>,
    failed_epochs_total: Arc<Counter>,
    requests_total: Arc<Counter>,
    updates_total: Arc<Counter>,
    queries_total: Arc<Counter>,
    flushes_total: Arc<Counter>,
    recycle_caught_up_total: Arc<Counter>,
    recycle_cloned_total: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    drain_ns: Arc<Histogram>,
    admit_ns: Arc<Histogram>,
    commit_ns: Arc<Histogram>,
    wal_ns: Arc<Histogram>,
    publish_ns: Arc<Histogram>,
    backpressure_ns: Arc<Histogram>,
    handoff_ns: Arc<Histogram>,
    query_ns: Arc<Histogram>,
    respond_ns: Arc<Histogram>,
    epoch_wall_ns: Arc<Histogram>,
}

impl ServeTelemetry {
    /// Fresh registry + flight recorder; `latency` is the existing
    /// end-to-end request histogram, attached under its metric name so
    /// it shows up in every snapshot.
    pub(crate) fn new(flight_capacity: usize, latency: Arc<Histogram>) -> Self {
        let registry = MetricsRegistry::new();
        registry.attach_histogram("serve_request_latency_ns", latency);
        ServeTelemetry {
            flight: FlightRecorder::new(flight_capacity),
            pending: Mutex::new(HashMap::new()),
            failure: Mutex::new(None),
            epochs_total: registry.counter("serve_epochs_total"),
            failed_epochs_total: registry.counter("serve_failed_epochs_total"),
            requests_total: registry.counter("serve_requests_total"),
            updates_total: registry.counter("serve_updates_total"),
            queries_total: registry.counter("serve_queries_total"),
            flushes_total: registry.counter("serve_flushes_total"),
            recycle_caught_up_total: registry.counter("serve_recycle_caught_up_total"),
            recycle_cloned_total: registry.counter("serve_recycle_cloned_total"),
            queue_depth: registry.gauge("serve_queue_depth"),
            drain_ns: registry.histogram("serve_phase_drain_ns"),
            admit_ns: registry.histogram("serve_phase_admit_ns"),
            commit_ns: registry.histogram("serve_phase_commit_ns"),
            wal_ns: registry.histogram("serve_phase_wal_ns"),
            publish_ns: registry.histogram("serve_phase_publish_ns"),
            backpressure_ns: registry.histogram("serve_backpressure_ns"),
            handoff_ns: registry.histogram("serve_handoff_ns"),
            query_ns: registry.histogram("serve_phase_query_ns"),
            respond_ns: registry.histogram("serve_phase_respond_ns"),
            epoch_wall_ns: registry.histogram("serve_epoch_wall_ns"),
            registry,
        }
    }

    /// Observe the queue depth seen at drain time.
    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as i64);
    }

    /// Publish one *complete* epoch trace: counters, phase histograms,
    /// and the flight-recorder ring.
    pub(crate) fn record_trace(&self, t: EpochTrace) {
        self.epochs_total.inc();
        if t.failed {
            self.failed_epochs_total.inc();
        }
        self.requests_total.add(t.batch as u64);
        self.updates_total.add(t.updates as u64);
        self.queries_total.add(t.queries as u64);
        self.flushes_total.add(t.flushes as u64);
        match t.recycle {
            RecycleOutcome::None => {}
            RecycleOutcome::CaughtUp => self.recycle_caught_up_total.inc(),
            RecycleOutcome::Cloned => self.recycle_cloned_total.inc(),
        }
        self.drain_ns.record(t.drain_ns);
        self.admit_ns.record(t.admit_ns);
        self.commit_ns.record(t.commit_ns);
        if t.wal_ns > 0 {
            self.wal_ns.record(t.wal_ns);
        }
        if t.publish_ns > 0 {
            self.publish_ns.record(t.publish_ns);
        }
        if t.backpressure_ns > 0 {
            self.backpressure_ns.record(t.backpressure_ns);
        }
        if t.handoff_ns > 0 {
            self.handoff_ns.record(t.handoff_ns);
        }
        self.query_ns.record(t.query_ns);
        self.respond_ns.record(t.respond_ns);
        self.epoch_wall_ns.record(t.epoch_wall_ns);
        self.flight.record(t);
    }

    /// Publish one *half* of a pipelined epoch's trace (the worker's
    /// update side or the executor's query side). The halves fill
    /// disjoint fields; whichever arrives second merges field-wise and
    /// records the completed trace.
    pub(crate) fn record_half(&self, half: EpochTrace) {
        let merged = {
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            match pending.remove(&half.epoch) {
                Some(other) => Some(merge_halves(other, half)),
                None => {
                    pending.insert(half.epoch, half);
                    None
                }
            }
        };
        if let Some(t) = merged {
            self.record_trace(t);
        }
    }

    /// The worker failed (WAL append error): record the failing epoch's
    /// partial trace, then freeze a dump for postmortems.
    pub(crate) fn note_failure(&self, failing: EpochTrace) {
        self.record_trace(failing);
        self.freeze(failing.epoch);
    }

    /// Freeze the current flight-recorder contents as the failure dump
    /// (the poisoned-compaction path calls this after the in-flight
    /// query phase has drained, so the failing epoch's trace is
    /// complete) and summarize on stderr.
    pub(crate) fn freeze(&self, failing_epoch: u64) {
        let dump = self.flight.dump();
        eprintln!(
            "rc-serve: flight recorder: froze {} trace(s) after failure at epoch {}; \
             dump available via failure_dump()",
            dump.len(),
            failing_epoch,
        );
        *self.failure.lock().unwrap_or_else(|e| e.into_inner()) = Some(dump);
    }

    /// The dump frozen by [`note_failure`](Self::note_failure), if the
    /// worker has failed.
    pub(crate) fn failure_dump(&self) -> Option<Vec<EpochTrace>> {
        self.failure
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot every registered metric, appending the work-stealing
    /// pool's counters when the `pool-metrics` feature is enabled.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        #[allow(unused_mut)]
        let mut snap = self.registry.snapshot();
        #[cfg(feature = "pool-metrics")]
        {
            let pm = rayon::pool_metrics();
            for (name, v) in [
                ("pool_jobs_published_total", pm.jobs_published),
                ("pool_chunks_claimed_total", pm.chunks_claimed),
                ("pool_join_tasks_stolen_total", pm.join_tasks_stolen),
                ("pool_join_tasks_reclaimed_total", pm.join_tasks_reclaimed),
                ("pool_parks_total", pm.parks),
                ("pool_unparks_total", pm.unparks),
            ] {
                snap.metrics
                    .push((name.to_string(), rc_obs::MetricValue::Counter(v)));
            }
        }
        snap
    }
}

/// Field-wise union of the two halves of a pipelined epoch's trace.
/// Every timing/count field is filled by exactly one side, so addition
/// is the union; `recycle`/`failed` come from whichever side set them.
fn merge_halves(a: EpochTrace, b: EpochTrace) -> EpochTrace {
    debug_assert_eq!(a.epoch, b.epoch);
    let mut t = EpochTrace {
        epoch: a.epoch,
        batch: a.batch + b.batch,
        updates: a.updates + b.updates,
        queries: a.queries + b.queries,
        flushes: a.flushes + b.flushes,
        queue_depth: a.queue_depth + b.queue_depth,
        drain_ns: a.drain_ns + b.drain_ns,
        admit_ns: a.admit_ns + b.admit_ns,
        commit_ns: a.commit_ns + b.commit_ns,
        wal_ns: a.wal_ns + b.wal_ns,
        publish_ns: a.publish_ns + b.publish_ns,
        backpressure_ns: a.backpressure_ns + b.backpressure_ns,
        handoff_ns: a.handoff_ns + b.handoff_ns,
        query_ns: a.query_ns + b.query_ns,
        respond_ns: a.respond_ns + b.respond_ns,
        epoch_wall_ns: a.epoch_wall_ns.max(b.epoch_wall_ns),
        family_ns: [0; 8],
        family_counts: [0; 8],
        recycle: if a.recycle == RecycleOutcome::None {
            b.recycle
        } else {
            a.recycle
        },
        failed: a.failed || b.failed,
    };
    for i in 0..8 {
        t.family_ns[i] = a.family_ns[i] + b.family_ns[i];
        t.family_counts[i] = a.family_counts[i] + b.family_counts[i];
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_merge_once_both_arrive() {
        let tel = ServeTelemetry::new(16, Arc::new(Histogram::default()));
        let worker_half = EpochTrace {
            epoch: 3,
            batch: 10,
            updates: 4,
            drain_ns: 100,
            admit_ns: 200,
            commit_ns: 300,
            recycle: RecycleOutcome::CaughtUp,
            ..EpochTrace::default()
        };
        let exec_half = EpochTrace {
            epoch: 3,
            queries: 6,
            handoff_ns: 50,
            query_ns: 400,
            respond_ns: 25,
            epoch_wall_ns: 1_100,
            ..EpochTrace::default()
        };
        tel.record_half(worker_half);
        assert!(tel.flight.dump().is_empty(), "half alone is not recorded");
        tel.record_half(exec_half);
        let dump = tel.flight.dump();
        assert_eq!(dump.len(), 1);
        let t = dump[0];
        assert_eq!(t.epoch, 3);
        assert_eq!(t.batch, 10);
        assert_eq!(t.updates, 4);
        assert_eq!(t.queries, 6);
        assert_eq!(t.drain_ns, 100);
        assert_eq!(t.handoff_ns, 50);
        assert_eq!(t.query_ns, 400);
        assert_eq!(t.epoch_wall_ns, 1_100);
        assert_eq!(t.recycle, RecycleOutcome::CaughtUp);
        assert_eq!(t.phase_sum_ns(), 100 + 200 + 300 + 50 + 400 + 25);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("serve_epochs_total"), Some(1));
        assert_eq!(snap.counter("serve_recycle_caught_up_total"), Some(1));
    }

    #[test]
    fn failure_freezes_a_dump() {
        let tel = ServeTelemetry::new(8, Arc::new(Histogram::default()));
        tel.record_trace(EpochTrace {
            epoch: 1,
            ..EpochTrace::default()
        });
        assert!(tel.failure_dump().is_none());
        tel.note_failure(EpochTrace {
            epoch: 2,
            failed: true,
            wal_ns: 77,
            ..EpochTrace::default()
        });
        let dump = tel.failure_dump().expect("frozen dump");
        assert_eq!(dump.len(), 2);
        assert!(dump.iter().any(|t| t.epoch == 2 && t.failed));
        assert_eq!(tel.snapshot().counter("serve_failed_epochs_total"), Some(1));
    }
}
