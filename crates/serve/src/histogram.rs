//! Lock-free log-bucketed latency histogram + per-epoch instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// Concurrent latency histogram over power-of-two nanosecond buckets
/// (bucket `i` holds samples in `[2^i, 2^(i+1))`). Recording is a single
/// relaxed `fetch_add`; percentiles are computed from a snapshot.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for reporting.
    pub fn summary(&self) -> LatencySummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let pct = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut acc = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                acc += c;
                if acc >= target {
                    // Upper bound of the bucket: pessimistic but stable.
                    return (2u128.pow(i as u32 + 1) - 1).min(u64::MAX as u128) as u64;
                }
            }
            u64::MAX
        };
        LatencySummary {
            count,
            mean_ns: sum_ns.checked_div(count).unwrap_or(0),
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
        }
    }
}

/// Percentile snapshot of a [`LatencyHistogram`] (bucket upper bounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact mean (from the running sum, not the buckets).
    pub mean_ns: u64,
    /// Median, 95th and 99th percentile (log-bucket resolution).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

/// Instrumentation of one drained epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    /// Epoch ordinal (1-based).
    pub epoch: u64,
    /// Requests drained into this epoch.
    pub batch: usize,
    /// Queue depth observed at drain time (before capping).
    pub queue_depth: usize,
    /// Update requests (including rejected ones).
    pub updates: usize,
    /// Query requests.
    pub queries: usize,
    /// Sub-batch flushes forced by in-epoch conflicts (1 = fully
    /// coalesced update phase).
    pub flushes: usize,
    /// Wall time of the update phase.
    pub update_ns: u64,
    /// Wall time of the query phase.
    pub query_ns: u64,
    /// Forest version stamp after the epoch committed.
    pub version_after: u64,
}

/// Aggregate server statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Epochs committed.
    pub epochs: u64,
    /// Requests served.
    pub ops: u64,
    /// Update requests served.
    pub updates: u64,
    /// Query requests served.
    pub queries: u64,
    /// Total sub-batch flushes across all epochs.
    pub flushes: u64,
    /// Mean epoch batch size.
    pub mean_batch: f64,
    /// Largest epoch batch.
    pub max_batch: usize,
    /// End-to-end request latency (submit → response).
    pub latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_land_in_buckets() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(1_000); // bucket [512, 1024)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20)
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_ns >= 1_000 && s.p50_ns < 2_048, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= 1_000_000, "p99 {}", s.p99_ns);
        assert_eq!(s.mean_ns, (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram() {
        let s = LatencyHistogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn zero_ns_sample_is_clamped() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let h = LatencyHistogram::default();
        h.record(5_000); // bucket [4096, 8192)
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_ns, 5_000);
        for p in [s.p50_ns, s.p95_ns, s.p99_ns] {
            assert!((4_096..8_192).contains(&p), "percentile {p} off-bucket");
        }
    }

    #[test]
    fn bucket_saturation_at_u64_max() {
        // u64::MAX lands in the top bucket; its reported upper bound must
        // clamp to u64::MAX instead of overflowing 2^64.
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_ns, u64::MAX);
        assert_eq!(s.p99_ns, u64::MAX);
        // The running sum wraps (relaxed fetch_add), but count stays exact.
        assert_eq!(h.summary().count, 2);
    }

    #[test]
    fn p99_on_tiny_counts_tracks_the_maximum() {
        // With fewer than 100 samples, ceil(count * 0.99) == count, so
        // p99 must sit in the slowest sample's bucket — one outlier among
        // two samples is "the p99".
        let h = LatencyHistogram::default();
        h.record(1_000); // [512, 1024)
        h.record(1 << 30); // [2^30, 2^31)
        let s = h.summary();
        assert!(s.p50_ns < 2_048, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= (1 << 30), "p99 {}", s.p99_ns);
        // Rank boundary: with 99 fast + 1 slow the ceil-rank p99 target
        // is rank 99 — still the fast bucket; a second slow sample pushes
        // rank 100 of 101 into the slow bucket.
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1 << 30);
        let s = h.summary();
        assert!(s.p95_ns < 2_048, "p95 {}", s.p95_ns);
        assert!(
            s.p99_ns < 2_048,
            "p99 rank 99/100 is fast, got {}",
            s.p99_ns
        );
        h.record(1 << 30);
        let s = h.summary();
        assert!(
            s.p99_ns >= (1 << 30),
            "p99 rank 100/101 is slow, got {}",
            s.p99_ns
        );
    }

    #[test]
    fn percentile_ordering_is_monotone() {
        let h = LatencyHistogram::default();
        for i in 1..=1_000u64 {
            h.record(i * 1_000);
        }
        let s = h.summary();
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        assert!(s.mean_ns > 0);
    }
}
