//! The epoch-based request coalescer.
//!
//! # Epoch lifecycle
//!
//! 1. **Accumulate** — client threads stamp each request with a global
//!    submission sequence number and push it into a sharded queue. The
//!    worker sleeps until the queue is non-empty, then *lingers* up to
//!    [`ServeConfig::max_linger`] or until [`ServeConfig::drain_threshold`]
//!    requests are waiting, whichever comes first.
//! 2. **Drain** — up to [`ServeConfig::max_epoch_ops`] requests leave the
//!    queue, ordered by submission sequence. This ordered batch *is* the
//!    epoch's serialization: the commit order equals (all updates in
//!    submission order, then all queries).
//! 3. **Update phase** — updates are admitted one by one against an
//!    overlay of the forest (pending links/cuts/weights + a union–find
//!    over component representatives), which decides each request's exact
//!    sequential outcome without touching the forest. Contradictory pairs
//!    (cut of an edge linked earlier in the epoch, links whose acyclicity
//!    depends on an earlier cut) force a *flush* — the overlay commits via
//!    `batch_cut` / `batch_link` / weight updates — and admission resumes
//!    against the fresh forest. Conflict-free traffic commits as one flush.
//! 4. **Publish + query phase** — queries group by family and fan into
//!    one batch call each (`batch_connected`, `batch_path_aggregate`,
//!    ...), sharing the `O(k log(1 + n/k))` marked-sweep work across the
//!    epoch. With [`ServeConfig::pipeline_depth`] ≥ 1 (the default) the
//!    worker first *publishes* an immutable version-stamped copy of the
//!    committed state (see [`crate::version`]) and hands the query set to
//!    a dedicated executor thread — then immediately starts accumulating
//!    and committing epoch E+1's updates while epoch E's queries sweep
//!    the published version. A bounded channel back-pressures the worker
//!    so at most `pipeline_depth` query phases are ever in flight. At
//!    depth 0 the phases strictly alternate on the worker thread.
//! 5. **Respond** — per-request oneshot slots fill (updates right after
//!    the final flush + WAL append, queries as their phase completes —
//!    possibly concurrently with later update phases), latencies are
//!    recorded, and per-epoch stats append to the history ring.
//!
//! Durability ordering rule: a pipelined query phase is dispatched only
//! *after* its epoch's WAL append returned, so responses released
//! concurrently with later appends still never observe state that is not
//! at least written. (See the README's "Epoch pipelining & MVCC reads".)

use crate::agg::{ServeForest, ServeVertexWeight};
use crate::exec::{answer_requests_timed, family_index, Dispatcher};
use crate::request::{Request, Response, ResponseHandle, Slot};
use crate::stats::{EpochStats, LatencyHistogram, ServeStats};
use crate::telemetry::{
    ServeTelemetry, SpanLayout, StallReport, TelemetryDump, PHASE_ADMIT, PHASE_DISPATCH,
    PHASE_DRAIN, PHASE_IDLE, PHASE_PUBLISH, PHASE_QUERY, PHASE_RESPOND, PHASE_WAL,
};
use crate::version::{PublishedVersion, Snapshot, VersionTable};
use rc_core::{DynamicForest, ForestError, ForestState};
use rc_obs::{
    trace_sampled, CalibrationTable, CostModel, DispatchMode, DispatchStats, EpochTrace,
    HealthView, MetricsSnapshot, ObsServer, ObsServerConfig, ObsSource, Probe, RecycleOutcome,
    TraceDump, Watchdog, WatchdogConfig,
};
use rc_parlay::hashtable::edge_key;
use rc_store::{EpochRecord, FlushRecord, RecoveryReport, Store, StoreConfig, StoreError};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching policy and instrumentation knobs.
///
/// The policy trades latency for throughput: larger epochs amortize the
/// `O(k log(1 + n/k))` batch work over more requests (throughput up,
/// per-request latency up to `max_linger` higher); `drain_threshold`
/// bounds how long a hot queue waits, and `max_epoch_ops` caps per-epoch
/// work so one epoch cannot starve later arrivals.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Hard cap on requests drained into one epoch.
    pub max_epoch_ops: usize,
    /// Drain immediately once this many requests are queued ("drain when
    /// the queue exceeds N" — the adaptive part of the policy).
    pub drain_threshold: usize,
    /// Longest time the worker lingers waiting for more requests after
    /// the first one arrives.
    pub max_linger: Duration,
    /// Submission-queue shards (reduces producer contention).
    pub shards: usize,
    /// Record every request + response in commit order (tests/audits).
    pub record_commit_log: bool,
    /// Per-epoch stats retained in the history ring.
    pub epoch_history: usize,
    /// Maximum query phases in flight concurrently with later update
    /// phases. `0` = strict update→query alternation on the worker
    /// thread; `k ≥ 1` = MVCC pipelining — epoch E's queries sweep a
    /// published immutable version on a dedicated executor thread while
    /// the worker commits epoch E+1, with the worker back-pressured
    /// (blocked) once `k` query phases are outstanding.
    pub pipeline_depth: usize,
    /// Published versions retained for [`RcServe::snapshot_at`] /
    /// [`ServeClient::snapshot_at`] point-in-time reads; older versions
    /// are evicted (and their forest buffers recycled) as new epochs
    /// publish. Each retained version holds a full forest copy — keep
    /// this small.
    pub retained_versions: usize,
    /// [`EpochTrace`] records retained in the flight-recorder ring
    /// (newest win once full). Dump them via [`RcServe::flight_dump`] or
    /// a [`Request::DumpTelemetry`].
    pub flight_recorder: usize,
    /// Per-request trace sampling: capture a full causal span trace for
    /// a deterministic 1-in-N subset of requests (`0` disables, `1`
    /// captures everything). The decision is a pure function of
    /// `(trace_seed, submission seq)` — see [`rc_obs::trace_sampled`] —
    /// so the same seed and submission stream pick the same requests on
    /// every run.
    pub trace_sample: u64,
    /// Seed for the sampling decision.
    pub trace_seed: u64,
    /// End-to-end latency at/above which a request's trace is *always*
    /// captured into the slow ring, independent of sampling.
    /// `Duration::ZERO` disables slow capture.
    pub slow_request_threshold: Duration,
    /// Capacity of each captured-trace ring (sampled and slow).
    pub trace_ring: usize,
    /// Spawn the epoch-stall watchdog with this deadline: if the server
    /// stays busy (queued work or a thread mid-phase) with no completed
    /// epoch for longer than the deadline, `/health` and `/ready` flip
    /// unhealthy and a [`StallReport`] postmortem freezes. `None`
    /// disables the watchdog.
    pub stall_deadline: Option<Duration>,
    /// Per-family query dispatch policy: [`DispatchMode::Adaptive`]
    /// (default) routes each epoch's per-family fan-out to the batched /
    /// independent / sequential engine the online [`CostModel`] predicts
    /// cheapest; the `Always*` modes pin one engine (baselines, tests).
    /// Engine choice never changes any answer — only where the time
    /// goes.
    pub dispatch_mode: DispatchMode,
    /// Fraction of adaptive dispatch decisions that *explore* (run the
    /// least-observed engine to keep the cost table current) instead of
    /// exploiting the predicted-cheapest engine. Rolled deterministically
    /// from [`Self::trace_seed`]; clamped to `[0, 1]`.
    pub explore_frac: f64,
    /// Persist the learned calibration table here (CRC-framed, the
    /// rc-store codec discipline) on clean shutdown, and warm-start from
    /// it at startup when the file exists and decodes. `None` disables
    /// persistence; a torn or stale-format file is ignored (cold start).
    pub calibration_path: Option<std::path::PathBuf>,
    /// Fault injection for the watchdog tests: wedge the worker for
    /// [`Self::wedge_for`] at the start of each listed epoch ordinal
    /// (multiple entries exercise repeated stall/recover episodes).
    #[doc(hidden)]
    pub wedge_epochs: Vec<u64>,
    /// How long the injected wedge sleeps.
    #[doc(hidden)]
    pub wedge_for: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_epoch_ops: 8_192,
            drain_threshold: 1_024,
            max_linger: Duration::from_micros(200),
            shards: 8,
            record_commit_log: false,
            epoch_history: 64,
            pipeline_depth: 1,
            retained_versions: 2,
            flight_recorder: 256,
            trace_sample: 64,
            trace_seed: 0,
            slow_request_threshold: Duration::from_millis(100),
            trace_ring: 128,
            stall_deadline: None,
            dispatch_mode: DispatchMode::Adaptive,
            explore_frac: 0.05,
            calibration_path: None,
            wedge_epochs: Vec::new(),
            wedge_for: Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// Coalescing epochs with strict phase alternation — epoch E's
    /// queries answer on the worker thread before epoch E+1 drains. The
    /// non-pipelined baseline `serve_load` measures overlap against.
    pub fn coalesced() -> Self {
        ServeConfig {
            pipeline_depth: 0,
            ..Self::default()
        }
    }

    /// The default policy: coalescing epochs with MVCC pipelining at
    /// depth 1 — epoch E's query phase overlaps epoch E+1's update phase.
    pub fn pipelined() -> Self {
        Self::default()
    }

    /// Degenerate size-1 epochs — every request is its own batch, phases
    /// strictly alternating (a second thread has nothing to overlap when
    /// every epoch is one request). The throughput baseline the coalescer
    /// is measured against.
    pub fn unbatched() -> Self {
        ServeConfig {
            max_epoch_ops: 1,
            drain_threshold: 1,
            max_linger: Duration::ZERO,
            pipeline_depth: 0,
            ..Self::default()
        }
    }
}

/// One committed, WAL-ordered epoch as delivered to commit-tap
/// subscribers ([`RcServe::subscribe_commits`]): the epoch ordinal and
/// the exact batch groups it committed — the same [`EpochRecord`] the
/// durability WAL appends. Replication leaders stream these to
/// followers; events are sent *after* the epoch's durability barrier
/// (WAL append, when durable) and *before* its responses are released,
/// so a tapped record is never ahead of what the store acknowledged.
#[derive(Clone, Debug)]
pub struct CommitEvent {
    /// Epoch ordinal (1-based, monotone).
    pub epoch: u64,
    /// The committed batch groups, shared with every subscriber.
    pub record: Arc<EpochRecord>,
}

/// One committed request with its response, in commit order.
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// Epoch that committed the request (1-based).
    pub epoch: u64,
    /// Global submission sequence number.
    pub seq: u64,
    /// The request.
    pub request: Request,
    /// Its response.
    pub response: Response,
    /// MVCC version stamp: the epoch whose committed state this response
    /// observed. Updates carry their own epoch; queries carry the
    /// published version they swept — `≤ epoch`, strictly smaller when
    /// trailing epochs changed nothing (equal stamps always mean
    /// identical state).
    pub version: u64,
}

struct Pending {
    seq: u64,
    submitted: Instant,
    request: Request,
    slot: Arc<Slot>,
    /// Selected by the deterministic trace sampler at submit time.
    sampled: bool,
}

#[derive(Default)]
struct StatsInner {
    epochs: u64,
    ops: u64,
    updates: u64,
    queries: u64,
    flushes: u64,
    batch_sum: u64,
    max_batch: usize,
    history: VecDeque<EpochStats>,
}

struct Shared {
    cfg: ServeConfig,
    shards: Vec<Mutex<Vec<Pending>>>,
    qlen: AtomicUsize,
    seq: AtomicU64,
    /// Round-robin shard cursor for submissions.
    rr: AtomicUsize,
    accepting: AtomicBool,
    /// Wake mutex holds the shutdown flag; producers notify under it.
    wake: Mutex<bool>,
    wake_cv: Condvar,
    hist: Arc<LatencyHistogram>,
    stats: Mutex<StatsInner>,
    log: Mutex<Vec<LogEntry>>,
    /// Published MVCC versions (pipelined mode; empty at depth 0).
    versions: VersionTable,
    /// Metrics registry + flight recorder (see [`crate::telemetry`]).
    tel: ServeTelemetry,
    /// Commit-tap subscribers ([`RcServe::subscribe_commits`]); senders
    /// whose receiver hung up are pruned at the next notification.
    taps: Mutex<Vec<mpsc::Sender<CommitEvent>>>,
    /// Fast path: set once the first tap subscribes, read per epoch
    /// without taking the `taps` lock.
    tapped: AtomicBool,
    /// The adaptive-dispatch engine picker: shared cost model + mode.
    /// Both query sites (inline worker and pipelined executor) consult
    /// it; observations feed it in every mode.
    dispatch: Dispatcher,
}

/// A running coalescer: owns the forest on a dedicated worker thread.
///
/// Create with [`RcServe::start`], hand [`ServeClient`]s to client
/// threads, stop with [`RcServe::shutdown`] (drains the queue and returns
/// the forest). Dropping without `shutdown` also stops the worker.
pub struct RcServe {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<ServeForest>>,
    watchdog: Option<Watchdog>,
}

/// Cloneable submission handle; safe to share across client threads.
#[derive(Clone)]
pub struct ServeClient {
    shared: Arc<Shared>,
    /// Per-request deadline stamped onto every handle this client
    /// submits (see [`ServeClient::with_deadline`]).
    deadline: Option<Duration>,
}

impl RcServe {
    /// Start serving `forest` under `cfg` on a dedicated worker thread.
    /// State lives (and dies) in RAM; see [`RcServe::start_durable`] for
    /// the crash-safe variant.
    pub fn start(forest: ServeForest, cfg: ServeConfig) -> RcServe {
        Self::start_inner(forest, cfg, None, 0)
    }

    /// Start a **durable** server: open (or create) the store at
    /// `durability`, recover the forest — newest valid snapshot + WAL
    /// suffix replayed in epoch batches — and serve it with every
    /// committed epoch appended to the WAL *before* its responses are
    /// released. `bootstrap` seeds an empty store directory with an
    /// initial forest (ignored once the directory has history).
    ///
    /// Durability level follows the store's [`rc_store::SyncPolicy`]:
    /// per-epoch fsync makes every acknowledged update survive power
    /// loss; interval/never trade that for latency. Clean
    /// [`RcServe::shutdown`] always flushes and fsyncs the WAL tail,
    /// whatever the policy.
    pub fn start_durable(
        cfg: ServeConfig,
        durability: StoreConfig,
        bootstrap: Option<&ForestState>,
    ) -> Result<(RcServe, RecoveryReport), StoreError> {
        let recovered = Store::open_with_bootstrap(durability, bootstrap)?;
        let first_epoch = recovered.report.last_epoch;
        Ok((
            Self::start_inner(recovered.forest, cfg, Some(recovered.store), first_epoch),
            recovered.report,
        ))
    }

    fn start_inner(
        forest: ServeForest,
        cfg: ServeConfig,
        store: Option<Store>,
        first_epoch: u64,
    ) -> RcServe {
        let hist = Arc::new(LatencyHistogram::default());
        let tel = ServeTelemetry::new(&cfg, Arc::clone(&hist));
        // The cost model shares the trace seed so a fixed-seed run
        // replays the same explore/exploit schedule (and the oracle can
        // pin it). A persisted calibration table warm-starts the cells;
        // a missing or torn file is just a cold start.
        let model = Arc::new(CostModel::new(cfg.explore_frac, cfg.trace_seed));
        if let Some(path) = &cfg.calibration_path {
            if let Some(table) = CalibrationTable::load(path) {
                model.load_table(&table);
            }
        }
        let dispatch = Dispatcher::new(model, cfg.dispatch_mode);
        if let Some(store) = &store {
            // The store created its metric handles at open; attach them
            // so snapshots carry WAL/snapshot/recovery series too, and
            // hand the handles over so `/traces` can include the WAL
            // append/fsync exemplars.
            store.metrics().register_into(&tel.registry);
            tel.set_store_metrics(store.metrics().clone());
        }
        let shared = Arc::new(Shared {
            shards: (0..cfg.shards.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            qlen: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            rr: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            wake: Mutex::new(false),
            wake_cv: Condvar::new(),
            hist,
            stats: Mutex::new(StatsInner::default()),
            log: Mutex::new(Vec::new()),
            versions: VersionTable::default(),
            tel,
            taps: Mutex::new(Vec::new()),
            tapped: AtomicBool::new(false),
            dispatch,
            cfg,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("rc-serve-epoch".into())
            .spawn(move || Worker::new(worker_shared, store, first_epoch).run(forest))
            .expect("spawn rc-serve worker");
        let watchdog = shared.cfg.stall_deadline.map(|deadline| {
            let probe_shared = Arc::clone(&shared);
            let stall_shared = Arc::clone(&shared);
            Watchdog::spawn(
                WatchdogConfig::new(deadline),
                Arc::clone(&shared.tel.health),
                move || Probe {
                    progress: probe_shared.tel.progress(),
                    busy: probe_shared.qlen.load(Ordering::SeqCst) > 0
                        || probe_shared.tel.phase_active(),
                    phase: probe_shared.tel.current_phase(),
                    queued: probe_shared.qlen.load(Ordering::SeqCst) as u64,
                },
                move |info| stall_shared.tel.note_stall(info),
            )
        });
        RcServe {
            shared,
            worker: Some(worker),
            watchdog,
        }
    }

    /// A new submission handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            shared: Arc::clone(&self.shared),
            deadline: None,
        }
    }

    /// Subscribe to committed epochs: every state-changing epoch from
    /// here on is delivered as a [`CommitEvent`] — after its durability
    /// barrier, before its responses release — in strict epoch order.
    /// The replication leader feeds followers from this tap. Dropping
    /// the receiver unsubscribes (the dead sender is pruned at the next
    /// commit); the channel is unbounded, so a slow subscriber buffers
    /// rather than back-pressuring the epoch loop.
    pub fn subscribe_commits(&self) -> Receiver<CommitEvent> {
        let (tx, rx) = mpsc::channel();
        self.shared
            .taps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(tx);
        self.shared.tapped.store(true, Ordering::SeqCst);
        rx
    }

    /// Aggregate statistics so far. Stats for an epoch are booked after
    /// its responses fill, so a client racing the worker may observe the
    /// previous epoch; read via a retained [`ServeClient`] after
    /// [`RcServe::shutdown`] for exact totals.
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.shared)
    }

    /// The most recent per-epoch stats (up to `cfg.epoch_history`).
    pub fn epoch_history(&self) -> Vec<EpochStats> {
        epoch_history_of(&self.shared)
    }

    /// Point-in-time snapshot of every registered metric — serve phase
    /// histograms, request counters, store/WAL series when durable, and
    /// (with the `pool-metrics` feature) the work-stealing pool's
    /// counters. Callable at any time, including after shutdown.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.tel.snapshot()
    }

    /// The flight recorder's retained [`EpochTrace`]s, oldest first.
    pub fn flight_dump(&self) -> Vec<EpochTrace> {
        self.shared.tel.flight.dump()
    }

    /// [`Self::flight_dump`] into a caller-provided buffer, reusing its
    /// allocation — the per-row capture path for pollers that dump every
    /// few milliseconds (`serve_load` does, per measured row).
    pub fn flight_dump_into(&self, out: &mut Vec<EpochTrace>) {
        self.shared.tel.flight.dump_into(out);
    }

    /// The captured request traces: the deterministic 1-in-N sampled
    /// ring, the always-captured slow ring, and the latency exemplars
    /// (request end-to-end plus, when durable, WAL append/fsync).
    pub fn request_traces(&self) -> TraceDump {
        self.shared.tel.traces()
    }

    /// The adaptive-dispatch cost model — learned per-(family, engine,
    /// k-octave) table, per-family crossover estimates, and decision
    /// counters — as JSON (the `/costmodel` endpoint body).
    pub fn cost_model_json(&self) -> String {
        self.shared
            .dispatch
            .model
            .to_json(self.shared.cfg.dispatch_mode.name())
    }

    /// Cumulative dispatch counters: per-(family, engine) decision and
    /// query counts plus the explore total.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.shared.dispatch.model.dispatch_stats()
    }

    /// Snapshot of the learned calibration table (persistable via
    /// [`rc_obs::CalibrationTable::save`] even without
    /// [`ServeConfig::calibration_path`]).
    pub fn calibration_table(&self) -> CalibrationTable {
        self.shared.dispatch.model.table()
    }

    /// The postmortem frozen by the epoch-stall watchdog, if a stall has
    /// ever been declared (requires [`ServeConfig::stall_deadline`]).
    pub fn stall_report(&self) -> Option<StallReport> {
        self.shared.tel.stall_report()
    }

    /// Liveness as `/health` reports it: healthy/ready flags, stall
    /// count, and a human-readable detail line.
    pub fn health_view(&self) -> HealthView {
        self.shared
            .tel
            .health_view(self.shared.accepting.load(Ordering::SeqCst))
    }

    /// Start the live observability endpoint for this server: a
    /// zero-dependency blocking HTTP/1.0 listener answering `/metrics`
    /// (Prometheus text), `/metrics.json`, `/health`, `/ready`,
    /// `/flight`, `/traces`, and `/costmodel` (the live adaptive-dispatch
    /// cost table), plus the binary `DUMP_TELEMETRY` frame protocol. The endpoint holds only the shared telemetry state, so
    /// it keeps answering (unready) after shutdown until dropped.
    pub fn serve_obs(&self, cfg: ObsServerConfig) -> std::io::Result<ObsServer> {
        ObsServer::start(
            cfg,
            Arc::new(ObsBridge {
                shared: Arc::clone(&self.shared),
            }),
        )
    }

    /// The flight-recorder dump frozen when the worker failed (WAL
    /// append error or poisoned compaction); `None` while healthy. The
    /// failing epoch's partial trace is the last entry with
    /// [`EpochTrace::failed`] set.
    pub fn failure_dump(&self) -> Option<Vec<EpochTrace>> {
        self.shared.tel.failure_dump()
    }

    /// Drain the commit log recorded so far (`record_commit_log` only),
    /// normalized to commit order: by epoch, updates (in submission
    /// order) before queries.
    pub fn take_commit_log(&self) -> Vec<LogEntry> {
        take_log_of(&self.shared)
    }

    /// The newest published MVCC version id. `None` until a pipelined
    /// epoch with queries has published one (strict-alternation servers
    /// never publish).
    pub fn latest_version(&self) -> Option<u64> {
        self.shared.versions.latest().map(|v| v.version)
    }

    /// Pin the newest published version for consistent point-in-time
    /// multi-query reads. `None` when nothing has been published yet.
    pub fn snapshot_latest(&self) -> Option<Snapshot> {
        self.shared
            .versions
            .latest()
            .map(|inner| Snapshot { inner })
    }

    /// Pin the retained version stamped `version` (the retention window
    /// is [`ServeConfig::retained_versions`]); `None` once evicted, or if
    /// that stamp was never published.
    pub fn snapshot_at(&self, version: u64) -> Option<Snapshot> {
        self.shared
            .versions
            .at(version)
            .map(|inner| Snapshot { inner })
    }

    /// Stop accepting, drain every queued request, join the worker and
    /// return the (fully committed) forest.
    pub fn shutdown(mut self) -> ServeForest {
        // Stop the watchdog first: the shutdown drain makes progress,
        // but a wedged-looking final epoch must not flip health while
        // the server is deliberately going away.
        if let Some(mut dog) = self.watchdog.take() {
            dog.stop();
        }
        self.signal_shutdown();
        self.worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("rc-serve worker panicked")
    }

    fn signal_shutdown(&self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        let mut g = self.shared.wake.lock().unwrap_or_else(|e| e.into_inner());
        *g = true;
        self.shared.wake_cv.notify_all();
    }
}

impl Drop for RcServe {
    fn drop(&mut self) {
        if let Some(mut dog) = self.watchdog.take() {
            dog.stop();
        }
        if let Some(w) = self.worker.take() {
            self.signal_shutdown();
            let _ = w.join();
        }
    }
}

/// Adapter exposing the shared telemetry state to the rc-obs TCP
/// endpoint ([`RcServe::serve_obs`]).
struct ObsBridge {
    shared: Arc<Shared>,
}

impl ObsSource for ObsBridge {
    fn metrics(&self) -> MetricsSnapshot {
        self.shared.tel.snapshot()
    }

    fn flight(&self) -> Vec<EpochTrace> {
        self.shared.tel.flight.dump()
    }

    fn traces(&self) -> TraceDump {
        self.shared.tel.traces()
    }

    fn health(&self) -> HealthView {
        self.shared
            .tel
            .health_view(self.shared.accepting.load(Ordering::SeqCst))
    }

    fn costmodel(&self) -> String {
        self.shared
            .dispatch
            .model
            .to_json(self.shared.cfg.dispatch_mode.name())
    }
}

impl ServeClient {
    /// A clone of this client whose every submission carries a
    /// per-request deadline: a [`ResponseHandle::wait`] that has not
    /// been answered within `deadline` resolves to
    /// [`Response::TimedOut`] instead of blocking forever — the bounded
    /// wait a caller needs against a wedged worker or a stalled
    /// follower. The deadline bounds *waiting only*: the request may
    /// still commit server-side after the client gave up.
    pub fn with_deadline(&self, deadline: Duration) -> ServeClient {
        ServeClient {
            shared: Arc::clone(&self.shared),
            deadline: Some(deadline),
        }
    }

    /// Submit a request; returns immediately with a oneshot handle.
    pub fn submit(&self, request: Request) -> ResponseHandle {
        let slot = Arc::new(Slot::default());
        let handle = ResponseHandle {
            slot: Arc::clone(&slot),
            deadline: self.deadline,
        };
        if !self.shared.accepting.load(Ordering::SeqCst) {
            slot.fill(Response::Rejected);
            return handle;
        }
        // Round-robin shard choice; the seq stamp is taken *under* the
        // shard lock so every shard's vector stays sorted by seq — the
        // invariant the worker's k-way merge drain relies on. The qlen
        // increment happens under the same lock, *before* the push: the
        // worker's drain subtracts however many requests it merged, and
        // any request visible in a shard must already be counted or that
        // subtraction could transiently drive qlen below zero.
        let shard = self.shared.rr.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        let seq;
        let len;
        {
            let mut q = self.shared.shards[shard]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
            len = self.shared.qlen.fetch_add(1, Ordering::SeqCst) + 1;
            q.push(Pending {
                seq,
                submitted: Instant::now(),
                request,
                slot,
                // Trace id = seq + 1 (0 means "no trace context"): the
                // sampling decision is sealed here, at submit, so the
                // same seed + submission stream capture the same set.
                sampled: trace_sampled(
                    self.shared.cfg.trace_seed,
                    seq + 1,
                    self.shared.cfg.trace_sample,
                ),
            });
        }
        // Wake the worker on the empty→non-empty edge and once the drain
        // threshold is reached; notifying under the lock pairs with the
        // worker's check-then-wait.
        if len == 1 || len == self.shared.cfg.drain_threshold {
            let _g = self.shared.wake.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.wake_cv.notify_all();
        }
        // Close the shutdown race: if `accepting` flipped while we were
        // enqueuing, the worker may already have taken its final look at
        // the queue and exited. Our `qlen` increment is SeqCst-ordered
        // after the worker's last zero read in that case, so this load is
        // guaranteed to observe `false` — reclaim the request if it is
        // still queued (if it is gone, the worker owns it and will answer).
        if !self.shared.accepting.load(Ordering::SeqCst) {
            let reclaimed = {
                let mut q = self.shared.shards[shard]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                q.iter().position(|p| p.seq == seq).map(|at| q.remove(at))
            };
            if let Some(p) = reclaimed {
                self.shared.qlen.fetch_sub(1, Ordering::SeqCst);
                p.slot.fill(Response::Rejected);
            }
        }
        handle
    }

    /// Submit and block for the response.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Aggregate statistics (see [`RcServe::stats`] for the race caveat;
    /// exact once the server has shut down).
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.shared)
    }

    /// The most recent per-epoch stats.
    pub fn epoch_history(&self) -> Vec<EpochStats> {
        epoch_history_of(&self.shared)
    }

    /// Metrics snapshot (see [`RcServe::metrics`]); works after
    /// shutdown, which makes a retained client the way to read final
    /// totals.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.tel.snapshot()
    }

    /// The flight recorder's retained traces (see
    /// [`RcServe::flight_dump`]).
    pub fn flight_dump(&self) -> Vec<EpochTrace> {
        self.shared.tel.flight.dump()
    }

    /// The failure-frozen dump (see [`RcServe::failure_dump`]).
    pub fn failure_dump(&self) -> Option<Vec<EpochTrace>> {
        self.shared.tel.failure_dump()
    }

    /// [`ServeClient::flight_dump`] into a caller-provided buffer (see
    /// [`RcServe::flight_dump_into`]).
    pub fn flight_dump_into(&self, out: &mut Vec<EpochTrace>) {
        self.shared.tel.flight.dump_into(out);
    }

    /// The captured request traces (see [`RcServe::request_traces`]).
    pub fn request_traces(&self) -> TraceDump {
        self.shared.tel.traces()
    }

    /// The watchdog's stall postmortem (see [`RcServe::stall_report`]).
    pub fn stall_report(&self) -> Option<StallReport> {
        self.shared.tel.stall_report()
    }

    /// The adaptive-dispatch cost model as JSON (see
    /// [`RcServe::cost_model_json`]).
    pub fn cost_model_json(&self) -> String {
        self.shared
            .dispatch
            .model
            .to_json(self.shared.cfg.dispatch_mode.name())
    }

    /// Cumulative dispatch counters (see [`RcServe::dispatch_stats`]).
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.shared.dispatch.model.dispatch_stats()
    }

    /// Liveness as `/health` reports it (see [`RcServe::health_view`]).
    pub fn health_view(&self) -> HealthView {
        self.shared
            .tel
            .health_view(self.shared.accepting.load(Ordering::SeqCst))
    }

    /// Drain the commit log (`record_commit_log` only), normalized to
    /// commit order. Like [`ServeClient::stats`], exact once the server
    /// has shut down.
    pub fn take_commit_log(&self) -> Vec<LogEntry> {
        take_log_of(&self.shared)
    }

    /// The newest published MVCC version id (see
    /// [`RcServe::latest_version`]).
    pub fn latest_version(&self) -> Option<u64> {
        self.shared.versions.latest().map(|v| v.version)
    }

    /// Pin the newest published version (see
    /// [`RcServe::snapshot_latest`]).
    pub fn snapshot_latest(&self) -> Option<Snapshot> {
        self.shared
            .versions
            .latest()
            .map(|inner| Snapshot { inner })
    }

    /// Pin the retained version stamped `version` (see
    /// [`RcServe::snapshot_at`]).
    pub fn snapshot_at(&self, version: u64) -> Option<Snapshot> {
        self.shared
            .versions
            .at(version)
            .map(|inner| Snapshot { inner })
    }
}

fn take_log_of(shared: &Shared) -> Vec<LogEntry> {
    let mut log = std::mem::take(&mut *shared.log.lock().unwrap_or_else(|e| e.into_inner()));
    // Pipelined epochs append their query entries when the query phase
    // completes, which can land after a later epoch's update entries —
    // normalize to commit order (epoch, updates-before-queries, seq).
    log.sort_unstable_by_key(|e| (e.epoch, !e.request.is_update(), e.seq));
    log
}

fn stats_of(shared: &Shared) -> ServeStats {
    let (traces_sampled, traces_slow) = shared.tel.capture_totals();
    let s = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
    ServeStats {
        traces_sampled,
        traces_slow,
        epochs: s.epochs,
        ops: s.ops,
        updates: s.updates,
        queries: s.queries,
        flushes: s.flushes,
        mean_batch: if s.epochs == 0 {
            0.0
        } else {
            s.batch_sum as f64 / s.epochs as f64
        },
        max_batch: s.max_batch,
        latency: shared.hist.summary(),
    }
}

fn epoch_history_of(shared: &Shared) -> Vec<EpochStats> {
    shared
        .stats
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .history
        .iter()
        .copied()
        .collect()
}

// ---------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------

struct Worker {
    shared: Arc<Shared>,
    epoch: u64,
    /// The durability store, when this server was started with
    /// [`RcServe::start_durable`].
    store: Option<Store>,
    /// Pipelined mode: sender half of the bounded query-job channel
    /// (capacity `pipeline_depth - 1`, so a blocked `send` is the
    /// back-pressure that caps in-flight query phases at
    /// `pipeline_depth`). `None` at depth 0.
    qtx: Option<SyncSender<QueryJob>>,
    qworker: Option<JoinHandle<()>>,
    /// The last state-changing committed epoch — the version id the next
    /// query phase must observe (trailing no-op epochs keep it).
    state_version: u64,
    /// Journaled change records of recent epochs, newest last: the
    /// catch-up feed for recycled version buffers.
    recent: VecDeque<(u64, Vec<FlushRecord>)>,
    /// Every state-changing epoch `> records_floor` is present in
    /// `recent`; a reclaimed buffer older than the floor cannot catch up
    /// and is dropped instead.
    records_floor: u64,
    /// Reclaimed version buffers awaiting catch-up + republication.
    spares: Vec<ShadowBuf>,
    /// Evicted versions whose buffers may still be pinned by snapshots
    /// or an in-flight query phase; reclaimed once the last pin drops.
    evicted: Vec<Arc<PublishedVersion>>,
    /// Set when a compaction failure poisoned the store: the epoch
    /// itself committed, so the flight-recorder dump freezes only after
    /// the in-flight query phase drains at loop exit.
    poisoned_epoch: Option<u64>,
}

/// A reclaimed forest buffer holding the state of `version`, waiting to
/// be caught up to the current state and republished.
struct ShadowBuf {
    version: u64,
    forest: ServeForest,
}

/// One epoch's query phase, handed to the executor thread together with
/// the published version it must observe.
struct QueryJob {
    epoch: u64,
    version: Arc<PublishedVersion>,
    queries: Vec<Pending>,
    /// Update-side stats; the executor fills `query_ns`/`handoff_ns`
    /// (true executor-side timings) and books it.
    stats: EpochStats,
    /// When the worker handed the job over — pickup minus this is the
    /// handoff latency.
    dispatched: Instant,
    /// The epoch's update-side span layout (drain/admit/commit/wal/
    /// publish durations + the epoch start instant); the executor adds
    /// handoff/query and captures the query traces against it. Its
    /// `epoch_start` also stamps the epoch's wall time.
    layout: SpanLayout,
}

impl Worker {
    fn new(shared: Arc<Shared>, store: Option<Store>, first_epoch: u64) -> Self {
        let depth = shared.cfg.pipeline_depth;
        let (qtx, qworker) = if depth > 0 {
            let (tx, rx) = mpsc::sync_channel::<QueryJob>(depth - 1);
            let exec_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("rc-serve-query".into())
                .spawn(move || query_executor(exec_shared, rx))
                .expect("spawn rc-serve query executor");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        Worker {
            shared,
            epoch: first_epoch,
            store,
            qtx,
            qworker,
            state_version: first_epoch,
            recent: VecDeque::new(),
            records_floor: first_epoch,
            spares: Vec::new(),
            evicted: Vec::new(),
            poisoned_epoch: None,
        }
    }

    fn run(mut self, mut forest: ServeForest) -> ServeForest {
        loop {
            self.shared.tel.set_worker_phase(PHASE_IDLE);
            if self.shared.qlen.load(Ordering::SeqCst) == 0 {
                // About to sleep: under interval sync, fsync the dirty
                // tail now — otherwise an idle lull after a burst would
                // leave it volatile far past the configured interval.
                if let Some(store) = &mut self.store {
                    let _ = store.idle_sync();
                }
            }
            if !self.wait_for_epoch() && self.shared.qlen.load(Ordering::SeqCst) == 0 {
                break; // shutdown with an empty queue
            }
            let queue_depth = self.shared.qlen.load(Ordering::SeqCst);
            self.shared.tel.set_worker_phase(PHASE_DRAIN);
            let epoch_start = Instant::now();
            let batch = self.drain();
            let drain_ns = epoch_start.elapsed().as_nanos() as u64;
            if batch.is_empty() {
                continue;
            }
            self.shared.tel.observe_queue_depth(queue_depth);
            let ok = self.process_epoch(&mut forest, batch, queue_depth, epoch_start, drain_ns);
            // Heartbeat: the watchdog's progress counter. Failed epochs
            // tick too — the worker is stopping deliberately, which the
            // health state reports as failed, not stalled.
            self.shared.tel.worker_tick();
            if !ok {
                // Durability failed: every queued request is answered
                // Rejected (never left hanging), then the worker stops.
                self.reject_drain();
                break;
            }
        }
        self.shared.tel.set_worker_phase(PHASE_IDLE);
        // Stop the query executor: dropping the sender ends its receive
        // loop; joining guarantees every dispatched epoch has released
        // its responses and booked its stats before shutdown returns.
        drop(self.qtx.take());
        if let Some(h) = self.qworker.take() {
            h.join().expect("rc-serve query executor panicked");
        }
        if let Some(epoch) = self.poisoned_epoch.take() {
            // Every in-flight query phase has drained, so the poisoned
            // epoch's trace is complete — freeze the postmortem now.
            self.shared.tel.freeze(epoch);
        }
        if let Some(store) = self.store.take() {
            // Clean shutdown must not lose an acknowledged epoch: flush
            // and fsync whatever tail the sync policy left pending.
            store.close().expect("flush + fsync WAL on shutdown");
        }
        if let Some(path) = &self.shared.cfg.calibration_path {
            // Persist the learned cost table for a warm restart. Queries
            // have all drained (the executor joined above), so the cells
            // are final; a failed write only costs the next start its
            // warm-up.
            let _ = self.shared.dispatch.model.table().save(path);
        }
        forest
    }

    /// After a durability failure: stop accepting and resolve every
    /// queued request as `Rejected`, so no client blocks forever on a
    /// slot the dead worker would never fill. (Requests that race the
    /// `accepting` flip are reclaimed and rejected by their submitter —
    /// the same closing argument as `RcServe::shutdown`.)
    fn reject_drain(&self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        while self.shared.qlen.load(Ordering::SeqCst) > 0 {
            for p in self.drain() {
                p.slot.fill(Response::Rejected);
            }
        }
    }

    /// Sleep until there is work, then linger per policy. Returns `false`
    /// once shutdown is signalled.
    fn wait_for_epoch(&self) -> bool {
        let cfg = &self.shared.cfg;
        let mut g = self.shared.wake.lock().unwrap_or_else(|e| e.into_inner());
        // Phase 1: wait for any work.
        loop {
            if *g {
                return false;
            }
            if self.shared.qlen.load(Ordering::SeqCst) > 0 {
                break;
            }
            g = self
                .shared
                .wake_cv
                .wait(g)
                .unwrap_or_else(|e| e.into_inner());
        }
        // Phase 2: linger for coalescing.
        let t0 = Instant::now();
        loop {
            if *g {
                return false;
            }
            if self.shared.qlen.load(Ordering::SeqCst) >= cfg.drain_threshold {
                return true;
            }
            let elapsed = t0.elapsed();
            if elapsed >= cfg.max_linger {
                return true;
            }
            let (g2, _) = self
                .shared
                .wake_cv
                .wait_timeout(g, cfg.max_linger - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
        }
    }

    /// Pull up to `max_epoch_ops` requests in global submission order:
    /// a k-way merge over the (individually seq-sorted) shards, draining
    /// only each shard's merged prefix. `O(cap · shards)` — leftovers stay
    /// queued in place, so a deep backlog never gets reshuffled.
    fn drain(&self) -> Vec<Pending> {
        let cap = self.shared.cfg.max_epoch_ops.max(1);
        let mut guards: Vec<_> = self
            .shared
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        let mut take = vec![0usize; guards.len()];
        let mut total = 0usize;
        while total < cap {
            let mut best: Option<usize> = None;
            for (s, g) in guards.iter().enumerate() {
                if take[s] < g.len()
                    && best.is_none_or(|b: usize| g[take[s]].seq < guards[b][take[b]].seq)
                {
                    best = Some(s);
                }
            }
            let Some(s) = best else { break };
            take[s] += 1;
            total += 1;
        }
        let mut merged: Vec<Pending> = Vec::with_capacity(total);
        for (s, g) in guards.iter_mut().enumerate() {
            merged.extend(g.drain(..take[s]));
        }
        drop(guards);
        merged.sort_unstable_by_key(|p| p.seq);
        self.shared.qlen.fetch_sub(merged.len(), Ordering::SeqCst);
        merged
    }

    /// Serve one epoch. Returns `false` when durability failed — the
    /// epoch's requests have then all been answered `Rejected` and the
    /// caller must stop the loop (the in-memory forest may be ahead of
    /// the durable state, so continuing to serve would acknowledge reads
    /// of updates that were never persisted).
    fn process_epoch(
        &mut self,
        forest: &mut ServeForest,
        batch: Vec<Pending>,
        queue_depth: usize,
        epoch_start: Instant,
        drain_ns: u64,
    ) -> bool {
        // Telemetry dumps answer at the drain boundary, before this
        // epoch commits anything: the dump reflects exactly the
        // committed prefix, never a half-applied epoch.
        let (batch, dumps): (Vec<Pending>, Vec<Pending>) = batch
            .into_iter()
            .partition(|p| !matches!(p.request, Request::DumpTelemetry));
        for p in dumps {
            self.shared
                .hist
                .record(p.submitted.elapsed().as_nanos() as u64);
            p.slot.fill(Response::Telemetry(Box::new(TelemetryDump {
                snapshot: self.shared.tel.snapshot(),
                traces: self.shared.tel.flight.dump(),
            })));
        }
        if batch.is_empty() {
            return true;
        }
        self.epoch += 1;
        let pipelined = self.qtx.is_some();
        let (mut updates, queries): (Vec<Pending>, Vec<Pending>) =
            batch.into_iter().partition(|p| p.request.is_update());
        let mut trace = EpochTrace {
            epoch: self.epoch,
            batch: (updates.len() + queries.len()) as u32,
            updates: updates.len() as u32,
            queries: queries.len() as u32,
            queue_depth: queue_depth as u32,
            drain_ns,
            ..EpochTrace::default()
        };

        // ---- update phase ----
        self.shared.tel.set_worker_phase(PHASE_ADMIT);
        if self.shared.cfg.wedge_epochs.contains(&self.epoch) {
            // Fault injection for the stall-watchdog tests: wedge the
            // worker mid-epoch with its phase published and the batch
            // undrained-looking (queued work keeps arriving), so the
            // watchdog sees busy-with-no-progress.
            std::thread::sleep(self.shared.cfg.wedge_for);
        }
        let t0 = Instant::now();
        // The journal feeds the WAL, in pipelined mode the
        // published-version catch-up, and any commit-tap subscribers
        // (the same batch groups, reused for all three).
        let tapped = self.shared.tapped.load(Ordering::SeqCst);
        let mut phase = UpdatePhase::with_journal(self.store.is_some() || pipelined || tapped);
        let mut update_results: Vec<Result<(), ForestError>> = Vec::with_capacity(updates.len());
        for p in &updates {
            update_results.push(phase.admit(forest, &p.request));
        }
        phase.flush(forest);
        // Commit propagation is the overlay flushes (forced + final);
        // admission is the rest of the loop.
        trace.commit_ns = phase.flush_ns;
        trace.admit_ns = (t0.elapsed().as_nanos() as u64).saturating_sub(phase.flush_ns);
        let mut journal = phase.take_journal();
        self.shared.tel.set_worker_phase(PHASE_WAL);
        let t_wal = Instant::now();
        // Durability barrier: the epoch's committed batches reach the WAL
        // *before* any response slot fills or any query phase dispatches,
        // so an acknowledged update — or a query answer released
        // concurrently with later appends — is always backed by at least
        // a written (and, under per-epoch sync, fsynced) record.
        let mut store_failed = false;
        if let Some(store) = &mut self.store {
            if !journal.is_empty() {
                // Exemplar context for the append/fsync latency octaves:
                // the epoch's first sampled update, else its first
                // update, links a slow WAL bucket back to a trace.
                let ctx = updates
                    .iter()
                    .find(|p| p.sampled)
                    .or_else(|| updates.first())
                    .map_or(0, |p| p.seq + 1);
                store.note_trace_context(ctx);
                let rec = EpochRecord {
                    epoch: self.epoch,
                    flushes: std::mem::take(&mut journal),
                };
                if let Err(e) = store.append_epoch(&rec) {
                    // An environmental I/O failure (disk full, dir gone)
                    // must not panic the worker with response slots
                    // unfilled — that would hang every blocked client.
                    // The failed append was rolled back, so nothing of
                    // this epoch is durable: reject it and signal stop.
                    eprintln!(
                        "rc-serve: epoch {}: WAL append failed: {e}; \
                         rejecting requests and stopping",
                        self.epoch
                    );
                    drop(self.store.take()); // best-effort flush of the consistent prefix
                    for p in updates.iter().chain(queries.iter()) {
                        p.slot.fill(Response::Rejected);
                    }
                    // Postmortem: the failing epoch's partial trace
                    // (phases up to the failed append) enters the ring,
                    // and the dump freezes for `failure_dump()`.
                    trace.wal_ns = t_wal.elapsed().as_nanos() as u64;
                    trace.flushes = phase.flushes as u32;
                    trace.failed = true;
                    trace.epoch_wall_ns = epoch_start.elapsed().as_nanos() as u64;
                    self.shared.tel.note_failure(trace);
                    return false;
                }
                if store.wants_compaction() {
                    // Unlike a failed append, a failed compaction is not
                    // a loss for *this* epoch — it is already durable in
                    // the WAL, so its responses go out normally. But the
                    // store may now be half-truncated (the WAL poisons
                    // itself in that case), so serving further epochs
                    // could acknowledge updates that can never persist:
                    // finish this epoch, then stop.
                    if let Err(e) = store.compact(&forest.export_state()) {
                        eprintln!(
                            "rc-serve: epoch {}: WAL compaction failed: {e}; \
                             finishing this epoch, then stopping",
                            self.epoch
                        );
                        store_failed = true;
                        drop(self.store.take()); // poison-aware Drop: no stray writes
                    }
                }
                journal = rec.flushes;
            }
        }
        trace.wal_ns = t_wal.elapsed().as_nanos() as u64;
        if store_failed {
            // The epoch committed (its WAL append succeeded), but the
            // store is poisoned: mark the trace and freeze the dump at
            // loop exit, once any in-flight query phase has drained.
            trace.failed = true;
            self.poisoned_epoch = Some(self.epoch);
        }
        // MVCC bookkeeping: a state-changing epoch becomes the current
        // version, and its batch groups join the catch-up feed.
        if !journal.is_empty() {
            self.state_version = self.epoch;
            if tapped {
                // Notify commit-tap subscribers after the durability
                // barrier, before any response slot fills: a shipped
                // record is never ahead of the leader's own store.
                let event = CommitEvent {
                    epoch: self.epoch,
                    record: Arc::new(EpochRecord {
                        epoch: self.epoch,
                        flushes: journal.clone(),
                    }),
                };
                let mut taps = self.shared.taps.lock().unwrap_or_else(|e| e.into_inner());
                taps.retain(|tx| tx.send(event.clone()).is_ok());
            }
            if pipelined {
                self.recent.push_back((self.epoch, journal));
                let cap =
                    self.shared.cfg.retained_versions.max(1) + self.shared.cfg.pipeline_depth + 8;
                while self.recent.len() > cap {
                    let (e, _) = self.recent.pop_front().expect("len checked");
                    self.records_floor = e;
                }
            }
        }
        let update_ns = t0.elapsed().as_nanos() as u64;
        let flushes = phase.flushes;
        trace.flushes = flushes as u32;
        let updates_len = updates.len();
        // Span layout for this epoch's request traces: the update-side
        // phases every request rode through. The query paths extend it
        // with publish/handoff/query durations below.
        let mut layout = SpanLayout::new(self.epoch, epoch_start);
        layout.drain_ns = drain_ns;
        layout.admit_ns = trace.admit_ns;
        layout.commit_ns = trace.commit_ns;
        // In-memory servers still time the (empty) durability-barrier
        // section; don't surface those few ns as a "wal" span.
        if self.store.is_some() {
            layout.wal_ns = trace.wal_ns;
        }
        self.shared.tel.set_worker_phase(PHASE_RESPOND);
        let t_respond = Instant::now();
        for (p, r) in updates.iter().zip(&update_results) {
            let e2e = p.submitted.elapsed().as_nanos() as u64;
            self.shared.hist.record(e2e);
            p.slot.fill(Response::Updated(r.clone()));
            self.shared.tel.maybe_capture(
                &layout,
                p.seq,
                p.submitted,
                p.request.kind_name(),
                None,
                p.sampled,
                e2e,
            );
        }
        trace.respond_ns = t_respond.elapsed().as_nanos() as u64;
        // Update entries log immediately — phase-concurrent with any
        // in-flight query phase of an earlier epoch (take_commit_log
        // re-sorts into commit order).
        if self.shared.cfg.record_commit_log {
            let mut log = self.shared.log.lock().unwrap_or_else(|e| e.into_inner());
            for (p, r) in updates.drain(..).zip(update_results) {
                log.push(LogEntry {
                    epoch: self.epoch,
                    seq: p.seq,
                    request: p.request,
                    response: Response::Updated(r),
                    version: self.epoch,
                });
            }
        }

        let mut stats = EpochStats {
            epoch: self.epoch,
            batch: updates_len + queries.len(),
            queue_depth,
            updates: updates_len,
            queries: queries.len(),
            flushes,
            update_ns,
            query_ns: 0,
            handoff_ns: 0,
            version_after: forest.version(),
            snapshot_version: if pipelined {
                self.state_version
            } else {
                self.epoch
            },
        };

        // ---- query phase ----
        if queries.is_empty() {
            trace.epoch_wall_ns = epoch_start.elapsed().as_nanos() as u64;
            self.shared.tel.record_trace(trace);
            book_epoch(&self.shared, stats);
            return !store_failed;
        }
        if pipelined {
            // Publish the committed state and hand the query set over;
            // `send` blocks once `pipeline_depth` phases are in flight —
            // that back-pressure is what keeps updates from running
            // unboundedly ahead of query completion.
            self.shared.tel.set_worker_phase(PHASE_PUBLISH);
            let t_pub = Instant::now();
            let (version, recycle) = self.ensure_published(forest);
            trace.publish_ns = t_pub.elapsed().as_nanos() as u64;
            trace.recycle = recycle;
            layout.publish_ns = trace.publish_ns;
            self.shared.tel.set_worker_phase(PHASE_DISPATCH);
            let dispatched = Instant::now();
            let job = QueryJob {
                epoch: self.epoch,
                version,
                queries,
                stats,
                dispatched,
                layout,
            };
            self.qtx
                .as_ref()
                .expect("pipelined")
                .send(job)
                .expect("query executor outlives the worker loop");
            // How long the send blocked = the pipeline's back-pressure
            // on this worker (also inside the executor's handoff window,
            // which is why phase_sum_ns leaves it out).
            trace.backpressure_ns = dispatched.elapsed().as_nanos() as u64;
            self.shared.tel.record_half(trace);
            return !store_failed;
        }
        self.shared.tel.set_worker_phase(PHASE_QUERY);
        let t1 = Instant::now();
        let refs: Vec<&Request> = queries.iter().map(|p| &p.request).collect();
        let (responses, fam) = answer_requests_timed(forest, &refs, Some(&self.shared.dispatch));
        stats.query_ns = t1.elapsed().as_nanos() as u64;
        trace.query_ns = stats.query_ns;
        trace.family_ns = fam.ns;
        trace.family_counts = fam.counts;
        trace.family_engine = fam.engine;
        trace.family_predicted_ns = fam.predicted_ns;
        trace.family_explored = fam.explored;
        layout.query_ns = stats.query_ns;
        self.shared.tel.set_worker_phase(PHASE_RESPOND);
        let t_respond = Instant::now();
        for (p, r) in queries.iter().zip(&responses) {
            let e2e = p.submitted.elapsed().as_nanos() as u64;
            self.shared.hist.record(e2e);
            p.slot.fill(r.clone());
            self.shared.tel.maybe_capture(
                &layout,
                p.seq,
                p.submitted,
                p.request.kind_name(),
                family_index(&p.request),
                p.sampled,
                e2e,
            );
        }
        trace.respond_ns += t_respond.elapsed().as_nanos() as u64;
        trace.epoch_wall_ns = epoch_start.elapsed().as_nanos() as u64;
        self.shared.tel.record_trace(trace);
        book_epoch(&self.shared, stats);
        if self.shared.cfg.record_commit_log {
            let mut log = self.shared.log.lock().unwrap_or_else(|e| e.into_inner());
            for (p, r) in queries.into_iter().zip(responses) {
                log.push(LogEntry {
                    epoch: self.epoch,
                    seq: p.seq,
                    request: p.request,
                    response: r,
                    version: self.epoch,
                });
            }
        }
        !store_failed
    }

    /// The published version carrying `state_version`'s state, publishing
    /// a fresh buffer when the table's newest is older. Also reports how
    /// the buffer was obtained, for the flight recorder.
    fn ensure_published(&mut self, live: &ServeForest) -> (Arc<PublishedVersion>, RecycleOutcome) {
        let target = self.state_version;
        if let Some(latest) = self.shared.versions.latest() {
            if latest.version == target {
                return (latest, RecycleOutcome::None);
            }
            debug_assert!(latest.version < target, "versions advance monotonically");
        }
        // Reclaim evicted buffers whose last pin has dropped.
        for arc in std::mem::take(&mut self.evicted) {
            match Arc::try_unwrap(arc) {
                Ok(pv) => self.spares.push(ShadowBuf {
                    version: pv.version,
                    forest: pv.forest,
                }),
                Err(arc) => self.evicted.push(arc),
            }
        }
        // The newest reclaimable spare needs the fewest catch-up records;
        // one older than the record floor can never catch up — drop it.
        self.spares.sort_unstable_by_key(|b| b.version);
        let (forest, outcome) = loop {
            match self.spares.pop() {
                Some(mut buf) if buf.version >= self.records_floor => {
                    for (e, flushes) in &self.recent {
                        if *e > buf.version {
                            debug_assert!(*e <= target, "records never lead the version");
                            for f in flushes {
                                apply_flush(&mut buf.forest, f);
                            }
                        }
                    }
                    break (buf.forest, RecycleOutcome::CaughtUp);
                }
                Some(_) => continue,
                // No reclaimable buffer: clone the live forest — the
                // O(n) cold-start path; steady state cycles buffers
                // through journal catch-up instead.
                None => break (live.clone(), RecycleOutcome::Cloned),
            }
        };
        // Full-state oracle, debug builds only: canonical extraction is
        // far too slow for the hot path, but pins catch-up replay to the
        // live commit sequence exactly.
        #[cfg(debug_assertions)]
        assert_eq!(
            forest.export_state(),
            live.export_state(),
            "published version {target} diverges from the live forest"
        );
        let arc = Arc::new(PublishedVersion {
            version: target,
            forest,
        });
        let evicted = self
            .shared
            .versions
            .publish(Arc::clone(&arc), self.shared.cfg.retained_versions);
        self.evicted.extend(evicted);
        (arc, outcome)
    }
}

/// Replay one journaled flush onto a version buffer — exactly the batch
/// calls the live flush made, in the same order.
fn apply_flush(forest: &mut ServeForest, f: &FlushRecord) {
    if !f.links.is_empty() || !f.cuts.is_empty() {
        forest
            .batch_update_unchecked(&f.links, &f.cuts)
            .expect("journaled batches replay on the version buffer");
    }
    if !f.eweights.is_empty() {
        forest
            .update_edge_weights(&f.eweights)
            .expect("journaled edge weights replay");
    }
    if !f.vweights.is_empty() {
        let vw: Vec<(u32, ServeVertexWeight)> = f
            .vweights
            .iter()
            .map(|&(v, weight, marked)| (v, ServeVertexWeight { weight, marked }))
            .collect();
        forest
            .update_vertex_weights(&vw)
            .expect("journaled vertex weights replay");
    }
}

/// The query-executor half of the pipeline: one [`QueryJob`] per epoch
/// (channel capacity enforces the depth), each swept against its pinned
/// published version while the worker commits later epochs. Releases
/// responses, records latencies, books stats and commit-log entries.
fn query_executor(shared: Arc<Shared>, rx: Receiver<QueryJob>) {
    while let Ok(mut job) = rx.recv() {
        shared.tel.set_exec_phase(PHASE_QUERY);
        let t = Instant::now();
        // Query-side half of the epoch's trace; the worker recorded the
        // update-side half, and record_half merges them (see
        // crate::telemetry).
        let mut trace = EpochTrace {
            epoch: job.epoch,
            handoff_ns: (t - job.dispatched).as_nanos() as u64,
            ..EpochTrace::default()
        };
        let refs: Vec<&Request> = job.queries.iter().map(|p| &p.request).collect();
        let (responses, fam) =
            answer_requests_timed(&job.version.forest, &refs, Some(&shared.dispatch));
        // True executor-side timings — before the flight recorder these
        // were accounted on the worker that handed the job off.
        job.stats.query_ns = t.elapsed().as_nanos() as u64;
        job.stats.handoff_ns = trace.handoff_ns;
        trace.query_ns = job.stats.query_ns;
        trace.family_ns = fam.ns;
        trace.family_counts = fam.counts;
        trace.family_engine = fam.engine;
        trace.family_predicted_ns = fam.predicted_ns;
        trace.family_explored = fam.explored;
        let mut layout = job.layout;
        layout.handoff_ns = trace.handoff_ns;
        layout.query_ns = trace.query_ns;
        shared.tel.set_exec_phase(PHASE_RESPOND);
        let t_respond = Instant::now();
        for (p, r) in job.queries.iter().zip(&responses) {
            let e2e = p.submitted.elapsed().as_nanos() as u64;
            shared.hist.record(e2e);
            p.slot.fill(r.clone());
            shared.tel.maybe_capture(
                &layout,
                p.seq,
                p.submitted,
                p.request.kind_name(),
                family_index(&p.request),
                p.sampled,
                e2e,
            );
        }
        trace.respond_ns = t_respond.elapsed().as_nanos() as u64;
        trace.epoch_wall_ns = layout.epoch_start.elapsed().as_nanos() as u64;
        shared.tel.record_half(trace);
        shared.tel.set_exec_phase(PHASE_IDLE);
        shared.tel.exec_tick();
        book_epoch(&shared, job.stats);
        if shared.cfg.record_commit_log {
            let mut log = shared.log.lock().unwrap_or_else(|e| e.into_inner());
            for (p, r) in job.queries.into_iter().zip(responses) {
                log.push(LogEntry {
                    epoch: job.epoch,
                    seq: p.seq,
                    request: p.request,
                    response: r,
                    version: job.version.version,
                });
            }
        }
    }
}

/// Book one finished epoch into the aggregate stats + history ring.
/// Called by the worker (update-only and strict-alternation epochs) or
/// by the query executor (pipelined epochs, once the query phase
/// completes) — never both for the same epoch.
fn book_epoch(shared: &Shared, stats: EpochStats) {
    let mut s = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
    s.epochs += 1;
    s.ops += stats.batch as u64;
    s.updates += stats.updates as u64;
    s.queries += stats.queries as u64;
    s.flushes += stats.flushes as u64;
    s.batch_sum += stats.batch as u64;
    s.max_batch = s.max_batch.max(stats.batch);
    if s.history.len() >= shared.cfg.epoch_history.max(1) {
        s.history.pop_front();
    }
    s.history.push_back(stats);
}

// ---------------------------------------------------------------------
// update phase: exact in-epoch conflict resolution
// ---------------------------------------------------------------------

/// Overlay of pending updates over the forest. Admission answers each
/// update's exact sequential outcome; `flush` commits the overlay in at
/// most four batch calls (cuts, links, edge weights, vertex weights —
/// an ordering equivalent to submission order for every *admitted* op,
/// because conflicting admissions force an early flush).
#[derive(Default)]
struct UpdatePhase {
    links: Vec<(u32, u32, u64)>,
    link_idx: HashMap<u64, usize>,
    cuts: Vec<(u32, u32)>,
    cut_keys: HashMap<u64, ()>,
    eweights: HashMap<u64, (u32, u32, u64)>,
    vweights: HashMap<u32, ServeVertexWeight>,
    deg: HashMap<u32, i32>,
    /// Union–find over component representatives (forest + pending links).
    uf: HashMap<u32, u32>,
    /// A pending link was cancelled after its union was recorded: the
    /// union–find now over-connects, so "connected" verdicts need a flush
    /// to confirm (exactly like pending cuts do).
    uf_stale: bool,
    flushes: usize,
    /// Total wall time spent inside [`flush`](Self::flush) — the commit-
    /// propagation share of the update phase, for the flight recorder.
    flush_ns: u64,
    /// When durable: every committed flush's batch groups, in commit
    /// order — exactly what the WAL persists for batch replay.
    journal: Option<Vec<FlushRecord>>,
}

impl UpdatePhase {
    /// An empty phase, journaling committed flushes iff `durable`.
    fn with_journal(durable: bool) -> Self {
        UpdatePhase {
            journal: durable.then(Vec::new),
            ..Default::default()
        }
    }

    /// The journaled flush records (empty unless journaling was on).
    fn take_journal(&mut self) -> Vec<FlushRecord> {
        self.journal.take().unwrap_or_default()
    }
    fn find(&mut self, x: u32) -> u32 {
        let p = *self.uf.get(&x).unwrap_or(&x);
        if p == x {
            x
        } else {
            let r = self.find(p);
            self.uf.insert(x, r);
            r
        }
    }

    /// Effective edge presence under the overlay.
    fn edge_present(&self, forest: &ServeForest, key: u64, u: u32, v: u32) -> bool {
        if self.link_idx.contains_key(&key) {
            return true;
        }
        forest.has_edge(u, v) && !self.cut_keys.contains_key(&key)
    }

    fn eff_degree(&self, forest: &ServeForest, v: u32) -> i32 {
        forest.degree(v) as i32 + self.deg.get(&v).copied().unwrap_or(0)
    }

    fn eff_vweight(&self, forest: &ServeForest, v: u32) -> ServeVertexWeight {
        self.vweights
            .get(&v)
            .copied()
            .unwrap_or_else(|| *forest.vertex_weight(v))
    }

    fn check_range(forest: &ServeForest, v: u32) -> Result<(), ForestError> {
        if (v as usize) < forest.num_vertices() {
            Ok(())
        } else {
            Err(ForestError::VertexOutOfRange {
                v,
                n: forest.num_vertices(),
            })
        }
    }

    fn admit(&mut self, forest: &mut ServeForest, req: &Request) -> Result<(), ForestError> {
        match *req {
            Request::Link { u, v, w } => self.admit_link(forest, u, v, w),
            Request::Cut { u, v } => self.admit_cut(forest, u, v),
            Request::UpdateEdgeWeight { u, v, w } => {
                Self::check_range(forest, u)?;
                Self::check_range(forest, v)?;
                let key = edge_key(u, v);
                if let Some(&i) = self.link_idx.get(&key) {
                    self.links[i].2 = w; // retarget the pending link's weight
                    return Ok(());
                }
                if forest.has_edge(u, v) && !self.cut_keys.contains_key(&key) {
                    self.eweights.insert(key, (u, v, w));
                    Ok(())
                } else {
                    Err(ForestError::MissingEdge { u, v })
                }
            }
            Request::UpdateVertexWeight { v, w } => {
                Self::check_range(forest, v)?;
                let mut vw = self.eff_vweight(forest, v);
                vw.weight = w;
                self.vweights.insert(v, vw);
                Ok(())
            }
            Request::Mark { v } => self.set_mark(forest, v, true),
            Request::Unmark { v } => self.set_mark(forest, v, false),
            _ => unreachable!("queries never enter the update phase"),
        }
    }

    fn set_mark(&mut self, forest: &ServeForest, v: u32, marked: bool) -> Result<(), ForestError> {
        Self::check_range(forest, v)?;
        let mut vw = self.eff_vweight(forest, v);
        vw.marked = marked;
        self.vweights.insert(v, vw);
        Ok(())
    }

    fn admit_link(
        &mut self,
        forest: &mut ServeForest,
        u: u32,
        v: u32,
        w: u64,
    ) -> Result<(), ForestError> {
        Self::check_range(forest, u)?;
        Self::check_range(forest, v)?;
        if u == v {
            return Err(ForestError::SelfLoop { v });
        }
        // One retry after a forced flush resolves every cut-dependence.
        for attempt in 0..2 {
            let key = edge_key(u, v);
            if self.edge_present(forest, key, u, v) {
                return Err(ForestError::DuplicateEdge { u, v });
            }
            for x in [u, v] {
                if self.eff_degree(forest, x) >= 3 {
                    return Err(ForestError::DegreeOverflow { v: x });
                }
            }
            // Cut→relink of one edge inside an epoch cancels: while {u,v}
            // is pending-cut, no admitted link can have bridged its two
            // sides (such a link would have seen them uf-connected and
            // forced a flush, clearing the cut) — so the relink is provably
            // acyclic and the pair collapses to an edge-weight update.
            if self.cut_keys.remove(&key).is_some() {
                let at = self
                    .cuts
                    .iter()
                    .position(|&(a, b)| edge_key(a, b) == key)
                    .expect("cut list and key set agree");
                self.cuts.swap_remove(at);
                *self.deg.entry(u).or_insert(0) += 1;
                *self.deg.entry(v).or_insert(0) += 1;
                self.eweights.insert(key, (u, v, w));
                return Ok(());
            }
            let ru = self.find(forest.find_representative(u));
            let rv = self.find(forest.find_representative(v));
            if ru != rv {
                self.uf.insert(ru, rv);
                self.link_idx.insert(key, self.links.len());
                self.links.push((u, v, w));
                *self.deg.entry(u).or_insert(0) += 1;
                *self.deg.entry(v).or_insert(0) += 1;
                return Ok(());
            }
            // Connected under the overlay. That verdict is exact unless a
            // pending cut (or a cancelled link) means the union–find
            // over-connects — then flush and re-examine against the real
            // forest.
            if (self.cuts.is_empty() && !self.uf_stale) || attempt == 1 {
                return Err(ForestError::WouldCreateCycle { u, v });
            }
            self.flush(forest);
        }
        unreachable!("second attempt always returns")
    }

    fn admit_cut(&mut self, forest: &mut ServeForest, u: u32, v: u32) -> Result<(), ForestError> {
        Self::check_range(forest, u)?;
        Self::check_range(forest, v)?;
        let key = edge_key(u, v);
        if let Some(at) = self.link_idx.remove(&key) {
            // Link→cut of the same edge inside one epoch cancels. The
            // union recorded at link admission cannot be unwound, so the
            // union–find becomes an over-approximation — flag it.
            self.links.swap_remove(at);
            if let Some(moved) = self.links.get(at) {
                let moved_key = edge_key(moved.0, moved.1);
                self.link_idx.insert(moved_key, at);
            }
            *self.deg.entry(u).or_insert(0) -= 1;
            *self.deg.entry(v).or_insert(0) -= 1;
            self.uf_stale = true;
            return Ok(());
        }
        if forest.has_edge(u, v) && !self.cut_keys.contains_key(&key) {
            self.cut_keys.insert(key, ());
            self.cuts.push((u, v));
            self.eweights.remove(&key); // a pending reweight dies with the edge
            *self.deg.entry(u).or_insert(0) -= 1;
            *self.deg.entry(v).or_insert(0) -= 1;
            Ok(())
        } else {
            Err(ForestError::MissingEdge { u, v })
        }
    }

    /// Commit the overlay. Every admitted op was validated exactly, so the
    /// batch calls cannot fail; a failure here is an engine bug worth a
    /// loud crash rather than silent divergence from the responses already
    /// promised.
    fn flush(&mut self, forest: &mut ServeForest) {
        let t_flush = Instant::now();
        let any = !self.cuts.is_empty()
            || !self.links.is_empty()
            || !self.eweights.is_empty()
            || !self.vweights.is_empty();
        if !any {
            // Cancellations may have annihilated every pending op while
            // still leaving recorded unions behind — the overlay (in
            // particular the stale union–find) must reset regardless, or
            // the caller's post-flush retry would trust it.
            self.deg.clear();
            self.uf.clear();
            self.uf_stale = false;
            return;
        }
        if !self.cuts.is_empty() || !self.links.is_empty() {
            // One combined change-propagation (the paper's mixed update).
            // Admission validated every link against the overlay *without*
            // relying on any pending cut (cut-dependent links forced an
            // earlier flush), so acyclicity holds even before the cuts.
            forest
                .batch_update_unchecked(&self.links, &self.cuts)
                .expect("pre-validated epoch links+cuts");
        }
        let ew: Vec<(u32, u32, u64)> = self.eweights.values().copied().collect();
        if !ew.is_empty() {
            forest
                .update_edge_weights(&ew)
                .expect("pre-validated edge weights");
        }
        let vw: Vec<(u32, ServeVertexWeight)> =
            self.vweights.iter().map(|(&v, &w)| (v, w)).collect();
        if !vw.is_empty() {
            forest
                .update_vertex_weights(&vw)
                .expect("in-range vertex weights");
        }
        if let Some(journal) = &mut self.journal {
            // The committed batches move into the journal instead of
            // being re-collected/cloned — the clears below then only
            // reset the already-emptied vectors.
            journal.push(FlushRecord {
                cuts: std::mem::take(&mut self.cuts),
                links: std::mem::take(&mut self.links),
                eweights: ew,
                vweights: vw
                    .into_iter()
                    .map(|(v, w)| (v, w.weight, w.marked))
                    .collect(),
            });
        }
        self.links.clear();
        self.link_idx.clear();
        self.cuts.clear();
        self.cut_keys.clear();
        self.eweights.clear();
        self.vweights.clear();
        self.deg.clear();
        self.uf.clear();
        self.uf_stale = false;
        self.flushes += 1;
        self.flush_ns += t_flush.elapsed().as_nanos() as u64;
    }
}
