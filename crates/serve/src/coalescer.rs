//! The epoch-based request coalescer.
//!
//! # Epoch lifecycle
//!
//! 1. **Accumulate** — client threads stamp each request with a global
//!    submission sequence number and push it into a sharded queue. The
//!    worker sleeps until the queue is non-empty, then *lingers* up to
//!    [`ServeConfig::max_linger`] or until [`ServeConfig::drain_threshold`]
//!    requests are waiting, whichever comes first.
//! 2. **Drain** — up to [`ServeConfig::max_epoch_ops`] requests leave the
//!    queue, ordered by submission sequence. This ordered batch *is* the
//!    epoch's serialization: the commit order equals (all updates in
//!    submission order, then all queries).
//! 3. **Update phase** — updates are admitted one by one against an
//!    overlay of the forest (pending links/cuts/weights + a union–find
//!    over component representatives), which decides each request's exact
//!    sequential outcome without touching the forest. Contradictory pairs
//!    (cut of an edge linked earlier in the epoch, links whose acyclicity
//!    depends on an earlier cut) force a *flush* — the overlay commits via
//!    `batch_cut` / `batch_link` / weight updates — and admission resumes
//!    against the fresh forest. Conflict-free traffic commits as one flush.
//! 4. **Query phase** — queries group by family and fan into one batch
//!    call each (`batch_connected`, `batch_path_aggregate`, ...), sharing
//!    the `O(k log(1 + n/k))` marked-sweep work across the epoch.
//! 5. **Respond** — per-request oneshot slots fill (updates right after
//!    the final flush, queries as their family completes), latencies are
//!    recorded, and per-epoch stats append to the history ring.

use crate::agg::{ServeForest, ServeVertexWeight};
use crate::histogram::{EpochStats, LatencyHistogram, ServeStats};
use crate::request::{CptResult, Request, Response, ResponseHandle, Slot};
use rc_core::{DynamicForest, ForestError, ForestState, NO_VERTEX};
use rc_parlay::hashtable::edge_key;
use rc_store::{EpochRecord, FlushRecord, RecoveryReport, Store, StoreConfig, StoreError};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching policy and instrumentation knobs.
///
/// The policy trades latency for throughput: larger epochs amortize the
/// `O(k log(1 + n/k))` batch work over more requests (throughput up,
/// per-request latency up to `max_linger` higher); `drain_threshold`
/// bounds how long a hot queue waits, and `max_epoch_ops` caps per-epoch
/// work so one epoch cannot starve later arrivals.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Hard cap on requests drained into one epoch.
    pub max_epoch_ops: usize,
    /// Drain immediately once this many requests are queued ("drain when
    /// the queue exceeds N" — the adaptive part of the policy).
    pub drain_threshold: usize,
    /// Longest time the worker lingers waiting for more requests after
    /// the first one arrives.
    pub max_linger: Duration,
    /// Submission-queue shards (reduces producer contention).
    pub shards: usize,
    /// Record every request + response in commit order (tests/audits).
    pub record_commit_log: bool,
    /// Per-epoch stats retained in the history ring.
    pub epoch_history: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_epoch_ops: 8_192,
            drain_threshold: 1_024,
            max_linger: Duration::from_micros(200),
            shards: 8,
            record_commit_log: false,
            epoch_history: 64,
        }
    }
}

impl ServeConfig {
    /// The default coalescing policy.
    pub fn coalesced() -> Self {
        Self::default()
    }

    /// Degenerate size-1 epochs — every request is its own batch. The
    /// throughput baseline the coalescer is measured against.
    pub fn unbatched() -> Self {
        ServeConfig {
            max_epoch_ops: 1,
            drain_threshold: 1,
            max_linger: Duration::ZERO,
            ..Self::default()
        }
    }
}

/// One committed request with its response, in commit order.
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// Epoch that committed the request (1-based).
    pub epoch: u64,
    /// Global submission sequence number.
    pub seq: u64,
    /// The request.
    pub request: Request,
    /// Its response.
    pub response: Response,
}

struct Pending {
    seq: u64,
    submitted: Instant,
    request: Request,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct StatsInner {
    epochs: u64,
    ops: u64,
    updates: u64,
    queries: u64,
    flushes: u64,
    batch_sum: u64,
    max_batch: usize,
    history: VecDeque<EpochStats>,
}

struct Shared {
    cfg: ServeConfig,
    shards: Vec<Mutex<Vec<Pending>>>,
    qlen: AtomicUsize,
    seq: AtomicU64,
    /// Round-robin shard cursor for submissions.
    rr: AtomicUsize,
    accepting: AtomicBool,
    /// Wake mutex holds the shutdown flag; producers notify under it.
    wake: Mutex<bool>,
    wake_cv: Condvar,
    hist: LatencyHistogram,
    stats: Mutex<StatsInner>,
    log: Mutex<Vec<LogEntry>>,
}

/// A running coalescer: owns the forest on a dedicated worker thread.
///
/// Create with [`RcServe::start`], hand [`ServeClient`]s to client
/// threads, stop with [`RcServe::shutdown`] (drains the queue and returns
/// the forest). Dropping without `shutdown` also stops the worker.
pub struct RcServe {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<ServeForest>>,
}

/// Cloneable submission handle; safe to share across client threads.
#[derive(Clone)]
pub struct ServeClient {
    shared: Arc<Shared>,
}

impl RcServe {
    /// Start serving `forest` under `cfg` on a dedicated worker thread.
    /// State lives (and dies) in RAM; see [`RcServe::start_durable`] for
    /// the crash-safe variant.
    pub fn start(forest: ServeForest, cfg: ServeConfig) -> RcServe {
        Self::start_inner(forest, cfg, None, 0)
    }

    /// Start a **durable** server: open (or create) the store at
    /// `durability`, recover the forest — newest valid snapshot + WAL
    /// suffix replayed in epoch batches — and serve it with every
    /// committed epoch appended to the WAL *before* its responses are
    /// released. `bootstrap` seeds an empty store directory with an
    /// initial forest (ignored once the directory has history).
    ///
    /// Durability level follows the store's [`rc_store::SyncPolicy`]:
    /// per-epoch fsync makes every acknowledged update survive power
    /// loss; interval/never trade that for latency. Clean
    /// [`RcServe::shutdown`] always flushes and fsyncs the WAL tail,
    /// whatever the policy.
    pub fn start_durable(
        cfg: ServeConfig,
        durability: StoreConfig,
        bootstrap: Option<&ForestState>,
    ) -> Result<(RcServe, RecoveryReport), StoreError> {
        let recovered = Store::open_with_bootstrap(durability, bootstrap)?;
        let first_epoch = recovered.report.last_epoch;
        Ok((
            Self::start_inner(recovered.forest, cfg, Some(recovered.store), first_epoch),
            recovered.report,
        ))
    }

    fn start_inner(
        forest: ServeForest,
        cfg: ServeConfig,
        store: Option<Store>,
        first_epoch: u64,
    ) -> RcServe {
        let shared = Arc::new(Shared {
            shards: (0..cfg.shards.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            qlen: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            rr: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            wake: Mutex::new(false),
            wake_cv: Condvar::new(),
            hist: LatencyHistogram::default(),
            stats: Mutex::new(StatsInner::default()),
            log: Mutex::new(Vec::new()),
            cfg,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("rc-serve-epoch".into())
            .spawn(move || Worker::new(worker_shared, store, first_epoch).run(forest))
            .expect("spawn rc-serve worker");
        RcServe {
            shared,
            worker: Some(worker),
        }
    }

    /// A new submission handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Aggregate statistics so far. Stats for an epoch are booked after
    /// its responses fill, so a client racing the worker may observe the
    /// previous epoch; read via a retained [`ServeClient`] after
    /// [`RcServe::shutdown`] for exact totals.
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.shared)
    }

    /// The most recent per-epoch stats (up to `cfg.epoch_history`).
    pub fn epoch_history(&self) -> Vec<EpochStats> {
        epoch_history_of(&self.shared)
    }

    /// Drain the commit log recorded so far (`record_commit_log` only).
    pub fn take_commit_log(&self) -> Vec<LogEntry> {
        std::mem::take(&mut *self.shared.log.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Stop accepting, drain every queued request, join the worker and
    /// return the (fully committed) forest.
    pub fn shutdown(mut self) -> ServeForest {
        self.signal_shutdown();
        self.worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("rc-serve worker panicked")
    }

    fn signal_shutdown(&self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        let mut g = self.shared.wake.lock().unwrap_or_else(|e| e.into_inner());
        *g = true;
        self.shared.wake_cv.notify_all();
    }
}

impl Drop for RcServe {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            self.signal_shutdown();
            let _ = w.join();
        }
    }
}

impl ServeClient {
    /// Submit a request; returns immediately with a oneshot handle.
    pub fn submit(&self, request: Request) -> ResponseHandle {
        let slot = Arc::new(Slot::default());
        let handle = ResponseHandle {
            slot: Arc::clone(&slot),
        };
        if !self.shared.accepting.load(Ordering::SeqCst) {
            slot.fill(Response::Rejected);
            return handle;
        }
        // Round-robin shard choice; the seq stamp is taken *under* the
        // shard lock so every shard's vector stays sorted by seq — the
        // invariant the worker's k-way merge drain relies on.
        let shard = self.shared.rr.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        let seq;
        {
            let mut q = self.shared.shards[shard]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
            q.push(Pending {
                seq,
                submitted: Instant::now(),
                request,
                slot,
            });
        }
        let len = self.shared.qlen.fetch_add(1, Ordering::SeqCst) + 1;
        // Wake the worker on the empty→non-empty edge and once the drain
        // threshold is reached; notifying under the lock pairs with the
        // worker's check-then-wait.
        if len == 1 || len == self.shared.cfg.drain_threshold {
            let _g = self.shared.wake.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.wake_cv.notify_all();
        }
        // Close the shutdown race: if `accepting` flipped while we were
        // enqueuing, the worker may already have taken its final look at
        // the queue and exited. Our `qlen` increment is SeqCst-ordered
        // after the worker's last zero read in that case, so this load is
        // guaranteed to observe `false` — reclaim the request if it is
        // still queued (if it is gone, the worker owns it and will answer).
        if !self.shared.accepting.load(Ordering::SeqCst) {
            let reclaimed = {
                let mut q = self.shared.shards[shard]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                q.iter().position(|p| p.seq == seq).map(|at| q.remove(at))
            };
            if let Some(p) = reclaimed {
                self.shared.qlen.fetch_sub(1, Ordering::SeqCst);
                p.slot.fill(Response::Rejected);
            }
        }
        handle
    }

    /// Submit and block for the response.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Aggregate statistics (see [`RcServe::stats`] for the race caveat;
    /// exact once the server has shut down).
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.shared)
    }

    /// The most recent per-epoch stats.
    pub fn epoch_history(&self) -> Vec<EpochStats> {
        epoch_history_of(&self.shared)
    }

    /// Drain the commit log (`record_commit_log` only). Like
    /// [`ServeClient::stats`], exact once the server has shut down.
    pub fn take_commit_log(&self) -> Vec<LogEntry> {
        std::mem::take(&mut *self.shared.log.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

fn stats_of(shared: &Shared) -> ServeStats {
    let s = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
    ServeStats {
        epochs: s.epochs,
        ops: s.ops,
        updates: s.updates,
        queries: s.queries,
        flushes: s.flushes,
        mean_batch: if s.epochs == 0 {
            0.0
        } else {
            s.batch_sum as f64 / s.epochs as f64
        },
        max_batch: s.max_batch,
        latency: shared.hist.summary(),
    }
}

fn epoch_history_of(shared: &Shared) -> Vec<EpochStats> {
    shared
        .stats
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .history
        .iter()
        .copied()
        .collect()
}

// ---------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------

struct Worker {
    shared: Arc<Shared>,
    epoch: u64,
    /// The durability store, when this server was started with
    /// [`RcServe::start_durable`].
    store: Option<Store>,
}

impl Worker {
    fn new(shared: Arc<Shared>, store: Option<Store>, first_epoch: u64) -> Self {
        Worker {
            shared,
            epoch: first_epoch,
            store,
        }
    }

    fn run(mut self, mut forest: ServeForest) -> ServeForest {
        loop {
            if self.shared.qlen.load(Ordering::SeqCst) == 0 {
                // About to sleep: under interval sync, fsync the dirty
                // tail now — otherwise an idle lull after a burst would
                // leave it volatile far past the configured interval.
                if let Some(store) = &mut self.store {
                    let _ = store.idle_sync();
                }
            }
            if !self.wait_for_epoch() && self.shared.qlen.load(Ordering::SeqCst) == 0 {
                break; // shutdown with an empty queue
            }
            let queue_depth = self.shared.qlen.load(Ordering::SeqCst);
            let batch = self.drain();
            if batch.is_empty() {
                continue;
            }
            if !self.process_epoch(&mut forest, batch, queue_depth) {
                // Durability failed: every queued request is answered
                // Rejected (never left hanging), then the worker stops.
                self.reject_drain();
                break;
            }
        }
        if let Some(store) = self.store.take() {
            // Clean shutdown must not lose an acknowledged epoch: flush
            // and fsync whatever tail the sync policy left pending.
            store.close().expect("flush + fsync WAL on shutdown");
        }
        forest
    }

    /// After a durability failure: stop accepting and resolve every
    /// queued request as `Rejected`, so no client blocks forever on a
    /// slot the dead worker would never fill. (Requests that race the
    /// `accepting` flip are reclaimed and rejected by their submitter —
    /// the same closing argument as `RcServe::shutdown`.)
    fn reject_drain(&self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        while self.shared.qlen.load(Ordering::SeqCst) > 0 {
            for p in self.drain() {
                p.slot.fill(Response::Rejected);
            }
        }
    }

    /// Sleep until there is work, then linger per policy. Returns `false`
    /// once shutdown is signalled.
    fn wait_for_epoch(&self) -> bool {
        let cfg = &self.shared.cfg;
        let mut g = self.shared.wake.lock().unwrap_or_else(|e| e.into_inner());
        // Phase 1: wait for any work.
        loop {
            if *g {
                return false;
            }
            if self.shared.qlen.load(Ordering::SeqCst) > 0 {
                break;
            }
            g = self
                .shared
                .wake_cv
                .wait(g)
                .unwrap_or_else(|e| e.into_inner());
        }
        // Phase 2: linger for coalescing.
        let t0 = Instant::now();
        loop {
            if *g {
                return false;
            }
            if self.shared.qlen.load(Ordering::SeqCst) >= cfg.drain_threshold {
                return true;
            }
            let elapsed = t0.elapsed();
            if elapsed >= cfg.max_linger {
                return true;
            }
            let (g2, _) = self
                .shared
                .wake_cv
                .wait_timeout(g, cfg.max_linger - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
        }
    }

    /// Pull up to `max_epoch_ops` requests in global submission order:
    /// a k-way merge over the (individually seq-sorted) shards, draining
    /// only each shard's merged prefix. `O(cap · shards)` — leftovers stay
    /// queued in place, so a deep backlog never gets reshuffled.
    fn drain(&self) -> Vec<Pending> {
        let cap = self.shared.cfg.max_epoch_ops.max(1);
        let mut guards: Vec<_> = self
            .shared
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        let mut take = vec![0usize; guards.len()];
        let mut total = 0usize;
        while total < cap {
            let mut best: Option<usize> = None;
            for (s, g) in guards.iter().enumerate() {
                if take[s] < g.len()
                    && best.is_none_or(|b: usize| g[take[s]].seq < guards[b][take[b]].seq)
                {
                    best = Some(s);
                }
            }
            let Some(s) = best else { break };
            take[s] += 1;
            total += 1;
        }
        let mut merged: Vec<Pending> = Vec::with_capacity(total);
        for (s, g) in guards.iter_mut().enumerate() {
            merged.extend(g.drain(..take[s]));
        }
        drop(guards);
        merged.sort_unstable_by_key(|p| p.seq);
        self.shared.qlen.fetch_sub(merged.len(), Ordering::SeqCst);
        merged
    }

    /// Serve one epoch. Returns `false` when durability failed — the
    /// epoch's requests have then all been answered `Rejected` and the
    /// caller must stop the loop (the in-memory forest may be ahead of
    /// the durable state, so continuing to serve would acknowledge reads
    /// of updates that were never persisted).
    fn process_epoch(
        &mut self,
        forest: &mut ServeForest,
        batch: Vec<Pending>,
        queue_depth: usize,
    ) -> bool {
        self.epoch += 1;
        let (mut updates, mut queries): (Vec<Pending>, Vec<Pending>) =
            batch.into_iter().partition(|p| p.request.is_update());

        // ---- update phase ----
        let t0 = Instant::now();
        let mut phase = UpdatePhase::with_journal(self.store.is_some());
        let mut update_results: Vec<Result<(), ForestError>> = Vec::with_capacity(updates.len());
        for p in &updates {
            update_results.push(phase.admit(forest, &p.request));
        }
        phase.flush(forest);
        // Durability barrier: the epoch's committed batches reach the WAL
        // *before* any response slot fills, so an acknowledged update is
        // always at least written (and fsynced under per-epoch sync).
        let mut store_failed = false;
        if let Some(store) = &mut self.store {
            let journal = phase.take_journal();
            if !journal.is_empty() {
                let rec = EpochRecord {
                    epoch: self.epoch,
                    flushes: journal,
                };
                if let Err(e) = store.append_epoch(&rec) {
                    // An environmental I/O failure (disk full, dir gone)
                    // must not panic the worker with response slots
                    // unfilled — that would hang every blocked client.
                    // The failed append was rolled back, so nothing of
                    // this epoch is durable: reject it and signal stop.
                    eprintln!(
                        "rc-serve: epoch {}: WAL append failed: {e}; \
                         rejecting requests and stopping",
                        self.epoch
                    );
                    drop(self.store.take()); // best-effort flush of the consistent prefix
                    for p in updates.iter().chain(queries.iter()) {
                        p.slot.fill(Response::Rejected);
                    }
                    return false;
                }
                if store.wants_compaction() {
                    // Unlike a failed append, a failed compaction is not
                    // a loss for *this* epoch — it is already durable in
                    // the WAL, so its responses go out normally. But the
                    // store may now be half-truncated (the WAL poisons
                    // itself in that case), so serving further epochs
                    // could acknowledge updates that can never persist:
                    // finish this epoch, then stop.
                    if let Err(e) = store.compact(&forest.export_state()) {
                        eprintln!(
                            "rc-serve: epoch {}: WAL compaction failed: {e}; \
                             finishing this epoch, then stopping",
                            self.epoch
                        );
                        store_failed = true;
                        drop(self.store.take()); // poison-aware Drop: no stray writes
                    }
                }
            }
        }
        let update_ns = t0.elapsed().as_nanos() as u64;
        let flushes = phase.flushes;
        for (p, r) in updates.iter().zip(&update_results) {
            self.shared
                .hist
                .record(p.submitted.elapsed().as_nanos() as u64);
            p.slot.fill(Response::Updated(r.clone()));
        }

        // ---- query phase ----
        let t1 = Instant::now();
        let responses = answer_queries(forest, &queries);
        let query_ns = t1.elapsed().as_nanos() as u64;
        for (p, r) in queries.iter().zip(&responses) {
            self.shared
                .hist
                .record(p.submitted.elapsed().as_nanos() as u64);
            p.slot.fill(r.clone());
        }

        // ---- bookkeeping ----
        let stats = EpochStats {
            epoch: self.epoch,
            batch: updates.len() + queries.len(),
            queue_depth,
            updates: updates.len(),
            queries: queries.len(),
            flushes,
            update_ns,
            query_ns,
            version_after: forest.version(),
        };
        {
            let mut s = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
            s.epochs += 1;
            s.ops += stats.batch as u64;
            s.updates += stats.updates as u64;
            s.queries += stats.queries as u64;
            s.flushes += stats.flushes as u64;
            s.batch_sum += stats.batch as u64;
            s.max_batch = s.max_batch.max(stats.batch);
            if s.history.len() == self.shared.cfg.epoch_history.max(1) {
                s.history.pop_front();
            }
            s.history.push_back(stats);
        }
        if self.shared.cfg.record_commit_log {
            let mut log = self.shared.log.lock().unwrap_or_else(|e| e.into_inner());
            for (p, r) in updates.drain(..).zip(update_results) {
                log.push(LogEntry {
                    epoch: self.epoch,
                    seq: p.seq,
                    request: p.request,
                    response: Response::Updated(r),
                });
            }
            for (p, r) in queries.drain(..).zip(responses) {
                log.push(LogEntry {
                    epoch: self.epoch,
                    seq: p.seq,
                    request: p.request,
                    response: r,
                });
            }
        }
        !store_failed
    }
}

// ---------------------------------------------------------------------
// update phase: exact in-epoch conflict resolution
// ---------------------------------------------------------------------

/// Overlay of pending updates over the forest. Admission answers each
/// update's exact sequential outcome; `flush` commits the overlay in at
/// most four batch calls (cuts, links, edge weights, vertex weights —
/// an ordering equivalent to submission order for every *admitted* op,
/// because conflicting admissions force an early flush).
#[derive(Default)]
struct UpdatePhase {
    links: Vec<(u32, u32, u64)>,
    link_idx: HashMap<u64, usize>,
    cuts: Vec<(u32, u32)>,
    cut_keys: HashMap<u64, ()>,
    eweights: HashMap<u64, (u32, u32, u64)>,
    vweights: HashMap<u32, ServeVertexWeight>,
    deg: HashMap<u32, i32>,
    /// Union–find over component representatives (forest + pending links).
    uf: HashMap<u32, u32>,
    /// A pending link was cancelled after its union was recorded: the
    /// union–find now over-connects, so "connected" verdicts need a flush
    /// to confirm (exactly like pending cuts do).
    uf_stale: bool,
    flushes: usize,
    /// When durable: every committed flush's batch groups, in commit
    /// order — exactly what the WAL persists for batch replay.
    journal: Option<Vec<FlushRecord>>,
}

impl UpdatePhase {
    /// An empty phase, journaling committed flushes iff `durable`.
    fn with_journal(durable: bool) -> Self {
        UpdatePhase {
            journal: durable.then(Vec::new),
            ..Default::default()
        }
    }

    /// The journaled flush records (empty unless journaling was on).
    fn take_journal(&mut self) -> Vec<FlushRecord> {
        self.journal.take().unwrap_or_default()
    }
    fn find(&mut self, x: u32) -> u32 {
        let p = *self.uf.get(&x).unwrap_or(&x);
        if p == x {
            x
        } else {
            let r = self.find(p);
            self.uf.insert(x, r);
            r
        }
    }

    /// Effective edge presence under the overlay.
    fn edge_present(&self, forest: &ServeForest, key: u64, u: u32, v: u32) -> bool {
        if self.link_idx.contains_key(&key) {
            return true;
        }
        forest.has_edge(u, v) && !self.cut_keys.contains_key(&key)
    }

    fn eff_degree(&self, forest: &ServeForest, v: u32) -> i32 {
        forest.degree(v) as i32 + self.deg.get(&v).copied().unwrap_or(0)
    }

    fn eff_vweight(&self, forest: &ServeForest, v: u32) -> ServeVertexWeight {
        self.vweights
            .get(&v)
            .copied()
            .unwrap_or_else(|| *forest.vertex_weight(v))
    }

    fn check_range(forest: &ServeForest, v: u32) -> Result<(), ForestError> {
        if (v as usize) < forest.num_vertices() {
            Ok(())
        } else {
            Err(ForestError::VertexOutOfRange {
                v,
                n: forest.num_vertices(),
            })
        }
    }

    fn admit(&mut self, forest: &mut ServeForest, req: &Request) -> Result<(), ForestError> {
        match *req {
            Request::Link { u, v, w } => self.admit_link(forest, u, v, w),
            Request::Cut { u, v } => self.admit_cut(forest, u, v),
            Request::UpdateEdgeWeight { u, v, w } => {
                Self::check_range(forest, u)?;
                Self::check_range(forest, v)?;
                let key = edge_key(u, v);
                if let Some(&i) = self.link_idx.get(&key) {
                    self.links[i].2 = w; // retarget the pending link's weight
                    return Ok(());
                }
                if forest.has_edge(u, v) && !self.cut_keys.contains_key(&key) {
                    self.eweights.insert(key, (u, v, w));
                    Ok(())
                } else {
                    Err(ForestError::MissingEdge { u, v })
                }
            }
            Request::UpdateVertexWeight { v, w } => {
                Self::check_range(forest, v)?;
                let mut vw = self.eff_vweight(forest, v);
                vw.weight = w;
                self.vweights.insert(v, vw);
                Ok(())
            }
            Request::Mark { v } => self.set_mark(forest, v, true),
            Request::Unmark { v } => self.set_mark(forest, v, false),
            _ => unreachable!("queries never enter the update phase"),
        }
    }

    fn set_mark(&mut self, forest: &ServeForest, v: u32, marked: bool) -> Result<(), ForestError> {
        Self::check_range(forest, v)?;
        let mut vw = self.eff_vweight(forest, v);
        vw.marked = marked;
        self.vweights.insert(v, vw);
        Ok(())
    }

    fn admit_link(
        &mut self,
        forest: &mut ServeForest,
        u: u32,
        v: u32,
        w: u64,
    ) -> Result<(), ForestError> {
        Self::check_range(forest, u)?;
        Self::check_range(forest, v)?;
        if u == v {
            return Err(ForestError::SelfLoop { v });
        }
        // One retry after a forced flush resolves every cut-dependence.
        for attempt in 0..2 {
            let key = edge_key(u, v);
            if self.edge_present(forest, key, u, v) {
                return Err(ForestError::DuplicateEdge { u, v });
            }
            for x in [u, v] {
                if self.eff_degree(forest, x) >= 3 {
                    return Err(ForestError::DegreeOverflow { v: x });
                }
            }
            // Cut→relink of one edge inside an epoch cancels: while {u,v}
            // is pending-cut, no admitted link can have bridged its two
            // sides (such a link would have seen them uf-connected and
            // forced a flush, clearing the cut) — so the relink is provably
            // acyclic and the pair collapses to an edge-weight update.
            if self.cut_keys.remove(&key).is_some() {
                let at = self
                    .cuts
                    .iter()
                    .position(|&(a, b)| edge_key(a, b) == key)
                    .expect("cut list and key set agree");
                self.cuts.swap_remove(at);
                *self.deg.entry(u).or_insert(0) += 1;
                *self.deg.entry(v).or_insert(0) += 1;
                self.eweights.insert(key, (u, v, w));
                return Ok(());
            }
            let ru = self.find(forest.find_representative(u));
            let rv = self.find(forest.find_representative(v));
            if ru != rv {
                self.uf.insert(ru, rv);
                self.link_idx.insert(key, self.links.len());
                self.links.push((u, v, w));
                *self.deg.entry(u).or_insert(0) += 1;
                *self.deg.entry(v).or_insert(0) += 1;
                return Ok(());
            }
            // Connected under the overlay. That verdict is exact unless a
            // pending cut (or a cancelled link) means the union–find
            // over-connects — then flush and re-examine against the real
            // forest.
            if (self.cuts.is_empty() && !self.uf_stale) || attempt == 1 {
                return Err(ForestError::WouldCreateCycle { u, v });
            }
            self.flush(forest);
        }
        unreachable!("second attempt always returns")
    }

    fn admit_cut(&mut self, forest: &mut ServeForest, u: u32, v: u32) -> Result<(), ForestError> {
        Self::check_range(forest, u)?;
        Self::check_range(forest, v)?;
        let key = edge_key(u, v);
        if let Some(at) = self.link_idx.remove(&key) {
            // Link→cut of the same edge inside one epoch cancels. The
            // union recorded at link admission cannot be unwound, so the
            // union–find becomes an over-approximation — flag it.
            self.links.swap_remove(at);
            if let Some(moved) = self.links.get(at) {
                let moved_key = edge_key(moved.0, moved.1);
                self.link_idx.insert(moved_key, at);
            }
            *self.deg.entry(u).or_insert(0) -= 1;
            *self.deg.entry(v).or_insert(0) -= 1;
            self.uf_stale = true;
            return Ok(());
        }
        if forest.has_edge(u, v) && !self.cut_keys.contains_key(&key) {
            self.cut_keys.insert(key, ());
            self.cuts.push((u, v));
            self.eweights.remove(&key); // a pending reweight dies with the edge
            *self.deg.entry(u).or_insert(0) -= 1;
            *self.deg.entry(v).or_insert(0) -= 1;
            Ok(())
        } else {
            Err(ForestError::MissingEdge { u, v })
        }
    }

    /// Commit the overlay. Every admitted op was validated exactly, so the
    /// batch calls cannot fail; a failure here is an engine bug worth a
    /// loud crash rather than silent divergence from the responses already
    /// promised.
    fn flush(&mut self, forest: &mut ServeForest) {
        let any = !self.cuts.is_empty()
            || !self.links.is_empty()
            || !self.eweights.is_empty()
            || !self.vweights.is_empty();
        if !any {
            // Cancellations may have annihilated every pending op while
            // still leaving recorded unions behind — the overlay (in
            // particular the stale union–find) must reset regardless, or
            // the caller's post-flush retry would trust it.
            self.deg.clear();
            self.uf.clear();
            self.uf_stale = false;
            return;
        }
        if !self.cuts.is_empty() || !self.links.is_empty() {
            // One combined change-propagation (the paper's mixed update).
            // Admission validated every link against the overlay *without*
            // relying on any pending cut (cut-dependent links forced an
            // earlier flush), so acyclicity holds even before the cuts.
            forest
                .batch_update_unchecked(&self.links, &self.cuts)
                .expect("pre-validated epoch links+cuts");
        }
        let ew: Vec<(u32, u32, u64)> = self.eweights.values().copied().collect();
        if !ew.is_empty() {
            forest
                .update_edge_weights(&ew)
                .expect("pre-validated edge weights");
        }
        let vw: Vec<(u32, ServeVertexWeight)> =
            self.vweights.iter().map(|(&v, &w)| (v, w)).collect();
        if !vw.is_empty() {
            forest
                .update_vertex_weights(&vw)
                .expect("in-range vertex weights");
        }
        if let Some(journal) = &mut self.journal {
            // The committed batches move into the journal instead of
            // being re-collected/cloned — the clears below then only
            // reset the already-emptied vectors.
            journal.push(FlushRecord {
                cuts: std::mem::take(&mut self.cuts),
                links: std::mem::take(&mut self.links),
                eweights: ew,
                vweights: vw
                    .into_iter()
                    .map(|(v, w)| (v, w.weight, w.marked))
                    .collect(),
            });
        }
        self.links.clear();
        self.link_idx.clear();
        self.cuts.clear();
        self.cut_keys.clear();
        self.eweights.clear();
        self.vweights.clear();
        self.deg.clear();
        self.uf.clear();
        self.uf_stale = false;
        self.flushes += 1;
    }
}

// ---------------------------------------------------------------------
// query phase: one batch call per family
// ---------------------------------------------------------------------

fn answer_queries(forest: &ServeForest, queries: &[Pending]) -> Vec<Response> {
    let mut responses: Vec<Option<Response>> = vec![None; queries.len()];

    let mut conn: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut repr: (Vec<u32>, Vec<usize>) = Default::default();
    let mut path: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut subtree: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut lca: (Vec<(u32, u32, u32)>, Vec<usize>) = Default::default();
    let mut bottleneck: (Vec<(u32, u32)>, Vec<usize>) = Default::default();
    let mut near: (Vec<u32>, Vec<usize>) = Default::default();

    for (i, p) in queries.iter().enumerate() {
        match &p.request {
            Request::Connected { u, v } => {
                conn.0.push((*u, *v));
                conn.1.push(i);
            }
            Request::Representative { v } => {
                repr.0.push(*v);
                repr.1.push(i);
            }
            Request::PathSum { u, v } => {
                path.0.push((*u, *v));
                path.1.push(i);
            }
            Request::SubtreeSum { v, parent } => {
                subtree.0.push((*v, *parent));
                subtree.1.push(i);
            }
            Request::Lca { u, v, r } => {
                lca.0.push((*u, *v, *r));
                lca.1.push(i);
            }
            Request::Bottleneck { u, v } => {
                bottleneck.0.push((*u, *v));
                bottleneck.1.push(i);
            }
            Request::NearestMarked { v } => {
                near.0.push(*v);
                near.1.push(i);
            }
            Request::Cpt { terminals } => {
                let cpt = forest.compressed_path_tree(terminals);
                responses[i] = Some(Response::Cpt(CptResult {
                    vertices: cpt.vertices,
                    edges: cpt.edges,
                }));
            }
            _ => unreachable!("updates never enter the query phase"),
        }
    }

    if !conn.0.is_empty() {
        for (ans, &i) in forest.batch_connected(&conn.0).into_iter().zip(&conn.1) {
            responses[i] = Some(Response::Bool(ans));
        }
    }
    if !repr.0.is_empty() {
        for (ans, &i) in forest
            .batch_find_representatives(&repr.0)
            .into_iter()
            .zip(&repr.1)
        {
            responses[i] = Some(Response::Vertex((ans != NO_VERTEX).then_some(ans)));
        }
    }
    if !path.0.is_empty() {
        for (ans, &i) in forest
            .batch_path_aggregate(&path.0)
            .into_iter()
            .zip(&path.1)
        {
            responses[i] = Some(Response::Sum(ans.map(|p| p.sum)));
        }
    }
    if !subtree.0.is_empty() {
        for (ans, &i) in forest
            .batch_subtree_aggregate(&subtree.0)
            .into_iter()
            .zip(&subtree.1)
        {
            responses[i] = Some(Response::Sum(ans));
        }
    }
    if !lca.0.is_empty() {
        for (ans, &i) in forest.batch_lca(&lca.0).into_iter().zip(&lca.1) {
            responses[i] = Some(Response::Vertex(ans));
        }
    }
    if !bottleneck.0.is_empty() {
        for (ans, &i) in forest
            .batch_path_extrema(&bottleneck.0)
            .into_iter()
            .zip(&bottleneck.1)
        {
            responses[i] = Some(Response::Extrema(ans));
        }
    }
    if !near.0.is_empty() {
        for (ans, &i) in forest
            .batch_nearest_marked(&near.0)
            .into_iter()
            .zip(&near.1)
        {
            responses[i] = Some(Response::Near(ans));
        }
    }

    responses
        .into_iter()
        .map(|r| r.expect("every query family answered"))
        .collect()
}
