//! MVCC version publication: immutable, version-stamped forest handles.
//!
//! The pipelined coalescer never lets queries touch the live forest.
//! After an epoch's update phase commits, the worker *publishes* an
//! immutable [`PublishedVersion`] — a whole `ServeForest` stamped with
//! the epoch whose committed state it reflects — into the server's
//! [`VersionTable`]. The query executor sweeps against that handle while
//! the worker already mutates the live forest for the next epoch, and
//! clients can pin the same handles as [`Snapshot`]s for consistent
//! point-in-time multi-query reads.
//!
//! # Version lifecycle
//!
//! ```text
//! live forest ──commit E──▶ publish(version = E) ──▶ table (newest first)
//!      ▲                        │                        │ retention
//!      │                        ▼                        ▼ window full
//!  catch-up ◀── reclaim ◀── evicted Arc (once every pin drops)
//!  (replay FlushRecords E+1..E', republish as E')
//! ```
//!
//! Versions are identified by **epoch number**: version `E` is the forest
//! state after epoch `E`'s updates committed. Epochs that change nothing
//! reuse the previous version id, so two equal stamps always mean
//! identical state. Buffers cycle: an evicted version whose pins have all
//! dropped is caught up by replaying the journaled `FlushRecord` batches
//! of the intervening epochs (the same batch groups the WAL persists) and
//! republished — the worker only falls back to a full `O(n)` clone of the
//! live forest when no reclaimable buffer exists.

use crate::agg::ServeForest;
use crate::exec::answer_requests;
use crate::request::{Request, Response};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// An immutable forest stamped with the epoch whose committed state it
/// holds. Shared read-only: queries run over `&ServeForest`.
pub(crate) struct PublishedVersion {
    pub(crate) version: u64,
    pub(crate) forest: ServeForest,
}

/// The retained published versions, newest last. Readers pin entries via
/// `Arc`; the worker publishes and reclaims evicted buffers.
#[derive(Default)]
pub(crate) struct VersionTable {
    inner: Mutex<VecDeque<Arc<PublishedVersion>>>,
}

impl VersionTable {
    /// Publish `v` as the newest version, retaining at most `retain`
    /// entries. Returns the evicted handles so the caller can recycle
    /// their buffers once every outstanding pin drops.
    pub(crate) fn publish(
        &self,
        v: Arc<PublishedVersion>,
        retain: usize,
    ) -> Vec<Arc<PublishedVersion>> {
        let mut t = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(
            t.back().is_none_or(|b| b.version < v.version),
            "published versions are strictly increasing"
        );
        t.push_back(v);
        let mut evicted = Vec::new();
        while t.len() > retain.max(1) {
            evicted.push(t.pop_front().expect("len checked"));
        }
        evicted
    }

    /// The newest published version, if any epoch has published yet.
    pub(crate) fn latest(&self) -> Option<Arc<PublishedVersion>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .back()
            .cloned()
    }

    /// The retained version with exactly this stamp, if not yet evicted.
    pub(crate) fn at(&self, version: u64) -> Option<Arc<PublishedVersion>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|p| p.version == version)
            .cloned()
    }
}

/// A pinned, consistent point-in-time view of the served forest.
///
/// Obtained from [`RcServe::snapshot_latest`](crate::RcServe::snapshot_latest)
/// / [`snapshot_at`](crate::RcServe::snapshot_at) (or their
/// [`ServeClient`](crate::ServeClient) equivalents). All queries through
/// one snapshot observe exactly the state committed by epoch
/// [`version`](Snapshot::version) — updates racing in the epoch loop are
/// invisible. Holding a snapshot keeps its forest buffer alive (and out
/// of the worker's recycle pool) until dropped; it stays valid across —
/// and after — server shutdown.
pub struct Snapshot {
    pub(crate) inner: Arc<PublishedVersion>,
}

impl Snapshot {
    /// The epoch whose committed state this snapshot holds.
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// Direct shared access to the pinned forest (for batch entry points
    /// beyond the request surface).
    pub fn forest(&self) -> &ServeForest {
        &self.inner.forest
    }

    /// Answer one query against the pinned state. Update requests answer
    /// [`Response::Rejected`]: snapshots are read-only.
    pub fn query(&self, request: &Request) -> Response {
        answer_requests(&self.inner.forest, &[request])
            .pop()
            .expect("one response per request")
    }

    /// Answer many queries against the pinned state, batch-grouped by
    /// family — the multi-query consistency the snapshot exists for.
    pub fn query_many(&self, requests: &[Request]) -> Vec<Response> {
        let refs: Vec<&Request> = requests.iter().collect();
        answer_requests(&self.inner.forest, &refs)
    }
}
