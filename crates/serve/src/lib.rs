//! `rc-serve` — a concurrent request-coalescing service layer over the
//! batch-parallel RC forest.
//!
//! The paper's central result is that *batch* dynamic-tree operations
//! amortize far better than sequential single operations — but real
//! traffic arrives as millions of independent single-shot requests. This
//! crate is the piece in between: an **epoch-based coalescer** that owns a
//! [`ServeForest`], accepts asynchronous requests (`Link`, `Cut`, weight
//! updates, and the seven query families: connectivity, subtree, path,
//! LCA, compressed path trees, bottleneck, nearest-marked) from many
//! client threads, and drains them in epochs:
//!
//! ```text
//!  clients ──submit──▶ sharded queue ──drain──▶ ┌───────── epoch ─────────┐
//!    │                 (seq-stamped)            │ update phase (overlay + │
//!    │◀─── oneshot ResponseHandle ──────────────│   batch_cut/batch_link) │
//!                                               │ query phase (one batch  │
//!                                               │   call per family)      │
//!                                               └─────────────────────────┘
//! ```
//!
//! Each epoch is serializable by construction: updates commit in global
//! submission order (in-epoch conflicts — duplicate or contradictory
//! link/cut pairs — are resolved exactly by that order via an overlay that
//! flushes sub-batches only when a later op depends on an earlier one),
//! then every query family fans into a single `O(k log(1 + n/k))`
//! marked-sweep-backed batch call over the post-update forest.
//!
//! # Batching policy
//!
//! [`ServeConfig`] exposes three knobs that trade per-request latency for
//! throughput:
//!
//! * `max_linger` — how long the worker waits for more requests after the
//!   first arrival. Larger ⇒ bigger batches ⇒ more amortization, at up to
//!   that much extra latency for the epoch's first request.
//! * `drain_threshold` — adaptive early drain: a hot queue never waits
//!   for the linger timer once this many requests are pending.
//! * `max_epoch_ops` — cap on epoch size, bounding worst-case epoch
//!   latency under overload.
//!
//! [`ServeConfig::unbatched`] (size-1 epochs) is the degenerate baseline;
//! the `serve_load` driver in `rc-bench` measures the coalescing speedup
//! against it and records the trajectory in `BENCH_serve.json`.
//!
//! # Epoch pipelining & MVCC reads
//!
//! By default ([`ServeConfig::pipeline_depth`] = 1) the two phases of
//! consecutive epochs *overlap*: after epoch E's updates commit, the
//! worker publishes an immutable version-stamped copy of the forest and
//! hands E's queries to a dedicated executor thread, then immediately
//! drains and commits epoch E+1 while E's queries sweep the published
//! version. Serializability is preserved in MVCC form — every query of
//! epoch E observes exactly the epoch-E committed state, as stamped in
//! the commit log ([`LogEntry::version`]). The same published versions
//! back [`RcServe::snapshot_latest`] / [`RcServe::snapshot_at`]:
//! client-pinned [`Snapshot`]s for consistent point-in-time multi-query
//! reads, retained for [`ServeConfig::retained_versions`] publications.
//! [`ServeConfig::coalesced`] (depth 0) restores strict phase
//! alternation on the worker thread.
//!
//! # Durability (optional)
//!
//! [`RcServe::start_durable`] puts an `rc-store` WAL + snapshot store
//! under the epoch loop: each committed epoch's update batches are
//! appended (and, per [`SyncPolicy`], fsynced) *before* the epoch's
//! responses are released, the log compacts into parallel snapshots once
//! it outgrows a threshold, and restart recovers by batch-replaying the
//! WAL suffix over the newest snapshot. Clean shutdown always flushes the
//! WAL tail. See the README's "Durability" section.
//!
//! # Quick start
//!
//! ```
//! use rc_serve::{Request, Response, RcServe, ServeConfig, ServeForest};
//! use rc_core::BuildOptions;
//!
//! let forest = ServeForest::build_edges(
//!     4, &[(0, 1, 5), (1, 2, 7), (2, 3, 2)], BuildOptions::default()).unwrap();
//! let server = RcServe::start(forest, ServeConfig::default());
//! let client = server.client();
//! assert_eq!(client.call(Request::PathSum { u: 0, v: 3 }), Response::Sum(Some(14)));
//! assert_eq!(
//!     client.call(Request::Cut { u: 1, v: 2 }),
//!     Response::Updated(Ok(())));
//! assert_eq!(client.call(Request::PathSum { u: 0, v: 3 }), Response::Sum(None));
//! let forest = server.shutdown();
//! assert_eq!(forest.num_edges(), 2);
//! ```

mod agg;
mod coalescer;
mod exec;
mod request;
mod stats;
mod telemetry;
mod version;

pub use agg::{PathSummary, ServeAgg, ServeForest, ServeVertexWeight};
pub use coalescer::{CommitEvent, LogEntry, RcServe, ServeClient, ServeConfig};
pub use exec::answer_read_only;
/// Observability types, re-exported from `rc-obs`: every
/// [`RcServe::metrics`] snapshot and [`RcServe::flight_dump`] trace is
/// made of these (see the "Observability" section of the README).
pub use rc_obs::{
    CalibrationTable, DispatchMode, DispatchStats, Engine, EpochTrace, ExemplarEntry, HealthView,
    HistogramSummary, MetricValue, MetricsSnapshot, ObsServer, ObsServerConfig, PhaseTotals,
    RecycleOutcome, RequestTrace, Span, StallInfo, TraceDump, ENGINE_NAMES, FAMILY_NAMES,
};
/// Durability knobs, re-exported from `rc-store`: pass a [`Durability`]
/// to [`RcServe::start_durable`] to put a WAL + snapshot store under the
/// epoch loop (see the "Durability" section of the README).
pub use rc_store::{RecoveryReport, StoreConfig as Durability, StoreError, SyncPolicy};
pub use request::{CptResult, Request, Response, ResponseHandle};
pub use stats::{EpochStats, LatencyHistogram, LatencySummary, ServeStats};
pub use telemetry::{StallReport, TelemetryDump};
pub use version::Snapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::{BuildOptions, ForestError};
    use std::time::Duration;

    fn path_forest(n: u32) -> ServeForest {
        let edges: Vec<(u32, u32, u64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        ServeForest::build_edges(n as usize, &edges, BuildOptions::default()).unwrap()
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            max_linger: Duration::from_micros(50),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_every_query_family() {
        let server = RcServe::start(path_forest(10), quick_cfg());
        let c = server.client();
        assert_eq!(
            c.call(Request::Connected { u: 0, v: 9 }),
            Response::Bool(true)
        );
        assert_eq!(
            c.call(Request::PathSum { u: 0, v: 9 }),
            Response::Sum(Some(9))
        );
        assert_eq!(
            c.call(Request::Lca { u: 2, v: 5, r: 9 }),
            Response::Vertex(Some(5))
        );
        assert_eq!(
            c.call(Request::SubtreeSum { v: 9, parent: 8 }),
            Response::Sum(Some(0))
        );
        match c.call(Request::Bottleneck { u: 0, v: 9 }) {
            Response::Extrema(Some(p)) => assert_eq!(p.min.unwrap().w, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.call(Request::Mark { v: 0 }), Response::Updated(Ok(())));
        assert_eq!(
            c.call(Request::NearestMarked { v: 4 }),
            Response::Near(Some((4, 0)))
        );
        match c.call(Request::Cpt {
            terminals: vec![0, 4, 9],
        }) {
            Response::Cpt(cpt) => {
                assert!(cpt.vertices.contains(&0) && cpt.vertices.contains(&9));
                assert!(!cpt.edges.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match c.call(Request::Representative { v: 3 }) {
            Response::Vertex(Some(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_requests_answer_errors_not_panics() {
        let server = RcServe::start(path_forest(4), quick_cfg());
        let c = server.client();
        assert_eq!(
            c.call(Request::Link { u: 0, v: 99, w: 1 }),
            Response::Updated(Err(ForestError::VertexOutOfRange { v: 99, n: 4 }))
        );
        assert_eq!(
            c.call(Request::Link { u: 0, v: 3, w: 1 }),
            Response::Updated(Err(ForestError::WouldCreateCycle { u: 0, v: 3 }))
        );
        assert_eq!(
            c.call(Request::Cut { u: 0, v: 2 }),
            Response::Updated(Err(ForestError::MissingEdge { u: 0, v: 2 }))
        );
        assert_eq!(
            c.call(Request::UpdateEdgeWeight { u: 0, v: 2, w: 9 }),
            Response::Updated(Err(ForestError::MissingEdge { u: 0, v: 2 }))
        );
        assert_eq!(
            c.call(Request::PathSum { u: 0, v: 77 }),
            Response::Sum(None)
        );
        assert_eq!(
            c.call(Request::NearestMarked { v: 77 }),
            Response::Near(None)
        );
        // The loop is still alive and correct after all that abuse.
        assert_eq!(
            c.call(Request::PathSum { u: 0, v: 3 }),
            Response::Sum(Some(3))
        );
        server.shutdown();
    }

    #[test]
    fn in_epoch_conflicts_resolve_by_submission_order() {
        // Submit a contradictory stream in one burst with a long linger so
        // it lands in a single epoch: cut an edge, relink it, cut again,
        // then a duplicate cut (must fail).
        let server = RcServe::start(
            path_forest(6),
            ServeConfig {
                max_linger: Duration::from_millis(200),
                drain_threshold: 1_000,
                record_commit_log: true,
                ..ServeConfig::default()
            },
        );
        let c = server.client();
        let handles = vec![
            c.submit(Request::Cut { u: 2, v: 3 }),
            c.submit(Request::Link { u: 2, v: 3, w: 9 }),
            c.submit(Request::Cut { u: 2, v: 3 }),
            c.submit(Request::Cut { u: 2, v: 3 }),
            c.submit(Request::Link { u: 0, v: 5, w: 1 }),
            c.submit(Request::Connected { u: 0, v: 5 }),
        ];
        let rs: Vec<Response> = handles.into_iter().map(|h| h.wait()).collect();
        assert_eq!(rs[0], Response::Updated(Ok(())));
        assert_eq!(rs[1], Response::Updated(Ok(())));
        assert_eq!(rs[2], Response::Updated(Ok(())));
        assert_eq!(
            rs[3],
            Response::Updated(Err(ForestError::MissingEdge { u: 2, v: 3 }))
        );
        // 0..2 and 3..5 were reconnected through the new (0,5) edge? No:
        // (2,3) ends cut, so 0-1-2 and 3-4-5 plus link (0,5) joins them.
        assert_eq!(rs[4], Response::Updated(Ok(())));
        assert_eq!(rs[5], Response::Bool(true));
        let forest = server.shutdown();
        let log = c.take_commit_log();
        assert_eq!(log.len(), 6);
        assert!(log.windows(2).all(
            |w| w[0].seq < w[1].seq || (w[0].request.is_update() && !w[1].request.is_update())
        ));
        assert!(!forest.has_edge(2, 3));
        assert!(forest.has_edge(0, 5));
    }

    #[test]
    fn cancelled_link_does_not_poison_later_links() {
        // Components {0}, {1}, {2,3}. In one epoch: Link(0,2) unions
        // comp(0) with comp(2,3); Cut(0,2) cancels it (nothing pending,
        // union-find stale); Link(0,3) must then succeed — the stale union
        // must not surface as a spurious WouldCreateCycle after the
        // empty-overlay flush.
        let forest =
            ServeForest::build_edges(4, &[(2, 3, 1)], rc_core::BuildOptions::default()).unwrap();
        let server = RcServe::start(
            forest,
            ServeConfig {
                max_linger: Duration::from_millis(200),
                drain_threshold: 1_000,
                ..ServeConfig::default()
            },
        );
        let c = server.client();
        let handles = vec![
            c.submit(Request::Link { u: 0, v: 2, w: 5 }),
            c.submit(Request::Cut { u: 0, v: 2 }),
            c.submit(Request::Link { u: 0, v: 3, w: 7 }),
        ];
        let rs: Vec<Response> = handles.into_iter().map(|h| h.wait()).collect();
        assert_eq!(rs[0], Response::Updated(Ok(())));
        assert_eq!(rs[1], Response::Updated(Ok(())));
        assert_eq!(rs[2], Response::Updated(Ok(())), "stale union leaked");
        let forest = server.shutdown();
        assert!(!forest.has_edge(0, 2));
        assert!(forest.has_edge(0, 3));
    }

    #[test]
    fn shutdown_racing_submissions_never_hang() {
        // Hammer shutdown against concurrent submitters; every handle must
        // resolve (served or rejected), never hang on an abandoned slot.
        for round in 0..20 {
            let server = RcServe::start(path_forest(8), ServeConfig::unbatched());
            let clients: Vec<_> = (0..3)
                .map(|t| {
                    let c = server.client();
                    std::thread::spawn(move || {
                        (0..50)
                            .map(|i| {
                                c.submit(Request::Connected {
                                    u: (t + i) % 8,
                                    v: i % 8,
                                })
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            server.shutdown();
            for handles in clients {
                for h in handles.join().unwrap() {
                    assert!(
                        h.wait_timeout(Duration::from_secs(10)).is_some(),
                        "request neither served nor rejected"
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_clients_coalesce_into_epochs() {
        let server = RcServe::start(path_forest(64), quick_cfg());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = server.client();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let (a, b) = ((t * 7 + i) % 64, (i * 13 + 1) % 64);
                        match c.call(Request::PathSum { u: a, v: b }) {
                            Response::Sum(Some(s)) => {
                                assert_eq!(s, (a as i64 - b as i64).unsigned_abs())
                            }
                            other => panic!("thread {t}: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = server.client();
        server.shutdown();
        let stats = c.stats();
        assert_eq!(stats.ops, 8 * 200);
        assert!(stats.epochs < 1_600, "some coalescing happened");
        assert!(stats.latency.count == 1_600 && stats.latency.p50_ns > 0);
        assert!(!c.epoch_history().is_empty());
    }

    #[test]
    fn shutdown_drains_and_rejects_late_submissions() {
        let server = RcServe::start(path_forest(8), quick_cfg());
        let c = server.client();
        let pending: Vec<_> = (0..50)
            .map(|i| {
                c.submit(Request::Connected {
                    u: i % 8,
                    v: (i + 1) % 8,
                })
            })
            .collect();
        let forest = server.shutdown();
        assert_eq!(forest.num_vertices(), 8);
        for h in pending {
            assert!(matches!(h.wait(), Response::Bool(_)), "drained before exit");
        }
        assert_eq!(
            c.call(Request::Connected { u: 0, v: 1 }),
            Response::Rejected
        );
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rc-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_server_recovers_after_restart() {
        use rc_core::{DynamicForest, ForestState};
        let dir = durable_dir("restart");
        let boot = ForestState::from_edges(10, &[(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
        let want = {
            let (server, report) =
                RcServe::start_durable(quick_cfg(), Durability::new(&dir, 10), Some(&boot))
                    .unwrap();
            assert_eq!(report.replayed_epochs, 0, "fresh store");
            let c = server.client();
            assert_eq!(
                c.call(Request::Cut { u: 1, v: 2 }),
                Response::Updated(Ok(()))
            );
            assert_eq!(
                c.call(Request::Link { u: 0, v: 9, w: 7 }),
                Response::Updated(Ok(()))
            );
            assert_eq!(c.call(Request::Mark { v: 3 }), Response::Updated(Ok(())));
            assert_eq!(
                c.call(Request::UpdateEdgeWeight { u: 0, v: 1, w: 50 }),
                Response::Updated(Ok(()))
            );
            server.shutdown().export_state()
        };
        // A new process: recover and serve the identical forest.
        let (server, report) =
            RcServe::start_durable(quick_cfg(), Durability::new(&dir, 10), Some(&boot)).unwrap();
        assert!(report.replayed_epochs > 0, "WAL suffix replayed");
        let c = server.client();
        assert_eq!(
            c.call(Request::PathSum { u: 9, v: 1 }),
            Response::Sum(Some(57))
        );
        assert_eq!(
            c.call(Request::Connected { u: 0, v: 3 }),
            Response::Bool(false)
        );
        assert_eq!(
            c.call(Request::NearestMarked { v: 2 }),
            Response::Near(Some((3, 3)))
        );
        assert_eq!(server.shutdown().export_state(), want);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clean_shutdown_flushes_wal_tail_under_never_sync() {
        // Pins the shutdown fix: with SyncPolicy::Never the WAL tail sits
        // in a user-space buffer — shutdown must flush + fsync it, so a
        // cleanly stopped server never loses acknowledged epochs.
        use rc_core::DynamicForest;
        let dir = durable_dir("flush-tail");
        {
            let (server, _) = RcServe::start_durable(
                quick_cfg(),
                Durability::new(&dir, 6).sync_policy(SyncPolicy::Never),
                None,
            )
            .unwrap();
            let c = server.client();
            for v in 1..6u32 {
                // Chain links: small epochs, all buffered under Never.
                assert_eq!(
                    c.call(Request::Link {
                        u: v - 1,
                        v,
                        w: v as u64
                    }),
                    Response::Updated(Ok(()))
                );
            }
            server.shutdown();
        }
        let (server, report) = RcServe::start_durable(
            quick_cfg(),
            Durability::new(&dir, 6).sync_policy(SyncPolicy::Never),
            None,
        )
        .unwrap();
        assert!(report.replayed_epochs > 0);
        let forest = server.shutdown();
        assert_eq!(forest.num_edges(), 5, "every acknowledged link survived");
        assert_eq!(DynamicForest::path_sum(&mut { forest }, 0, 5), Some(15));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn durability_failure_rejects_instead_of_hanging() {
        // When a WAL append fails mid-service (injected ENOSPC), every
        // outstanding and subsequent request must resolve — as Rejected —
        // rather than hang on a dead worker, and recovery must see
        // exactly the epochs acknowledged before the failure.
        use rc_core::DynamicForest;
        let dir = durable_dir("wal-fail");
        let mut durability = Durability::new(&dir, 8);
        durability.fail_appends_after = 2;
        let (server, _) =
            RcServe::start_durable(ServeConfig::unbatched(), durability, None).unwrap();
        let c = server.client();
        // Two epochs append durably...
        assert_eq!(
            c.call(Request::Link { u: 0, v: 1, w: 5 }),
            Response::Updated(Ok(()))
        );
        assert_eq!(
            c.call(Request::Link { u: 1, v: 2, w: 6 }),
            Response::Updated(Ok(()))
        );
        // ...the third hits the injected failure: Rejected, not a hang.
        let h = c.submit(Request::Link { u: 2, v: 3, w: 7 });
        assert_eq!(
            h.wait_timeout(Duration::from_secs(30)),
            Some(Response::Rejected),
            "request must resolve, never hang"
        );
        // Everything after the failure is rejected too (queries included).
        assert_eq!(
            c.call(Request::Connected { u: 0, v: 1 }),
            Response::Rejected
        );
        server.shutdown();
        // Recovery sees exactly the two acknowledged epochs.
        let (server, report) =
            RcServe::start_durable(ServeConfig::default(), Durability::new(&dir, 8), None).unwrap();
        assert_eq!(report.replayed_epochs, 2);
        let forest = server.shutdown();
        assert_eq!(
            forest.export_state().edges,
            vec![(0, 1, 5), (1, 2, 6)],
            "acknowledged prefix, nothing more"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn durable_compaction_bounds_the_log() {
        use rc_core::DynamicForest;
        let dir = durable_dir("compaction");
        let cfg = || Durability::new(&dir, 64).compact_threshold(512);
        let want = {
            let (server, _) = RcServe::start_durable(quick_cfg(), cfg(), None).unwrap();
            let c = server.client();
            for round in 0..40u32 {
                let v = round % 63;
                if round >= 63 || round % 2 == 0 {
                    let _ = c.call(Request::Link {
                        u: v,
                        v: v + 1,
                        w: round as u64 + 1,
                    });
                } else {
                    let _ = c.call(Request::UpdateVertexWeight { v, w: round as u64 });
                }
            }
            server.shutdown().export_state()
        };
        // The log was compacted (snapshot + truncate) at least once, and
        // recovery from snapshot + short suffix is exact.
        let wal = std::fs::metadata(dir.join(rc_store::WAL_FILE))
            .unwrap()
            .len();
        assert!(wal < 2_048, "wal stayed bounded, got {wal} bytes");
        let snaps = rc_store::snapshot::list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 1, "exactly the newest snapshot retained");
        let (server, _) = RcServe::start_durable(quick_cfg(), cfg(), None).unwrap();
        assert_eq!(server.shutdown().export_state(), want);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn snapshots_pin_point_in_time_reads() {
        let server = RcServe::start(path_forest(8), quick_cfg());
        let c = server.client();
        // A query phase forces publication of the current state.
        assert_eq!(
            c.call(Request::PathSum { u: 0, v: 7 }),
            Response::Sum(Some(7))
        );
        let snap = server.snapshot_latest().expect("query phase published");
        let v0 = snap.version();
        // Mutate the live forest past the pinned version.
        assert_eq!(
            c.call(Request::Cut { u: 3, v: 4 }),
            Response::Updated(Ok(()))
        );
        assert_eq!(c.call(Request::PathSum { u: 0, v: 7 }), Response::Sum(None));
        let v1 = server.latest_version().expect("republished");
        assert!(v1 > v0, "state-changing epoch advanced the version");
        // The snapshot still answers the pre-cut state — consistently
        // across a multi-query batch.
        let rs = snap.query_many(&[
            Request::Connected { u: 3, v: 4 },
            Request::PathSum { u: 0, v: 7 },
        ]);
        assert_eq!(rs, vec![Response::Bool(true), Response::Sum(Some(7))]);
        // Snapshots are read-only: updates answer Rejected.
        assert_eq!(snap.query(&Request::Cut { u: 0, v: 1 }), Response::Rejected);
        server.shutdown();
        // A pinned snapshot stays valid after shutdown.
        assert_eq!(
            snap.query(&Request::PathSum { u: 0, v: 7 }),
            Response::Sum(Some(7))
        );
    }

    #[test]
    fn at_version_respects_the_retention_window() {
        let server = RcServe::start(
            path_forest(8),
            ServeConfig {
                retained_versions: 1,
                max_linger: Duration::from_micros(50),
                ..ServeConfig::default()
            },
        );
        let c = server.client();
        assert_eq!(
            c.call(Request::Connected { u: 0, v: 7 }),
            Response::Bool(true)
        );
        let v0 = server.latest_version().unwrap();
        assert!(server.snapshot_at(v0).is_some(), "newest is retained");
        assert!(server.snapshot_at(v0 + 1).is_none(), "never published");
        // A state change + query republishes; window 1 evicts v0.
        assert_eq!(
            c.call(Request::Cut { u: 0, v: 1 }),
            Response::Updated(Ok(()))
        );
        assert_eq!(
            c.call(Request::Connected { u: 0, v: 7 }),
            Response::Bool(false)
        );
        let v1 = server.latest_version().unwrap();
        assert!(v1 > v0);
        assert!(
            server.snapshot_at(v0).is_none(),
            "evicted outside the retention window"
        );
        assert_eq!(server.snapshot_at(v1).unwrap().version(), v1);
        server.shutdown();
    }

    #[test]
    fn strict_alternation_servers_never_publish() {
        let server = RcServe::start(path_forest(8), ServeConfig::coalesced());
        let c = server.client();
        assert_eq!(
            c.call(Request::Connected { u: 0, v: 7 }),
            Response::Bool(true)
        );
        assert!(server.latest_version().is_none(), "depth 0: no MVCC table");
        assert!(server.snapshot_latest().is_none());
        server.shutdown();
    }

    #[test]
    fn unbatched_config_serves_size_one_epochs() {
        let server = RcServe::start(path_forest(8), ServeConfig::unbatched());
        let c = server.client();
        for _ in 0..32 {
            assert_eq!(
                c.call(Request::Connected { u: 0, v: 7 }),
                Response::Bool(true)
            );
        }
        server.shutdown();
        let stats = c.stats();
        assert_eq!(stats.ops, 32);
        assert_eq!(stats.max_batch, 1, "closed-loop single client, cap 1");
        assert_eq!(stats.epochs, 32);
    }
}
