//! The batch-parallel RC forest: storage and shared contraction machinery.
//!
//! Layout follows §5.1 of the paper, translated from pointers to index
//! arenas: every vertex owns one *vertex cluster* slot and one *history*
//! (a vector of [`LevelRecord`]s — the linked-list-of-levels of Fig. 3
//! becomes a per-vertex `Vec` indexed by contraction round). Base edge
//! clusters live in a free-list arena.

use crate::aggregate::ClusterAggregate;
use crate::types::*;
use rc_parlay::inline::InlineVec;
use std::sync::atomic::{AtomicU64, Ordering};

/// How the contraction rounds choose their independent sets.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ContractionMode {
    /// Leaves always rake; degree-2 vertices compress when their
    /// pseudo-random priority is a strict local maximum (§2.2 / Miller–Reif
    /// style). Decisions are pure functions of the 1-hop level state, so
    /// batch updates reproduce a fresh build bit-for-bit.
    #[default]
    Randomized,
    /// Deterministic chain-coloring MIS (§5.10): Cole–Vishkin
    /// first-differing-bit colors + greedy selection by color. Static
    /// builds only are canonical; updates fall back to the randomized rule
    /// for re-decided regions (the structure stays valid).
    Deterministic,
}

/// Build-time options.
#[derive(Copy, Clone, Debug)]
pub struct BuildOptions {
    /// Seed for all pseudo-random decisions (reproducible).
    pub seed: u64,
    /// Independent-set selection rule.
    pub mode: ContractionMode,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            seed: 0x5EED_C0DE,
            mode: ContractionMode::Randomized,
        }
    }
}

/// An internal (vertex) cluster: the cluster created when its
/// representative vertex contracted (§2.2: representatives and clusters
/// are in one-to-one correspondence).
#[derive(Clone, Debug)]
pub struct VertexCluster<A> {
    /// Unary (rake), Binary (compress), or Nullary (finalize).
    pub kind: ClusterKind,
    /// Contraction round of the representative.
    pub round: u32,
    /// The cluster this one merged into (`NONE` for component roots).
    pub parent: ClusterId,
    /// Boundary vertices in sorted order (`NO_VERTEX` padding).
    pub boundary: [Vertex; 2],
    /// Binary children aligned with `boundary`: `bin_children[i]`'s cluster
    /// path runs `boundary[i] .. v`. Unary clusters use slot 0 only.
    pub bin_children: [ClusterId; 2],
    /// Unary children (clusters that raked onto the representative).
    pub rake_children: InlineVec<ClusterId, MAX_DEGREE>,
    /// Augmented value.
    pub agg: A,
}

impl<A: ClusterAggregate> VertexCluster<A> {
    pub(crate) fn invalid(agg: A) -> Self {
        VertexCluster {
            kind: ClusterKind::Invalid,
            round: 0,
            parent: ClusterId::NONE,
            boundary: [NO_VERTEX; 2],
            bin_children: [ClusterId::NONE; 2],
            rake_children: InlineVec::new(),
            agg,
        }
    }

    /// Number of boundary vertices (0, 1, or 2).
    pub fn num_boundaries(&self) -> usize {
        self.boundary.iter().filter(|&&b| b != NO_VERTEX).count()
    }

    /// Iterate over all children (binary first, then rake).
    pub fn children(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.bin_children
            .iter()
            .copied()
            .filter(|c| !c.is_none())
            .chain(self.rake_children.iter())
    }
}

/// Free-list arena of base edge clusters.
#[derive(Clone, Debug)]
pub struct EdgeArena<A: ClusterAggregate> {
    pub(crate) ep: Vec<(Vertex, Vertex)>,
    pub(crate) weight: Vec<A::EdgeWeight>,
    pub(crate) agg: Vec<A>,
    pub(crate) parent: Vec<ClusterId>,
    pub(crate) alive: Vec<bool>,
    pub(crate) free: Vec<u32>,
    pub(crate) num_alive: usize,
}

impl<A: ClusterAggregate> EdgeArena<A> {
    pub(crate) fn new() -> Self {
        EdgeArena {
            ep: Vec::new(),
            weight: Vec::new(),
            agg: Vec::new(),
            parent: Vec::new(),
            alive: Vec::new(),
            free: Vec::new(),
            num_alive: 0,
        }
    }

    /// Allocate a base cluster for edge `{u, v}` (stored sorted).
    pub(crate) fn alloc(&mut self, u: Vertex, v: Vertex, w: A::EdgeWeight) -> u32 {
        let (u, v) = if u <= v { (u, v) } else { (v, u) };
        let agg = A::base_edge(u, v, &w);
        self.num_alive += 1;
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.ep[i] = (u, v);
            self.weight[i] = w;
            self.agg[i] = agg;
            self.parent[i] = ClusterId::NONE;
            self.alive[i] = true;
            idx
        } else {
            let idx = self.ep.len() as u32;
            self.ep.push((u, v));
            self.weight.push(w);
            self.agg.push(agg);
            self.parent.push(ClusterId::NONE);
            self.alive.push(true);
            idx
        }
    }

    pub(crate) fn release(&mut self, idx: u32) {
        debug_assert!(self.alive[idx as usize]);
        self.alive[idx as usize] = false;
        self.parent[idx as usize] = ClusterId::NONE;
        self.num_alive -= 1;
        self.free.push(idx);
    }

    /// Number of live edges.
    pub fn len(&self) -> usize {
        self.num_alive
    }

    /// True when the forest has no edges.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.num_alive == 0
    }
}

/// Epoch-stamped atomic marks over vertices; supports concurrent claim
/// operations without ever clearing (O(n) allocated once).
pub(crate) struct MarkSpace {
    epoch: AtomicU64,
    stamp: Vec<AtomicU64>,
}

impl MarkSpace {
    pub(crate) fn new(n: usize) -> Self {
        MarkSpace {
            epoch: AtomicU64::new(0),
            stamp: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Reserve `count` fresh epochs; returns the first.
    pub(crate) fn new_epochs(&self, count: u64) -> u64 {
        self.epoch.fetch_add(count, Ordering::Relaxed) + 1
    }

    /// Atomically claim `v` under `epoch`; true when this call claimed it.
    pub(crate) fn claim(&self, v: Vertex, epoch: u64) -> bool {
        let s = &self.stamp[v as usize];
        let mut cur = s.load(Ordering::Relaxed);
        loop {
            if cur == epoch {
                return false;
            }
            match s.compare_exchange_weak(cur, epoch, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Is `v` marked under `epoch`?
    pub(crate) fn is_marked(&self, v: Vertex, epoch: u64) -> bool {
        self.stamp[v as usize].load(Ordering::Relaxed) == epoch
    }
}

impl Clone for MarkSpace {
    fn clone(&self) -> Self {
        // Clones get fresh (zeroed) marks; epochs are per-instance scratch.
        MarkSpace::new(self.stamp.len())
    }
}

impl std::fmt::Debug for MarkSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MarkSpace(n={})", self.stamp.len())
    }
}

/// A batch-parallel dynamic forest over at most `n` vertices of degree ≤ 3,
/// maintained as an RC (rake–compress) tree with augmented values `A`.
///
/// Supports batch edge insertions/deletions in `O(k log(1 + n/k))` expected
/// work and the batch queries of the paper. For arbitrary-degree forests
/// wrap it in `rc_ternary::TernaryForest`.
///
/// ```
/// use rc_core::{RcForest, SumAgg, BuildOptions};
/// let f = RcForest::<SumAgg<i64>>::build_edges(
///     4, &[(0, 1, 10), (1, 2, 20), (2, 3, 30)], BuildOptions::default()).unwrap();
/// assert_eq!(f.path_aggregate(0, 3), Some(60));
/// ```
pub struct RcForest<A: ClusterAggregate> {
    pub(crate) n: usize,
    pub(crate) opts: BuildOptions,
    /// `histories[v][level]` — the state of `v` at each round it was live.
    pub(crate) histories: Vec<Vec<LevelRecord>>,
    /// `clusters[v]` — the cluster represented by `v`.
    pub(crate) clusters: Vec<VertexCluster<A>>,
    pub(crate) vertex_weights: Vec<A::VertexWeight>,
    pub(crate) edges: EdgeArena<A>,
    /// Total number of contraction rounds (max round + 1).
    pub(crate) levels: u32,
    pub(crate) marks: MarkSpace,
    /// Monotone modification counter; see [`RcForest::version`].
    pub(crate) version: u64,
    /// Pooled arenas for the marked-subtree query engine
    /// (`queries::engine`), so steady-state batch queries reuse buffers.
    pub(crate) scratch: crate::queries::engine::ScratchPool,
}

impl<A: ClusterAggregate> RcForest<A> {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (live) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of contraction rounds of the current clustering.
    pub fn num_levels(&self) -> u32 {
        self.levels
    }

    /// The build options in effect.
    pub fn options(&self) -> BuildOptions {
        self.opts
    }

    /// Cheap monotone version stamp: starts at 0 on build and increments
    /// once per mutating operation (batch link/cut/update, weight
    /// updates). Service layers use it to tag epochs and detect staleness
    /// without hashing any structure.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record one mutation. Called by every mutating entry point.
    #[inline]
    pub(crate) fn bump_version(&mut self) {
        self.version += 1;
    }

    /// The contraction round at which `v` contracted.
    #[inline]
    pub fn contraction_round(&self, v: Vertex) -> u32 {
        (self.histories[v as usize].len() - 1) as u32
    }

    /// The record of `v` at `level` (must be live there).
    #[inline]
    pub(crate) fn record(&self, v: Vertex, level: u32) -> &LevelRecord {
        &self.histories[v as usize][level as usize]
    }

    /// The cluster represented by `v`.
    #[inline]
    pub fn cluster(&self, v: Vertex) -> &VertexCluster<A> {
        &self.clusters[v as usize]
    }

    /// Augmented value of any cluster.
    #[inline]
    pub fn agg_of(&self, c: ClusterId) -> &A {
        if c.is_vertex() {
            &self.clusters[c.as_vertex() as usize].agg
        } else {
            &self.edges.agg[c.as_edge() as usize]
        }
    }

    /// Parent of any cluster (`NONE` for component roots).
    #[inline]
    pub fn parent_of(&self, c: ClusterId) -> ClusterId {
        if c.is_vertex() {
            self.clusters[c.as_vertex() as usize].parent
        } else {
            self.edges.parent[c.as_edge() as usize]
        }
    }

    /// Boundary vertices of any cluster, sorted, `NO_VERTEX`-padded.
    pub fn boundaries_of(&self, c: ClusterId) -> [Vertex; 2] {
        if c.is_vertex() {
            self.clusters[c.as_vertex() as usize].boundary
        } else {
            let (u, v) = self.edges.ep[c.as_edge() as usize];
            [u, v]
        }
    }

    /// Contraction round of a vertex cluster; base edges count as round 0
    /// ancestors-wise (they exist from the start).
    #[inline]
    #[allow(dead_code)] // part of the internal cluster API; used by future mixed-batch work
    pub(crate) fn round_of(&self, c: ClusterId) -> u32 {
        if c.is_vertex() {
            self.clusters[c.as_vertex() as usize].round
        } else {
            0
        }
    }

    /// Current vertex weight.
    pub fn vertex_weight(&self, v: Vertex) -> &A::VertexWeight {
        &self.vertex_weights[v as usize]
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: Vertex, v: Vertex) -> Option<&A::EdgeWeight> {
        let e = self.find_base_edge(u, v)?;
        Some(&self.edges.weight[e as usize])
    }

    /// Does the forest currently contain edge `{u, v}`?
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.find_base_edge(u, v).is_some()
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.histories[v as usize][0].degree()
    }

    /// Neighbors of `v` in the current forest.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.histories[v as usize][0].live().map(|e| e.nbr)
    }

    /// Locate the base cluster of edge `{u, v}` by scanning the (≤ 3)
    /// level-0 slots of `u`.
    pub(crate) fn find_base_edge(&self, u: Vertex, v: Vertex) -> Option<u32> {
        if u as usize >= self.n || v as usize >= self.n {
            return None;
        }
        self.histories[u as usize][0]
            .live()
            .find(|e| e.nbr == v)
            .map(|e| e.cluster.as_edge())
    }

    /// All live edges as `(u, v, weight)` with `u < v`.
    pub fn edge_list(&self) -> Vec<(Vertex, Vertex, A::EdgeWeight)> {
        (0..self.edges.ep.len())
            .filter(|&i| self.edges.alive[i])
            .map(|i| {
                let (u, v) = self.edges.ep[i];
                (u, v, self.edges.weight[i].clone())
            })
            .collect()
    }

    /// Build the final cluster data for `v` contracting at `level` with
    /// `event`, from its level record. Returns the assembled cluster
    /// (caller stores it and fixes children's parent pointers).
    pub(crate) fn make_cluster(&self, v: Vertex, level: u32, event: Event) -> VertexCluster<A> {
        let rec = self.record(v, level);
        let vw = &self.vertex_weights[v as usize];

        // Collect rake-children aggregates (≤ 3) without heap allocation.
        let mut rake_children: InlineVec<ClusterId, MAX_DEGREE> = InlineVec::new();
        let mut rake_refs: [std::mem::MaybeUninit<&A>; MAX_DEGREE] =
            [std::mem::MaybeUninit::uninit(); MAX_DEGREE];
        let mut nrakes = 0usize;
        for e in rec.rakes() {
            rake_children.push(e.cluster);
            rake_refs[nrakes].write(self.agg_of(e.cluster));
            nrakes += 1;
        }
        // SAFETY: the first `nrakes` elements were just initialized.
        let rakes: &[&A] =
            unsafe { std::slice::from_raw_parts(rake_refs.as_ptr() as *const &A, nrakes) };

        match event {
            Event::Rake => {
                let e = rec.sole_neighbor();
                let agg = A::rake(v, vw, e.nbr, self.agg_of(e.cluster), rakes);
                VertexCluster {
                    kind: ClusterKind::Unary,
                    round: level,
                    parent: ClusterId::NONE,
                    boundary: [e.nbr, NO_VERTEX],
                    bin_children: [e.cluster, ClusterId::NONE],
                    rake_children,
                    agg,
                }
            }
            Event::Compress => {
                let mut it = rec.live();
                let ea = it.next().expect("degree 2");
                let eb = it.next().expect("degree 2");
                debug_assert!(it.next().is_none());
                debug_assert!(ea.nbr < eb.nbr, "records are sorted");
                let agg = A::compress(
                    v,
                    vw,
                    ea.nbr,
                    self.agg_of(ea.cluster),
                    eb.nbr,
                    self.agg_of(eb.cluster),
                    rakes,
                );
                VertexCluster {
                    kind: ClusterKind::Binary,
                    round: level,
                    parent: ClusterId::NONE,
                    boundary: [ea.nbr, eb.nbr],
                    bin_children: [ea.cluster, eb.cluster],
                    rake_children,
                    agg,
                }
            }
            Event::Finalize => {
                let agg = A::finalize(v, vw, rakes);
                VertexCluster {
                    kind: ClusterKind::Nullary,
                    round: level,
                    parent: ClusterId::NONE,
                    boundary: [NO_VERTEX; 2],
                    bin_children: [ClusterId::NONE; 2],
                    rake_children,
                    agg,
                }
            }
            Event::Live => unreachable!("make_cluster on a live vertex"),
        }
    }

    /// Recompute only the aggregate of an existing cluster from its
    /// children (used by the value-propagation pass).
    pub(crate) fn recompute_agg(&self, v: Vertex) -> A {
        let c = &self.clusters[v as usize];
        let vw = &self.vertex_weights[v as usize];
        let mut rake_refs: [std::mem::MaybeUninit<&A>; MAX_DEGREE] =
            [std::mem::MaybeUninit::uninit(); MAX_DEGREE];
        let mut nrakes = 0usize;
        for rc in c.rake_children.iter() {
            rake_refs[nrakes].write(self.agg_of(rc));
            nrakes += 1;
        }
        // SAFETY: first `nrakes` initialized above.
        let rakes: &[&A] =
            unsafe { std::slice::from_raw_parts(rake_refs.as_ptr() as *const &A, nrakes) };
        match c.kind {
            ClusterKind::Unary => {
                A::rake(v, vw, c.boundary[0], self.agg_of(c.bin_children[0]), rakes)
            }
            ClusterKind::Binary => A::compress(
                v,
                vw,
                c.boundary[0],
                self.agg_of(c.bin_children[0]),
                c.boundary[1],
                self.agg_of(c.bin_children[1]),
                rakes,
            ),
            ClusterKind::Nullary => A::finalize(v, vw, rakes),
            ClusterKind::Invalid => unreachable!("recompute_agg on invalid cluster"),
        }
    }

    /// Compute the successor record of live vertex `v` from level `level`
    /// to `level + 1`, given each neighbor's event at `level` (via
    /// `event_of`).
    pub(crate) fn successor_record(
        &self,
        v: Vertex,
        level: u32,
        event_of: &impl Fn(Vertex) -> Event,
    ) -> LevelRecord {
        let rec = self.record(v, level);
        let mut out = LevelRecord::default();
        for e in rec.adj.iter() {
            if e.raked {
                out.insert_sorted(e);
                continue;
            }
            let u = e.nbr;
            match event_of(u) {
                Event::Live => out.insert_sorted(e),
                Event::Rake => {
                    // u (a leaf) raked onto v; its unary cluster hangs here.
                    out.insert_sorted(AdjEntry {
                        nbr: u,
                        cluster: ClusterId::vertex(u),
                        raked: true,
                    });
                }
                Event::Compress => {
                    // u compressed; this slot now holds the binary cluster
                    // C_u reaching u's other live neighbor.
                    let urec = self.record(u, level);
                    let far = urec
                        .live()
                        .map(|x| x.nbr)
                        .find(|&x| x != v)
                        .expect("compressed neighbor has another live neighbor");
                    out.insert_sorted(AdjEntry {
                        nbr: far,
                        cluster: ClusterId::vertex(u),
                        raked: false,
                    });
                }
                Event::Finalize => {
                    unreachable!("a finalizing vertex has no live neighbors")
                }
            }
        }
        out
    }

    /// Set the parent of every child of `cluster` to `Cv(v)`.
    ///
    /// # Safety-relevant invariant (callers)
    /// Each cluster is the child of exactly one contraction event, so
    /// parallel contractions write disjoint parent fields.
    pub(crate) fn assign_parents_seq(&mut self, v: Vertex) {
        let me = ClusterId::vertex(v);
        let cluster = &self.clusters[v as usize];
        let kids: Vec<ClusterId> = cluster.children().collect();
        for k in kids {
            if k.is_vertex() {
                self.clusters[k.as_vertex() as usize].parent = me;
            } else {
                self.edges.parent[k.as_edge() as usize] = me;
            }
        }
    }
}

impl<A: ClusterAggregate> Clone for RcForest<A> {
    fn clone(&self) -> Self {
        RcForest {
            n: self.n,
            opts: self.opts,
            histories: self.histories.clone(),
            clusters: self.clusters.clone(),
            vertex_weights: self.vertex_weights.clone(),
            edges: self.edges.clone(),
            levels: self.levels,
            marks: self.marks.clone(),
            version: self.version,
            scratch: Default::default(),
        }
    }
}

impl<A: ClusterAggregate> std::fmt::Debug for RcForest<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RcForest(n={}, edges={}, levels={})",
            self.n,
            self.edges.len(),
            self.levels
        )
    }
}
