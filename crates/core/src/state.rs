//! Canonical full-forest state, for snapshots and cross-backend equality.
//!
//! [`ForestState`] captures everything the standard weight model tracks —
//! edges with weights, additive vertex weights, and mark bits — in one
//! *canonical* value: edges are normalized `u < v` and sorted, marks are a
//! sorted id list. Canonical form is what makes the type useful beyond
//! serialization: two backends hold the same logical forest iff their
//! exports compare equal with `==`, which is exactly the check the
//! crash-recovery differential harness needs.
//!
//! The type deliberately lives in `rc-core` (not the durability crate):
//! [`DynamicForest::export_state`](crate::DynamicForest::export_state)
//! produces it from any backend, and
//! [`ForestState::build_std_forest`] restores it through the batch build —
//! so both directions of a snapshot run through the parallel paths.

use crate::aggregates::StdVertexWeight;
use crate::forest::{BuildOptions, RcForest};
use crate::types::{ForestError, Vertex};
use crate::StdAgg;

/// A full forest in the standard weight model, in canonical form.
///
/// Invariants (enforced by [`ForestState::canonicalize`] and checked by
/// [`ForestState::validate`]):
///
/// * every edge is stored `(u, v, w)` with `u < v`, and the edge list is
///   sorted lexicographically with no duplicates;
/// * `weights.len() == n`;
/// * `marks` is sorted, duplicate-free, and every id is `< n`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ForestState {
    /// Number of vertices.
    pub n: usize,
    /// All edges, `u < v`, sorted.
    pub edges: Vec<(Vertex, Vertex, u64)>,
    /// Additive vertex weights, indexed by vertex id.
    pub weights: Vec<u64>,
    /// Marked vertex ids, sorted.
    pub marks: Vec<Vertex>,
}

impl ForestState {
    /// An edgeless, unweighted, unmarked state on `n` vertices.
    pub fn empty(n: usize) -> Self {
        ForestState {
            n,
            edges: Vec::new(),
            weights: vec![0; n],
            marks: Vec::new(),
        }
    }

    /// A state assembled from raw parts (weights default to 0, no marks).
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex, u64)]) -> Self {
        let mut s = ForestState {
            n,
            edges: edges.to_vec(),
            weights: vec![0; n],
            marks: Vec::new(),
        };
        s.canonicalize();
        s
    }

    /// Normalize into canonical form: endpoints ordered `u < v`, edges and
    /// marks sorted and deduplicated.
    pub fn canonicalize(&mut self) {
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup_by_key(|e| (e.0, e.1));
        self.marks.sort_unstable();
        self.marks.dedup();
    }

    /// Check every canonical-form invariant plus id ranges. Returns a
    /// human-readable reason on the first violation. Forest-ness
    /// (acyclicity) is *not* checked here — the batch build rejects
    /// cyclic edge sets with its usual [`ForestError`].
    pub fn validate(&self) -> Result<(), String> {
        if self.weights.len() != self.n {
            return Err(format!(
                "weights.len() {} != n {}",
                self.weights.len(),
                self.n
            ));
        }
        for (i, &(u, v, _)) in self.edges.iter().enumerate() {
            if u >= v {
                return Err(format!("edge {i} ({u}, {v}) not normalized u < v"));
            }
            if v as usize >= self.n {
                return Err(format!("edge {i} endpoint {v} out of range (n={})", self.n));
            }
            if i > 0 {
                let p = self.edges[i - 1];
                if (p.0, p.1) >= (u, v) {
                    return Err(format!("edge list unsorted/duplicate at {i}"));
                }
            }
        }
        for (i, &m) in self.marks.iter().enumerate() {
            if m as usize >= self.n {
                return Err(format!("mark {m} out of range (n={})", self.n));
            }
            if i > 0 && self.marks[i - 1] >= m {
                return Err(format!("marks unsorted/duplicate at {i}"));
            }
        }
        Ok(())
    }

    /// The vertex-weight table as `(vertex, StdVertexWeight)` update
    /// pairs, restricted to entries that differ from the default (so
    /// restoring a mostly-default forest stays `O(non-default)`).
    pub fn vertex_weight_updates(&self) -> Vec<(Vertex, StdVertexWeight)> {
        let mut marked = vec![false; self.n];
        for &m in &self.marks {
            marked[m as usize] = true;
        }
        self.weights
            .iter()
            .enumerate()
            .filter(|&(v, &w)| w != 0 || marked[v])
            .map(|(v, &w)| {
                (
                    v as Vertex,
                    StdVertexWeight {
                        weight: w,
                        marked: marked[v],
                    },
                )
            })
            .collect()
    }

    /// Restore into a standard RC forest via the batch-parallel paths:
    /// one parallel [`RcForest::build_edges`] over the edge list, then one
    /// batched vertex-weight propagation for weights and marks.
    ///
    /// Edge problems (range, duplicates, cycles) surface through the
    /// build's own [`ForestError`]s; out-of-range marks as
    /// [`ForestError::VertexOutOfRange`]. `weights.len() == n` is a hard
    /// invariant of the type (deserializers must
    /// [`validate`](Self::validate) first) and is asserted.
    pub fn build_std_forest(&self, opts: BuildOptions) -> Result<RcForest<StdAgg>, ForestError> {
        assert_eq!(
            self.weights.len(),
            self.n,
            "ForestState invariant: weights.len() == n (validate() decoded states)"
        );
        for &m in &self.marks {
            if m as usize >= self.n {
                return Err(ForestError::VertexOutOfRange { v: m, n: self.n });
            }
        }
        let mut f = RcForest::<StdAgg>::build_edges(self.n, &self.edges, opts)?;
        let vw = self.vertex_weight_updates();
        if !vw.is_empty() {
            f.update_vertex_weights(&vw)?;
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_normalizes_and_dedups() {
        let mut s = ForestState {
            n: 5,
            edges: vec![(3, 1, 7), (0, 2, 5), (1, 3, 7)],
            weights: vec![0; 5],
            marks: vec![4, 2, 4],
        };
        s.canonicalize();
        assert_eq!(s.edges, vec![(0, 2, 5), (1, 3, 7)]);
        assert_eq!(s.marks, vec![2, 4]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_catches_each_violation() {
        let ok = ForestState::from_edges(4, &[(0, 1, 1), (1, 2, 1)]);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.weights.pop();
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.edges.push((2, 9, 1));
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.edges[0] = (1, 0, 1);
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.marks = vec![3, 3];
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.marks = vec![9];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn build_std_forest_restores_weights_and_marks() {
        let mut s = ForestState::from_edges(6, &[(0, 1, 10), (1, 2, 20), (3, 4, 5)]);
        s.weights[2] = 99;
        s.marks = vec![0, 4];
        let f = s.build_std_forest(BuildOptions::default()).unwrap();
        assert_eq!(f.num_edges(), 3);
        assert_eq!(f.vertex_weight(2).weight, 99);
        assert!(f.vertex_weight(4).marked && !f.vertex_weight(1).marked);
        // Cyclic edge sets are rejected by the build, not validate().
        let cyc = ForestState::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        assert!(cyc.validate().is_ok());
        assert!(cyc.build_std_forest(BuildOptions::default()).is_err());
    }
}
