//! Bottleneck aggregates: min/max edge on cluster paths and in contents.
//!
//! These drive batch path-minima/maxima queries (§3.7), compressed path
//! trees, and the incremental MSF (§5.8) — the MSF needs the *identity* of
//! the heaviest edge on a path ("for each cluster, we need to maintain a
//! pointer to the heaviest edge when doing tree contraction").

use crate::aggregate::{ClusterAggregate, PathAggregate, SubtreeAggregate};
use crate::types::Vertex;

/// Totally ordered edge weights.
pub trait OrdWeight: Copy + Ord + PartialEq + Send + Sync + std::fmt::Debug + 'static {}
impl<T: Copy + Ord + PartialEq + Send + Sync + std::fmt::Debug + 'static> OrdWeight for T {}

/// An edge identified by its endpoints plus its weight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeRef<T> {
    /// Smaller endpoint.
    pub u: Vertex,
    /// Larger endpoint.
    pub v: Vertex,
    /// Weight.
    pub w: T,
}

impl<T: OrdWeight> EdgeRef<T> {
    fn new(u: Vertex, v: Vertex, w: T) -> Self {
        let (u, v) = if u <= v { (u, v) } else { (v, u) };
        EdgeRef { u, v, w }
    }

    /// Deterministic comparison: by weight, ties broken by endpoints.
    fn key(&self) -> (T, Vertex, Vertex) {
        (self.w, self.u, self.v)
    }
}

/// Pick the "better" of two optional edges (min when `IS_MAX == false`).
fn pick<T: OrdWeight, const IS_MAX: bool>(
    a: Option<EdgeRef<T>>,
    b: Option<EdgeRef<T>>,
) -> Option<EdgeRef<T>> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            if (x.key() <= y.key()) != IS_MAX {
                Some(x)
            } else {
                Some(y)
            }
        }
    }
}

/// Extreme-edge aggregate; `IS_MAX` selects maxima (true) or minima.
///
/// Prefer the [`MaxEdgeAgg`] / [`MinEdgeAgg`] aliases.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ExtremaAgg<T: OrdWeight, const IS_MAX: bool> {
    /// Extreme edge on the cluster path (`None` off binary clusters).
    pub path: Option<EdgeRef<T>>,
    /// Extreme edge anywhere in the cluster contents.
    pub total: Option<EdgeRef<T>>,
}

/// Heaviest-edge aggregate (path maxima; MSF cycle rule).
pub type MaxEdgeAgg<T> = ExtremaAgg<T, true>;
/// Lightest-edge aggregate (path minima; bottleneck bandwidth).
pub type MinEdgeAgg<T> = ExtremaAgg<T, false>;

impl<T: OrdWeight, const IS_MAX: bool> ClusterAggregate for ExtremaAgg<T, IS_MAX> {
    type VertexWeight = ();
    type EdgeWeight = T;

    fn base_edge(u: Vertex, v: Vertex, w: &T) -> Self {
        let e = Some(EdgeRef::new(u, v, *w));
        ExtremaAgg { path: e, total: e }
    }

    fn compress(
        _v: Vertex,
        _vw: &(),
        _a: Vertex,
        left: &Self,
        _b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self {
        let mut total = pick::<T, IS_MAX>(left.total, right.total);
        for r in rakes {
            total = pick::<T, IS_MAX>(total, r.total);
        }
        ExtremaAgg {
            path: pick::<T, IS_MAX>(left.path, right.path),
            total,
        }
    }

    fn rake(_v: Vertex, _vw: &(), _u: Vertex, edge: &Self, rakes: &[&Self]) -> Self {
        let mut total = edge.total;
        for r in rakes {
            total = pick::<T, IS_MAX>(total, r.total);
        }
        ExtremaAgg { path: None, total }
    }

    fn finalize(_v: Vertex, _vw: &(), rakes: &[&Self]) -> Self {
        let mut total = None;
        for r in rakes {
            total = pick::<T, IS_MAX>(total, r.total);
        }
        ExtremaAgg { path: None, total }
    }
}

impl<T: OrdWeight, const IS_MAX: bool> PathAggregate for ExtremaAgg<T, IS_MAX> {
    type PathVal = Option<EdgeRef<T>>;
    fn path_identity() -> Self::PathVal {
        None
    }
    fn path_combine(a: &Self::PathVal, b: &Self::PathVal) -> Self::PathVal {
        pick::<T, IS_MAX>(*a, *b)
    }
    fn cluster_path(&self) -> Self::PathVal {
        self.path
    }
    fn edge_path_value(_w: &T) -> Self::PathVal {
        // Base-edge path values need endpoints; the forest always reads
        // them from the cluster aggregate (`base_edge`), so this is only
        // used for identity-style conversions.
        None
    }
}

impl<T: OrdWeight, const IS_MAX: bool> SubtreeAggregate for ExtremaAgg<T, IS_MAX> {
    type SubtreeVal = Option<EdgeRef<T>>;
    fn subtree_identity() -> Self::SubtreeVal {
        None
    }
    fn subtree_combine(a: &Self::SubtreeVal, b: &Self::SubtreeVal) -> Self::SubtreeVal {
        pick::<T, IS_MAX>(*a, *b)
    }
    fn cluster_total(&self) -> Self::SubtreeVal {
        self.total
    }
    fn vertex_value(_v: Vertex, _vw: &()) -> Self::SubtreeVal {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_edge_orients_endpoints() {
        let a = MaxEdgeAgg::<u64>::base_edge(9, 2, &5);
        let e = a.path.unwrap();
        assert_eq!((e.u, e.v, e.w), (2, 9, 5));
    }

    #[test]
    fn max_picks_heavier() {
        let l = MaxEdgeAgg::<u64>::base_edge(0, 1, &3);
        let r = MaxEdgeAgg::<u64>::base_edge(1, 2, &8);
        let c = MaxEdgeAgg::compress(1, &(), 0, &l, 2, &r, &[]);
        assert_eq!(c.path.unwrap().w, 8);
        assert_eq!(c.total.unwrap().w, 8);
    }

    #[test]
    fn min_picks_lighter() {
        let l = MinEdgeAgg::<u64>::base_edge(0, 1, &3);
        let r = MinEdgeAgg::<u64>::base_edge(1, 2, &8);
        let c = MinEdgeAgg::compress(1, &(), 0, &l, 2, &r, &[]);
        assert_eq!(c.path.unwrap().w, 3);
    }

    #[test]
    fn rake_contributes_total_not_path() {
        let e = MaxEdgeAgg::<u64>::base_edge(0, 1, &3);
        let hang = MaxEdgeAgg::<u64>::base_edge(5, 6, &99);
        let raked = MaxEdgeAgg::rake(5, &(), 0, &hang, &[]);
        let c = MaxEdgeAgg::compress(1, &(), 0, &e, 2, &e.clone(), &[&raked]);
        assert_eq!(c.path.unwrap().w, 3, "hanging edge must not join the path");
        assert_eq!(c.total.unwrap().w, 99);
    }

    #[test]
    fn ties_break_deterministically() {
        let a = Some(EdgeRef::new(0, 1, 5u64));
        let b = Some(EdgeRef::new(0, 2, 5u64));
        assert_eq!(pick::<u64, true>(a, b), pick::<u64, true>(b, a));
    }
}
