//! Aggregate composition: `(A, B)` maintains two aggregates side by side.
//!
//! Convention for capability traits: *path* behavior comes from the left
//! component, *subtree* behavior from the right. `(MinEdgeAgg<u64>,
//! SumAgg<i64>)`-style pairs thus answer bottleneck path queries and
//! subtree sums from one forest. Both components must agree on the weight
//! types.

use crate::aggregate::{ClusterAggregate, GroupPathAggregate, PathAggregate, SubtreeAggregate};
use crate::types::Vertex;

impl<A, B> ClusterAggregate for (A, B)
where
    A: ClusterAggregate,
    B: ClusterAggregate<VertexWeight = A::VertexWeight, EdgeWeight = A::EdgeWeight>,
{
    type VertexWeight = A::VertexWeight;
    type EdgeWeight = A::EdgeWeight;

    fn base_edge(u: Vertex, v: Vertex, w: &Self::EdgeWeight) -> Self {
        (A::base_edge(u, v, w), B::base_edge(u, v, w))
    }

    fn compress(
        v: Vertex,
        vw: &Self::VertexWeight,
        a: Vertex,
        left: &Self,
        b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self {
        let ra: Vec<&A> = rakes.iter().map(|r| &r.0).collect();
        let rb: Vec<&B> = rakes.iter().map(|r| &r.1).collect();
        (
            A::compress(v, vw, a, &left.0, b, &right.0, &ra),
            B::compress(v, vw, a, &left.1, b, &right.1, &rb),
        )
    }

    fn rake(v: Vertex, vw: &Self::VertexWeight, u: Vertex, edge: &Self, rakes: &[&Self]) -> Self {
        let ra: Vec<&A> = rakes.iter().map(|r| &r.0).collect();
        let rb: Vec<&B> = rakes.iter().map(|r| &r.1).collect();
        (
            A::rake(v, vw, u, &edge.0, &ra),
            B::rake(v, vw, u, &edge.1, &rb),
        )
    }

    fn finalize(v: Vertex, vw: &Self::VertexWeight, rakes: &[&Self]) -> Self {
        let ra: Vec<&A> = rakes.iter().map(|r| &r.0).collect();
        let rb: Vec<&B> = rakes.iter().map(|r| &r.1).collect();
        (A::finalize(v, vw, &ra), B::finalize(v, vw, &rb))
    }
}

impl<A, B> PathAggregate for (A, B)
where
    A: PathAggregate,
    B: ClusterAggregate<VertexWeight = A::VertexWeight, EdgeWeight = A::EdgeWeight>,
{
    type PathVal = A::PathVal;
    fn path_identity() -> Self::PathVal {
        A::path_identity()
    }
    fn path_combine(a: &Self::PathVal, b: &Self::PathVal) -> Self::PathVal {
        A::path_combine(a, b)
    }
    fn cluster_path(&self) -> Self::PathVal {
        self.0.cluster_path()
    }
    fn edge_path_value(w: &Self::EdgeWeight) -> Self::PathVal {
        A::edge_path_value(w)
    }
}

impl<A, B> GroupPathAggregate for (A, B)
where
    A: GroupPathAggregate,
    B: ClusterAggregate<VertexWeight = A::VertexWeight, EdgeWeight = A::EdgeWeight>,
{
    fn path_inverse(a: &Self::PathVal) -> Self::PathVal {
        A::path_inverse(a)
    }
}

impl<A, B> SubtreeAggregate for (A, B)
where
    A: ClusterAggregate,
    B: SubtreeAggregate<VertexWeight = A::VertexWeight, EdgeWeight = A::EdgeWeight>,
{
    type SubtreeVal = B::SubtreeVal;
    fn subtree_identity() -> Self::SubtreeVal {
        B::subtree_identity()
    }
    fn subtree_combine(a: &Self::SubtreeVal, b: &Self::SubtreeVal) -> Self::SubtreeVal {
        B::subtree_combine(a, b)
    }
    fn cluster_total(&self) -> Self::SubtreeVal {
        self.1.cluster_total()
    }
    fn vertex_value(v: Vertex, vw: &Self::VertexWeight) -> Self::SubtreeVal {
        B::vertex_value(v, vw)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SumAgg;
    use super::*;

    type P = (SumAgg<i64>, SumAgg<i64>);

    #[test]
    fn pair_tracks_both_components() {
        let e = P::base_edge(0, 1, &5);
        assert_eq!(e.0.path, 5);
        assert_eq!(e.1.total, 5);
        let e2 = P::base_edge(1, 2, &7);
        let c = P::compress(1, &1, 0, &e, 2, &e2, &[]);
        assert_eq!(c.0.path, 12);
        assert_eq!(c.1.total, 13);
    }

    #[test]
    fn pair_capability_delegation() {
        assert_eq!(<P as PathAggregate>::path_identity(), 0);
        assert_eq!(<P as SubtreeAggregate>::subtree_combine(&3, &4), 7);
        assert_eq!(<P as GroupPathAggregate>::path_inverse(&5), -5);
    }
}
