//! The trivial aggregate: no augmented data at all.

use crate::aggregate::ClusterAggregate;
use crate::types::Vertex;

/// Stores nothing. Use for purely structural workloads — connectivity and
/// LCA queries need only the shape of the RC tree (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct UnitAgg;

impl ClusterAggregate for UnitAgg {
    type VertexWeight = ();
    type EdgeWeight = ();

    fn base_edge(_u: Vertex, _v: Vertex, _w: &()) -> Self {
        UnitAgg
    }
    fn compress(
        _v: Vertex,
        _vw: &(),
        _a: Vertex,
        _left: &Self,
        _b: Vertex,
        _right: &Self,
        _rakes: &[&Self],
    ) -> Self {
        UnitAgg
    }
    fn rake(_v: Vertex, _vw: &(), _u: Vertex, _edge: &Self, _rakes: &[&Self]) -> Self {
        UnitAgg
    }
    fn finalize(_v: Vertex, _vw: &(), _rakes: &[&Self]) -> Self {
        UnitAgg
    }
}
