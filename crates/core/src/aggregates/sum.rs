//! Additive aggregates: path sums and subtree sums over a commutative group.

use crate::aggregate::{
    AddWeight, ClusterAggregate, GroupPathAggregate, PathAggregate, SubtreeAggregate,
};
use crate::types::Vertex;

/// Sums of edge weights along cluster paths and of edge + vertex weights
/// over cluster contents.
///
/// The canonical instantiations are `SumAgg<i64>` and `SumAgg<f64>`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SumAgg<T: AddWeight> {
    /// Sum of edge weights on the cluster path (binary clusters).
    pub path: T,
    /// Sum of edge weights + interior vertex weights over the contents.
    pub total: T,
}

impl<T: AddWeight> ClusterAggregate for SumAgg<T> {
    type VertexWeight = T;
    type EdgeWeight = T;

    fn base_edge(_u: Vertex, _v: Vertex, w: &T) -> Self {
        SumAgg {
            path: *w,
            total: *w,
        }
    }

    fn compress(
        _v: Vertex,
        vw: &T,
        _a: Vertex,
        left: &Self,
        _b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self {
        let mut total = T::add(T::add(left.total, right.total), *vw);
        for r in rakes {
            total = T::add(total, r.total);
        }
        SumAgg {
            path: T::add(left.path, right.path),
            total,
        }
    }

    fn rake(_v: Vertex, vw: &T, _u: Vertex, edge: &Self, rakes: &[&Self]) -> Self {
        let mut total = T::add(edge.total, *vw);
        for r in rakes {
            total = T::add(total, r.total);
        }
        SumAgg {
            path: T::zero(),
            total,
        }
    }

    fn finalize(_v: Vertex, vw: &T, rakes: &[&Self]) -> Self {
        let mut total = *vw;
        for r in rakes {
            total = T::add(total, r.total);
        }
        SumAgg {
            path: T::zero(),
            total,
        }
    }
}

impl<T: AddWeight> PathAggregate for SumAgg<T> {
    type PathVal = T;
    fn path_identity() -> T {
        T::zero()
    }
    fn path_combine(a: &T, b: &T) -> T {
        T::add(*a, *b)
    }
    fn cluster_path(&self) -> T {
        self.path
    }
    fn edge_path_value(w: &T) -> T {
        *w
    }
}

impl<T: AddWeight> GroupPathAggregate for SumAgg<T> {
    fn path_inverse(a: &T) -> T {
        T::neg(*a)
    }
}

impl<T: AddWeight> SubtreeAggregate for SumAgg<T> {
    type SubtreeVal = T;
    fn subtree_identity() -> T {
        T::zero()
    }
    fn subtree_combine(a: &T, b: &T) -> T {
        T::add(*a, *b)
    }
    fn cluster_total(&self) -> T {
        self.total
    }
    fn vertex_value(_v: Vertex, vw: &T) -> T {
        *vw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_edge_value() {
        let a = SumAgg::<i64>::base_edge(0, 1, &5);
        assert_eq!(a.path, 5);
        assert_eq!(a.total, 5);
    }

    #[test]
    fn compress_combines_paths_and_totals() {
        let left = SumAgg::<i64> { path: 2, total: 10 };
        let right = SumAgg::<i64> { path: 3, total: 20 };
        let rake = SumAgg::<i64> { path: 0, total: 7 };
        let c = SumAgg::compress(1, &100, 0, &left, 2, &right, &[&rake]);
        assert_eq!(c.path, 5);
        assert_eq!(c.total, 10 + 20 + 7 + 100);
    }

    #[test]
    fn rake_drops_path() {
        let edge = SumAgg::<i64> { path: 9, total: 9 };
        let r = SumAgg::rake(3, &1, 4, &edge, &[]);
        assert_eq!(r.path, 0);
        assert_eq!(r.total, 10);
    }

    #[test]
    fn finalize_sums_rakes() {
        let r1 = SumAgg::<i64> { path: 0, total: 5 };
        let r2 = SumAgg::<i64> { path: 0, total: 6 };
        let f = SumAgg::finalize(0, &2, &[&r1, &r2]);
        assert_eq!(f.total, 13);
    }
}
