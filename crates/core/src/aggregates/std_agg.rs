//! The standard combined aggregate: one forest answering every family.
//!
//! The core query families are gated by capability traits that a single
//! aggregate type must implement simultaneously; [`StdAgg`] composes the
//! four building blocks — [`SumAgg`] (path/subtree sums), [`MinEdgeAgg`] /
//! [`MaxEdgeAgg`] (bottlenecks, compressed path trees) and
//! [`NearestMarkedAgg`] (nearest-marked) — over one shared vertex weight
//! ([`StdVertexWeight`]: a `u64` weight plus the mark bit) and `u64` edge
//! weights. It is the weight model of the [`crate::backend::DynamicForest`]
//! backend trait and of the `rc-serve` service layer (which re-exports it
//! as `ServeAgg`).
//!
//! # The product path monoid
//!
//! [`PathSummary`] is the componentwise product of the sum and min/max
//! path monoids. The group operations ([`GroupPathAggregate`]) are exact
//! on the `sum` component only — extrema have no inverses, so their
//! components of `batch_path_aggregate` answers are meaningless and
//! callers never read them there. `batch_path_extrema` and compressed
//! path trees use only `path_combine` over genuine cluster paths, where
//! every component is exact.

use crate::aggregate::{ClusterAggregate, GroupPathAggregate, PathAggregate, SubtreeAggregate};
use crate::aggregates::{
    EdgeRef, MaxEdgeAgg, MinEdgeAgg, NearestMarkedAgg, NearestMarkedAggregate, SumAgg,
};
use crate::types::Vertex;

/// Vertex payload: an additive weight (subtree sums) plus the mark bit
/// (nearest-marked queries).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StdVertexWeight {
    /// Additive vertex weight, counted by subtree sums.
    pub weight: u64,
    /// Mark for nearest-marked queries.
    pub marked: bool,
}

/// Product path value: exact `sum`, `min` and `max` over a path's edges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PathSummary {
    /// Sum of edge weights (wrapping group).
    pub sum: u64,
    /// Lightest edge with endpoints (`None` on an empty path).
    pub min: Option<EdgeRef<u64>>,
    /// Heaviest edge with endpoints (`None` on an empty path).
    pub max: Option<EdgeRef<u64>>,
}

impl PathSummary {
    /// The empty-path value (`sum` 0, no extreme edges).
    pub fn identity() -> Self {
        PathSummary {
            sum: 0,
            min: None,
            max: None,
        }
    }
}

/// Augmented value combining sums, extrema and nearest-marked records.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StdAgg {
    sum: SumAgg<u64>,
    min: MinEdgeAgg<u64>,
    max: MaxEdgeAgg<u64>,
    nm: NearestMarkedAgg,
}

impl StdAgg {
    /// Base value of an *invisible* edge: identity for path and subtree
    /// sums, absent from the extrema, distance 0 for nearest-marked.
    /// Layered backends (ternarization chains) use it for auxiliary
    /// edges that must not be observable in any query family.
    pub fn invisible_edge() -> Self {
        StdAgg {
            sum: SumAgg { path: 0, total: 0 },
            min: MinEdgeAgg {
                path: None,
                total: None,
            },
            max: MaxEdgeAgg {
                path: None,
                total: None,
            },
            nm: NearestMarkedAgg::base_edge(0, 1, &0),
        }
    }
}

/// Collect per-component rake references without re-allocating per child
/// (rakes are at most `MAX_DEGREE` long).
macro_rules! split_rakes {
    ($rakes:expr => $sum:ident, $min:ident, $max:ident, $nm:ident) => {
        let $sum: Vec<&SumAgg<u64>> = $rakes.iter().map(|r| &r.sum).collect();
        let $min: Vec<&MinEdgeAgg<u64>> = $rakes.iter().map(|r| &r.min).collect();
        let $max: Vec<&MaxEdgeAgg<u64>> = $rakes.iter().map(|r| &r.max).collect();
        let $nm: Vec<&NearestMarkedAgg> = $rakes.iter().map(|r| &r.nm).collect();
    };
}

impl ClusterAggregate for StdAgg {
    type VertexWeight = StdVertexWeight;
    type EdgeWeight = u64;

    fn base_edge(u: Vertex, v: Vertex, w: &u64) -> Self {
        StdAgg {
            sum: SumAgg::base_edge(u, v, w),
            min: MinEdgeAgg::base_edge(u, v, w),
            max: MaxEdgeAgg::base_edge(u, v, w),
            nm: NearestMarkedAgg::base_edge(u, v, w),
        }
    }

    fn compress(
        v: Vertex,
        vw: &StdVertexWeight,
        a: Vertex,
        left: &Self,
        b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self {
        split_rakes!(rakes => rs, rmin, rmax, rnm);
        StdAgg {
            sum: SumAgg::compress(v, &vw.weight, a, &left.sum, b, &right.sum, &rs),
            min: MinEdgeAgg::compress(v, &(), a, &left.min, b, &right.min, &rmin),
            max: MaxEdgeAgg::compress(v, &(), a, &left.max, b, &right.max, &rmax),
            nm: NearestMarkedAgg::compress(v, &vw.marked, a, &left.nm, b, &right.nm, &rnm),
        }
    }

    fn rake(v: Vertex, vw: &StdVertexWeight, u: Vertex, edge: &Self, rakes: &[&Self]) -> Self {
        split_rakes!(rakes => rs, rmin, rmax, rnm);
        StdAgg {
            sum: SumAgg::rake(v, &vw.weight, u, &edge.sum, &rs),
            min: MinEdgeAgg::rake(v, &(), u, &edge.min, &rmin),
            max: MaxEdgeAgg::rake(v, &(), u, &edge.max, &rmax),
            nm: NearestMarkedAgg::rake(v, &vw.marked, u, &edge.nm, &rnm),
        }
    }

    fn finalize(v: Vertex, vw: &StdVertexWeight, rakes: &[&Self]) -> Self {
        split_rakes!(rakes => rs, rmin, rmax, rnm);
        StdAgg {
            sum: SumAgg::finalize(v, &vw.weight, &rs),
            min: MinEdgeAgg::finalize(v, &(), &rmin),
            max: MaxEdgeAgg::finalize(v, &(), &rmax),
            nm: NearestMarkedAgg::finalize(v, &vw.marked, &rnm),
        }
    }
}

impl PathAggregate for StdAgg {
    type PathVal = PathSummary;

    fn path_identity() -> PathSummary {
        PathSummary::identity()
    }

    fn path_combine(a: &PathSummary, b: &PathSummary) -> PathSummary {
        PathSummary {
            sum: <SumAgg<u64> as PathAggregate>::path_combine(&a.sum, &b.sum),
            min: <MinEdgeAgg<u64> as PathAggregate>::path_combine(&a.min, &b.min),
            max: <MaxEdgeAgg<u64> as PathAggregate>::path_combine(&a.max, &b.max),
        }
    }

    fn cluster_path(&self) -> PathSummary {
        PathSummary {
            sum: self.sum.cluster_path(),
            min: self.min.cluster_path(),
            max: self.max.cluster_path(),
        }
    }

    fn edge_path_value(w: &u64) -> PathSummary {
        PathSummary {
            sum: *w,
            min: None,
            max: None,
        }
    }
}

impl GroupPathAggregate for StdAgg {
    /// Exact on `sum` only; `min`/`max` have no inverses and answer the
    /// identity (their components of root-path-trick results are
    /// meaningless — read extrema via `batch_path_extrema` instead).
    fn path_inverse(a: &PathSummary) -> PathSummary {
        PathSummary {
            sum: <SumAgg<u64> as GroupPathAggregate>::path_inverse(&a.sum),
            min: None,
            max: None,
        }
    }
}

impl SubtreeAggregate for StdAgg {
    type SubtreeVal = u64;

    fn subtree_identity() -> u64 {
        0
    }

    fn subtree_combine(a: &u64, b: &u64) -> u64 {
        a.wrapping_add(*b)
    }

    fn cluster_total(&self) -> u64 {
        <SumAgg<u64> as SubtreeAggregate>::cluster_total(&self.sum)
    }

    fn vertex_value(_v: Vertex, vw: &StdVertexWeight) -> u64 {
        vw.weight
    }
}

impl NearestMarkedAggregate for StdAgg {
    fn nearest(&self) -> &NearestMarkedAgg {
        &self.nm
    }

    fn is_marked_weight(vw: &StdVertexWeight) -> bool {
        vw.marked
    }

    fn with_mark(vw: &StdVertexWeight, marked: bool) -> StdVertexWeight {
        StdVertexWeight {
            weight: vw.weight,
            marked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{BuildOptions, RcForest};

    fn path_forest(n: u32) -> RcForest<StdAgg> {
        let edges: Vec<(u32, u32, u64)> = (0..n - 1).map(|i| (i, i + 1, (i + 1) as u64)).collect();
        RcForest::build_edges(n as usize, &edges, BuildOptions::default()).unwrap()
    }

    #[test]
    fn one_forest_answers_every_family() {
        let mut f = path_forest(10);
        assert_eq!(
            f.batch_path_aggregate(&[(0, 9)])[0].map(|p| p.sum),
            Some(45)
        );
        let ex = f.batch_path_extrema(&[(2, 7)]);
        let p = ex[0].unwrap();
        assert_eq!(p.min.unwrap().w, 3);
        assert_eq!(p.max.unwrap().w, 7);
        assert_eq!(p.sum, 3 + 4 + 5 + 6 + 7);
        assert!(f.batch_connected(&[(0, 9)])[0]);
        assert_eq!(f.batch_lca(&[(2, 5, 9)]), vec![Some(5)]);
        f.update_vertex_weights(&[(
            9,
            StdVertexWeight {
                weight: 100,
                marked: false,
            },
        )])
        .unwrap();
        assert_eq!(f.batch_subtree_aggregate(&[(9, 8)]), vec![Some(100)]);
        assert_eq!(f.batch_subtree_aggregate(&[(8, 7)]), vec![Some(100 + 9)]);
        f.batch_mark(&[0]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[3]), vec![Some((1 + 2 + 3, 0))]);
        assert_eq!(
            f.batch_path_aggregate(&[(0, 9)])[0].map(|p| p.sum),
            Some(45)
        );
    }

    #[test]
    fn structure_updates_keep_all_components_consistent() {
        let mut f = path_forest(16);
        f.batch_mark(&[15]).unwrap();
        f.batch_cut(&[(7, 8)]).unwrap();
        assert_eq!(f.batch_path_aggregate(&[(0, 15)]), vec![None]);
        assert_eq!(f.batch_nearest_marked(&[0]), vec![None]);
        f.batch_link(&[(0, 15, 2)]).unwrap();
        assert_eq!(f.batch_nearest_marked(&[0]), vec![Some((2, 15))]);
        let ex = f.batch_path_extrema(&[(0, 8)]);
        assert_eq!(ex[0].unwrap().min.unwrap().w, 2, "new edge is lightest");
    }
}
