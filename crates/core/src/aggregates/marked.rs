//! Nearest-marked-vertex aggregate (§3.8, supplementary A.7.1).
//!
//! Maintains, per cluster: (1) the nearest marked vertex *inside* the
//! cluster to the representative, (2) the nearest marked vertex inside to
//! each boundary vertex, and (3) the cluster-path length — exactly the
//! three augmented values of the paper. Marks are vertex weights (`bool`),
//! so `BatchMark`/`BatchUnmark` are plain vertex-weight updates.

use crate::aggregate::ClusterAggregate;
use crate::types::Vertex;

/// Distance to a marked vertex: `(distance, vertex)`, compared
/// lexicographically so ties break deterministically.
pub type Near = Option<(u64, Vertex)>;

fn best(a: Near, b: Near) -> Near {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.min(y)),
    }
}

fn shift(a: Near, d: u64) -> Near {
    a.map(|(dist, v)| (dist + d, v))
}

/// Augmented values for nearest-marked-vertex queries over non-negative
/// edge weights (`u64`). Vertex weight `true` = marked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NearestMarkedAgg {
    /// Total weight of the cluster path (0 off binary clusters).
    pub path_len: u64,
    /// Nearest marked vertex in the cluster to the representative.
    pub near_rep: Near,
    /// Nearest marked vertex in the cluster to boundary `i`, where
    /// boundaries are in sorted vertex-id order (unary clusters use
    /// slot 0).
    pub near_b: [Near; 2],
}

impl NearestMarkedAgg {
    /// Nearest-inside value seen from boundary `b`, when the cluster's
    /// boundaries are `{b, other}`.
    pub fn side(&self, b: Vertex, other: Vertex) -> Near {
        if b < other {
            self.near_b[0]
        } else {
            self.near_b[1]
        }
    }
}

/// Capability trait for nearest-marked-vertex queries: any aggregate that
/// maintains a [`NearestMarkedAgg`] record (directly, or embedded in a
/// larger composite such as a service-layer aggregate) and whose vertex
/// weight carries a mark bit. `RcForest<A: NearestMarkedAggregate>` gains
/// `batch_mark` / `batch_unmark` / `batch_nearest_marked`.
pub trait NearestMarkedAggregate: ClusterAggregate {
    /// The nearest-marked record maintained by this aggregate.
    fn nearest(&self) -> &NearestMarkedAgg;

    /// Is this vertex weight marked?
    fn is_marked_weight(vw: &Self::VertexWeight) -> bool;

    /// The same vertex weight with the mark bit set to `marked`.
    fn with_mark(vw: &Self::VertexWeight, marked: bool) -> Self::VertexWeight;
}

impl NearestMarkedAggregate for NearestMarkedAgg {
    fn nearest(&self) -> &NearestMarkedAgg {
        self
    }

    fn is_marked_weight(vw: &bool) -> bool {
        *vw
    }

    fn with_mark(_vw: &bool, marked: bool) -> bool {
        marked
    }
}

impl ClusterAggregate for NearestMarkedAgg {
    type VertexWeight = bool;
    type EdgeWeight = u64;

    fn base_edge(_u: Vertex, _v: Vertex, w: &u64) -> Self {
        // A base edge has no interior vertices, hence no marked ones.
        NearestMarkedAgg {
            path_len: *w,
            near_rep: None,
            near_b: [None, None],
        }
    }

    fn compress(
        v: Vertex,
        vw: &bool,
        a: Vertex,
        left: &Self,
        b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self {
        let mut near_rep = if *vw { Some((0, v)) } else { None };
        near_rep = best(near_rep, left.side(v, a));
        near_rep = best(near_rep, right.side(v, b));
        for r in rakes {
            near_rep = best(near_rep, r.near_b[0]);
        }
        let near_a = best(left.side(a, v), shift(near_rep, left.path_len));
        let near_bv = best(right.side(b, v), shift(near_rep, right.path_len));
        // Boundaries stored in sorted order; the forest passes a < b.
        debug_assert!(a < b);
        NearestMarkedAgg {
            path_len: left.path_len + right.path_len,
            near_rep,
            near_b: [near_a, near_bv],
        }
    }

    fn rake(v: Vertex, vw: &bool, u: Vertex, edge: &Self, rakes: &[&Self]) -> Self {
        let mut near_rep = if *vw { Some((0, v)) } else { None };
        near_rep = best(near_rep, edge.side(v, u));
        for r in rakes {
            near_rep = best(near_rep, r.near_b[0]);
        }
        let near_u = best(edge.side(u, v), shift(near_rep, edge.path_len));
        NearestMarkedAgg {
            path_len: 0,
            near_rep,
            near_b: [near_u, None],
        }
    }

    fn finalize(v: Vertex, vw: &bool, rakes: &[&Self]) -> Self {
        let mut near_rep = if *vw { Some((0, v)) } else { None };
        for r in rakes {
            near_rep = best(near_rep, r.near_b[0]);
        }
        NearestMarkedAgg {
            path_len: 0,
            near_rep,
            near_b: [None, None],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_edge_has_no_marks() {
        let e = NearestMarkedAgg::base_edge(0, 1, &7);
        assert_eq!(e.path_len, 7);
        assert_eq!(e.near_rep, None);
        assert_eq!(e.near_b, [None, None]);
    }

    #[test]
    fn compress_marked_center() {
        // Path 0 -5- 1 -3- 2, vertex 1 marked, compress at 1.
        let l = NearestMarkedAgg::base_edge(0, 1, &5);
        let r = NearestMarkedAgg::base_edge(1, 2, &3);
        let c = NearestMarkedAgg::compress(1, &true, 0, &l, 2, &r, &[]);
        assert_eq!(c.near_rep, Some((0, 1)));
        assert_eq!(c.near_b[0], Some((5, 1)), "from boundary 0");
        assert_eq!(c.near_b[1], Some((3, 1)), "from boundary 2");
        assert_eq!(c.path_len, 8);
    }

    #[test]
    fn rake_marked_leaf() {
        // Leaf 0 marked rakes onto 1 over weight-4 edge.
        let e = NearestMarkedAgg::base_edge(0, 1, &4);
        let u = NearestMarkedAgg::rake(0, &true, 1, &e, &[]);
        assert_eq!(u.near_rep, Some((0, 0)));
        assert_eq!(u.near_b[0], Some((4, 0)), "distance from boundary 1");
    }

    #[test]
    fn shift_through_unmarked() {
        // 0 -2- 1 -6- 2 with only vertex 0's raked subtree marked: hang a
        // marked unary at vertex 1.
        let l = NearestMarkedAgg::base_edge(0, 1, &2);
        let r = NearestMarkedAgg::base_edge(1, 2, &6);
        let hang = NearestMarkedAgg {
            path_len: 0,
            near_rep: Some((0, 9)),
            near_b: [Some((3, 9)), None],
        };
        let c = NearestMarkedAgg::compress(1, &false, 0, &l, 2, &r, &[&hang]);
        assert_eq!(c.near_rep, Some((3, 9)));
        assert_eq!(c.near_b[0], Some((5, 9)));
        assert_eq!(c.near_b[1], Some((9, 9)));
    }

    #[test]
    fn ties_prefer_smaller_vertex() {
        assert_eq!(best(Some((3, 8)), Some((3, 2))), Some((3, 2)));
    }
}
