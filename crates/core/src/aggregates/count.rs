//! Counting aggregate: hop counts on paths, sizes of subtrees.

use crate::aggregate::{ClusterAggregate, GroupPathAggregate, PathAggregate, SubtreeAggregate};
use crate::types::Vertex;

/// Counts edges on cluster paths and vertices/edges in contents.
/// Unweighted: both weights are `()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CountAgg {
    /// Edges on the cluster path.
    pub path_edges: u64,
    /// Edges in the contents.
    pub edges: u64,
    /// Interior vertices in the contents (boundaries excluded).
    pub vertices: u64,
}

impl ClusterAggregate for CountAgg {
    type VertexWeight = ();
    type EdgeWeight = ();

    fn base_edge(_u: Vertex, _v: Vertex, _w: &()) -> Self {
        CountAgg {
            path_edges: 1,
            edges: 1,
            vertices: 0,
        }
    }

    fn compress(
        _v: Vertex,
        _vw: &(),
        _a: Vertex,
        left: &Self,
        _b: Vertex,
        right: &Self,
        rakes: &[&Self],
    ) -> Self {
        let mut edges = left.edges + right.edges;
        let mut vertices = left.vertices + right.vertices + 1;
        for r in rakes {
            edges += r.edges;
            vertices += r.vertices;
        }
        CountAgg {
            path_edges: left.path_edges + right.path_edges,
            edges,
            vertices,
        }
    }

    fn rake(_v: Vertex, _vw: &(), _u: Vertex, edge: &Self, rakes: &[&Self]) -> Self {
        let mut edges = edge.edges;
        let mut vertices = edge.vertices + 1;
        for r in rakes {
            edges += r.edges;
            vertices += r.vertices;
        }
        CountAgg {
            path_edges: 0,
            edges,
            vertices,
        }
    }

    fn finalize(_v: Vertex, _vw: &(), rakes: &[&Self]) -> Self {
        let mut edges = 0;
        let mut vertices = 1;
        for r in rakes {
            edges += r.edges;
            vertices += r.vertices;
        }
        CountAgg {
            path_edges: 0,
            edges,
            vertices,
        }
    }
}

impl PathAggregate for CountAgg {
    type PathVal = u64;
    fn path_identity() -> u64 {
        0
    }
    fn path_combine(a: &u64, b: &u64) -> u64 {
        a + b
    }
    fn cluster_path(&self) -> u64 {
        self.path_edges
    }
    fn edge_path_value(_w: &()) -> u64 {
        1
    }
}

impl GroupPathAggregate for CountAgg {
    fn path_inverse(a: &u64) -> u64 {
        a.wrapping_neg()
    }
}

impl SubtreeAggregate for CountAgg {
    /// `(vertices, edges)` of a region.
    type SubtreeVal = (u64, u64);
    fn subtree_identity() -> (u64, u64) {
        (0, 0)
    }
    fn subtree_combine(a: &(u64, u64), b: &(u64, u64)) -> (u64, u64) {
        (a.0 + b.0, a.1 + b.1)
    }
    fn cluster_total(&self) -> (u64, u64) {
        (self.vertices, self.edges)
    }
    fn vertex_value(_v: Vertex, _vw: &()) -> (u64, u64) {
        (1, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_of_two_edges() {
        let l = CountAgg::base_edge(0, 1, &());
        let r = CountAgg::base_edge(1, 2, &());
        let c = CountAgg::compress(1, &(), 0, &l, 2, &r, &[]);
        assert_eq!(c.path_edges, 2);
        assert_eq!(c.vertices, 1, "only the representative is interior");
        assert_eq!(c.edges, 2);
    }

    #[test]
    fn rake_counts_leaf() {
        let e = CountAgg::base_edge(0, 1, &());
        let r = CountAgg::rake(0, &(), 1, &e, &[]);
        assert_eq!(r.vertices, 1);
        assert_eq!(r.edges, 1);
        assert_eq!(r.path_edges, 0);
    }

    #[test]
    fn finalize_root_vertex() {
        let f = CountAgg::finalize(0, &(), &[]);
        assert_eq!(f.vertices, 1);
        assert_eq!(f.edges, 0);
    }
}
