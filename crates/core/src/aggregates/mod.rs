//! Ready-made augmented-value implementations.
//!
//! | Aggregate | Path queries | Subtree queries | Notes |
//! |---|---|---|---|
//! | [`SumAgg<T>`] | sums (group) | sums | edge + vertex weights |
//! | [`MaxEdgeAgg<T>`] / [`MinEdgeAgg<T>`] | bottleneck edge | extreme edge | carries edge endpoints; drives compressed path trees & MSF |
//! | [`CountAgg`] | hop counts | sizes | unweighted |
//! | [`UnitAgg`] | — | — | pure structure (connectivity, LCA) |
//! | [`NearestMarkedAgg`] | — | — | nearest-marked-vertex queries (§3.8) |
//! | [`StdAgg`] | sums + extrema | sums | every family at once over `u64` weights; the backend-trait / serve weight model |
//! | `(A, B)` pairs | from `A` | from `B` | composition |

mod count;
mod extrema;
pub mod marked;
mod pair;
pub mod std_agg;
mod sum;
mod unit;

pub use count::CountAgg;
pub use extrema::{EdgeRef, ExtremaAgg, MaxEdgeAgg, MinEdgeAgg, OrdWeight};
pub use marked::{Near, NearestMarkedAgg, NearestMarkedAggregate};
pub use std_agg::{PathSummary, StdAgg, StdVertexWeight};
pub use sum::SumAgg;
pub use unit::UnitAgg;
