//! Contraction decision rules — which vertices rake/compress/finalize in a
//! round.
//!
//! Two rules are provided (§5.10): a randomized local-maximum rule whose
//! decisions are pure functions of the 1-hop level state (required for
//! canonical change propagation), and the paper's deterministic
//! chain-coloring MIS.

use crate::aggregate::ClusterAggregate;
use crate::forest::RcForest;
use crate::types::{Event, Vertex};
use rc_parlay::rng::priority;
use rc_parlay::slice::ParSlice;
use rc_parlay::{parallel_collect, parallel_for};

/// Decide `v`'s event at `level` under the randomized rule.
///
/// * degree 0 → finalize;
/// * degree 1 → rake, except that of two adjacent leaves only the lower id
///   rakes;
/// * degree 2 → compress iff neither neighbor is a leaf and `v`'s priority
///   is a strict local maximum.
///
/// `retained` reports neighbors whose event this round is already fixed
/// (unaffected vertices during change propagation): `v` never contracts
/// next to a retained contraction. Under a randomized-built forest the
/// guard is provably redundant; it is what keeps updates on
/// deterministically-built forests valid.
pub(crate) fn decide_randomized<A: ClusterAggregate>(
    f: &RcForest<A>,
    v: Vertex,
    level: u32,
    retained: &impl Fn(Vertex) -> Option<Event>,
) -> Event {
    let rec = f.record(v, level);
    let blocked = |u: Vertex| matches!(retained(u), Some(ev) if ev.contracts());
    match rec.degree() {
        0 => Event::Finalize,
        1 => {
            let u = rec.sole_neighbor().nbr;
            if blocked(u) {
                return Event::Live;
            }
            if f.record(u, level).degree() == 1 {
                // Two adjacent leaves: the lower id rakes, the other
                // finalizes next round.
                if v < u {
                    Event::Rake
                } else {
                    Event::Live
                }
            } else {
                Event::Rake
            }
        }
        2 => {
            let mut it = rec.live();
            let a = it.next().unwrap().nbr;
            let b = it.next().unwrap().nbr;
            if blocked(a) || blocked(b) {
                return Event::Live;
            }
            if f.record(a, level).degree() == 1 || f.record(b, level).degree() == 1 {
                // A leaf neighbor will rake onto us; stay put.
                return Event::Live;
            }
            let pv = priority(f.opts.seed, v, level);
            if pv > priority(f.opts.seed, a, level) && pv > priority(f.opts.seed, b, level) {
                Event::Compress
            } else {
                Event::Live
            }
        }
        _ => Event::Live,
    }
}

/// Colors of the chain coloring: `2 * 64` first-differing-bit colors plus
/// two special colors for local extrema — the paper's `O(log n) + 2`.
const NUM_COLORS: usize = 130;
const COLOR_MAX: u32 = 128;
const COLOR_MIN: u32 = 129;

/// Chain color of `v` at `level`; `None` when `v` is ineligible
/// (degree > 2). Pure local function, cheap enough to recompute for
/// neighbor checks.
fn chain_color<A: ClusterAggregate>(f: &RcForest<A>, v: Vertex, level: u32) -> Option<u32> {
    let rec = f.record(v, level);
    if rec.degree() > 2 {
        return None;
    }
    let mut max_nbr: Option<Vertex> = None;
    let mut min_nbr: Option<Vertex> = None;
    for e in rec.live() {
        if f.record(e.nbr, level).degree() <= 2 {
            max_nbr = Some(max_nbr.map_or(e.nbr, |m: Vertex| m.max(e.nbr)));
            min_nbr = Some(min_nbr.map_or(e.nbr, |m: Vertex| m.min(e.nbr)));
        }
    }
    Some(match max_nbr {
        None => 0, // isolated in the eligibility graph
        Some(mx) => {
            if v > mx {
                COLOR_MAX
            } else if v < min_nbr.unwrap() {
                COLOR_MIN
            } else {
                let k = (v ^ mx).trailing_zeros();
                2 * k + ((v >> k) & 1)
            }
        }
    })
}

/// The deterministic chain-coloring MIS of §5.10, deciding a whole level.
///
/// Eligible vertices (degree ≤ 2) are colored by the first differing bit of
/// their id versus their maximum-id eligible neighbor (local extrema get
/// two special colors), then a maximal independent set is taken greedily
/// color by color via a counting sort. Adjacent same-color pairs (the
/// vs-max coloring is not always proper) break ties by id, which preserves
/// independence. Writes `events[v]` for every selected vertex; callers
/// pre-fill `events` with `Live` for the live set.
pub(crate) fn decide_deterministic<A: ClusterAggregate>(
    f: &RcForest<A>,
    live: &[Vertex],
    level: u32,
    events: &mut [Event],
) {
    let colored: Vec<(u32, Vertex)> = parallel_collect(live.len(), |i, acc| {
        if let Some(c) = chain_color(f, live[i], level) {
            acc.push((c, live[i]));
        }
    });
    let (sorted, offsets) =
        rc_parlay::sort::counting_sort_by(&colored, NUM_COLORS, |&(c, _)| c as usize);

    for c in 0..NUM_COLORS {
        let lo = offsets[c] as usize;
        let hi = offsets[c + 1] as usize;
        if lo == hi {
            continue;
        }
        let chunk = &sorted[lo..hi];
        // Read phase: decide this color's picks against earlier commits.
        let picks: Vec<Vertex> = {
            let events_ro: &[Event] = events;
            parallel_collect(chunk.len(), |i, acc| {
                let v = chunk[i].1;
                let rec = f.record(v, level);
                let mut ok = true;
                for e in rec.live() {
                    let u = e.nbr;
                    if events_ro[u as usize].contracts() {
                        ok = false; // a neighbor was selected in an earlier color
                        break;
                    }
                    if u < v && chain_color(f, u, level) == Some(c as u32) {
                        ok = false; // adjacent same-color: lower id wins
                        break;
                    }
                }
                if ok {
                    acc.push(v);
                }
            })
        };
        // Commit phase: disjoint writes (picks are pairwise non-adjacent).
        let pe = ParSlice::new(events);
        parallel_for(picks.len(), |i| {
            let v = picks[i];
            let ev = match f.record(v, level).degree() {
                0 => Event::Finalize,
                1 => Event::Rake,
                2 => Event::Compress,
                _ => unreachable!("picked vertex must be eligible"),
            };
            // SAFETY: each picked v is written exactly once this phase.
            unsafe { pe.write(v as usize, ev) };
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_colors_fit() {
        assert!((COLOR_MAX as usize) < NUM_COLORS);
        assert!((COLOR_MIN as usize) < NUM_COLORS);
    }

    #[test]
    fn first_differing_bit_colors_differ_for_mutual_max() {
        // If u and v are each other's max neighbor, CV coloring gives them
        // different colors: check the arithmetic on raw bit patterns.
        let v: u32 = 0b0110;
        let u: u32 = 0b0100;
        let k = (v ^ u).trailing_zeros();
        let cv = 2 * k + ((v >> k) & 1);
        let cu = 2 * k + ((u >> k) & 1);
        assert_ne!(cv, cu);
    }
}
