//! Structural invariant checking and canonical comparison.
//!
//! `validate()` checks every representation invariant of the RC forest —
//! used pervasively in tests and available to users behind a debug call.
//! `canonical_structure()` renders the clustering in an arena-independent
//! form so a repaired forest can be compared bit-for-bit against a fresh
//! rebuild (the change-propagation equality oracle, see DESIGN.md §7).

use crate::aggregate::ClusterAggregate;
use crate::forest::RcForest;
use crate::types::*;

/// Arena-independent rendering of a cluster handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CanonId {
    /// Base edge by endpoints (sorted).
    Edge(Vertex, Vertex),
    /// Vertex cluster by representative.
    Vertex(Vertex),
    /// Null.
    None,
}

/// One canonical level record: `(level, [(nbr, handle, raked)], event)`.
pub type CanonRecord = (u32, Vec<(Vertex, CanonId, bool)>, Event);

/// Canonical view of one vertex's full state (history + cluster).
#[derive(Clone, PartialEq, Debug)]
pub struct CanonVertex {
    /// `(level, [(nbr, handle, raked)], event)` per live level.
    pub records: Vec<CanonRecord>,
    /// How the vertex contracted.
    pub kind: ClusterKind,
    /// When it contracted.
    pub round: u32,
    /// Parent cluster.
    pub parent: CanonId,
    /// Boundary vertices.
    pub boundary: [Vertex; 2],
    /// Binary children.
    pub bin_children: [CanonId; 2],
    /// Rake children.
    pub rake_children: Vec<CanonId>,
}

impl<A: ClusterAggregate> RcForest<A> {
    fn canon_id(&self, c: ClusterId) -> CanonId {
        if c.is_none() {
            CanonId::None
        } else if c.is_vertex() {
            CanonId::Vertex(c.as_vertex())
        } else {
            let (u, v) = self.edges.ep[c.as_edge() as usize];
            CanonId::Edge(u, v)
        }
    }

    /// Render the whole structure in canonical (arena-independent) form.
    pub fn canonical_structure(&self) -> Vec<CanonVertex> {
        (0..self.n as u32)
            .map(|v| {
                let h = &self.histories[v as usize];
                let records = h
                    .iter()
                    .enumerate()
                    .map(|(lvl, r)| {
                        (
                            lvl as u32,
                            r.adj
                                .iter()
                                .map(|e| (e.nbr, self.canon_id(e.cluster), e.raked))
                                .collect(),
                            r.event,
                        )
                    })
                    .collect();
                let c = self.cluster(v);
                CanonVertex {
                    records,
                    kind: c.kind,
                    round: c.round,
                    parent: self.canon_id(c.parent),
                    boundary: c.boundary,
                    bin_children: [
                        self.canon_id(c.bin_children[0]),
                        self.canon_id(c.bin_children[1]),
                    ],
                    rake_children: c.rake_children.iter().map(|k| self.canon_id(k)).collect(),
                }
            })
            .collect()
    }

    /// Check every representation invariant; returns a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n;
        macro_rules! ensure {
            ($cond:expr, $($msg:tt)*) => {
                if !$cond { return Err(format!($($msg)*)); }
            };
        }

        for v in 0..n as u32 {
            let h = &self.histories[v as usize];
            ensure!(!h.is_empty(), "vertex {v} has no history");
            let last = h.len() - 1;
            for (lvl, rec) in h.iter().enumerate() {
                // Event placement.
                if lvl < last {
                    ensure!(
                        rec.event == Event::Live,
                        "v{v} level {lvl}: early non-live event"
                    );
                } else {
                    ensure!(
                        rec.event.contracts(),
                        "v{v} final level {lvl} did not contract"
                    );
                }
                // Degree bound + sortedness.
                ensure!(
                    rec.adj.len() <= MAX_DEGREE,
                    "v{v} level {lvl}: too many slots"
                );
                for w in rec.adj.as_slice().windows(2) {
                    ensure!(
                        w[0].nbr < w[1].nbr,
                        "v{v} level {lvl}: adjacency unsorted/dup"
                    );
                }
                // Entry invariants.
                for e in rec.adj.iter() {
                    let u = e.nbr;
                    ensure!((u as usize) < n, "v{v} level {lvl}: nbr {u} out of range");
                    if e.raked {
                        ensure!(
                            e.cluster == ClusterId::vertex(u),
                            "v{v} level {lvl}: raked slot holds {:?}",
                            e.cluster
                        );
                        let uc = self.cluster(u);
                        ensure!(
                            uc.kind == ClusterKind::Unary,
                            "v{v}: raked nbr {u} not unary"
                        );
                        ensure!((uc.round as usize) < lvl, "v{v}: rake round not earlier");
                        ensure!(
                            uc.boundary[0] == v,
                            "v{v}: raked {u} has boundary {:?}",
                            uc.boundary
                        );
                    } else {
                        // Live neighbor must be live at this level with a
                        // symmetric entry bearing the same handle.
                        let uh = &self.histories[u as usize];
                        ensure!(uh.len() > lvl, "v{v} level {lvl}: live nbr {u} not live");
                        let back = uh[lvl].live().find(|x| x.nbr == v);
                        match back {
                            None => return Err(format!("v{v} level {lvl}: no back-edge from {u}")),
                            Some(x) => ensure!(
                                x.cluster == e.cluster,
                                "v{v}/{u} level {lvl}: handle mismatch"
                            ),
                        }
                        // Handle correctness.
                        if e.cluster.is_edge() {
                            let idx = e.cluster.as_edge() as usize;
                            ensure!(self.edges.alive[idx], "v{v}: dead edge handle");
                            let (a, b) = self.edges.ep[idx];
                            let (x, y) = if v < u { (v, u) } else { (u, v) };
                            ensure!((a, b) == (x, y), "v{v}: edge endpoints mismatch");
                        } else {
                            let w = e.cluster.as_vertex();
                            let wc = self.cluster(w);
                            ensure!(
                                wc.kind == ClusterKind::Binary,
                                "v{v}: handle {w} not binary"
                            );
                            ensure!((wc.round as usize) < lvl, "v{v}: handle round too late");
                            let (x, y) = if v < u { (v, u) } else { (u, v) };
                            ensure!(
                                wc.boundary == [x, y],
                                "v{v}: binary {w} boundary {:?} != ({x},{y})",
                                wc.boundary
                            );
                        }
                    }
                }
                // Contraction arity.
                match rec.event {
                    Event::Rake => ensure!(rec.degree() == 1, "v{v}: rake at degree != 1"),
                    Event::Compress => {
                        ensure!(rec.degree() == 2, "v{v}: compress at degree != 2")
                    }
                    Event::Finalize => {
                        ensure!(rec.degree() == 0, "v{v}: finalize at degree != 0")
                    }
                    Event::Live => {}
                }
            }
            // Independence: no live neighbor contracts in the same round.
            let rec = &h[last];
            for e in rec.live() {
                let u = e.nbr;
                let ul = self.histories[u as usize].len() - 1;
                ensure!(ul != last, "v{v} and {u} both contract at level {last}");
            }

            // Cluster consistency with the final record.
            let c = self.cluster(v);
            ensure!(c.kind != ClusterKind::Invalid, "v{v}: invalid cluster");
            ensure!(c.round as usize == last, "v{v}: round mismatch");
            let expect_kind = match rec.event {
                Event::Rake => ClusterKind::Unary,
                Event::Compress => ClusterKind::Binary,
                Event::Finalize => ClusterKind::Nullary,
                Event::Live => unreachable!(),
            };
            ensure!(c.kind == expect_kind, "v{v}: kind mismatch");
            // Children parent pointers + boundary orientation.
            let me = ClusterId::vertex(v);
            for (i, &bc) in c.bin_children.iter().enumerate() {
                if bc.is_none() {
                    continue;
                }
                ensure!(self.parent_of(bc) == me, "v{v}: bin child parent broken");
                let bb = self.boundaries_of(bc);
                let (x, y) = if c.boundary[i] < v {
                    (c.boundary[i], v)
                } else {
                    (v, c.boundary[i])
                };
                ensure!(
                    bb == [x, y],
                    "v{v}: bin child {i} boundary {:?} != ({x},{y})",
                    bb
                );
            }
            for rk in c.rake_children.iter() {
                ensure!(self.parent_of(rk) == me, "v{v}: rake child parent broken");
                ensure!(rk.is_vertex(), "v{v}: rake child is an edge");
                let rc = self.cluster(rk.as_vertex());
                ensure!(rc.boundary[0] == v, "v{v}: rake child boundary broken");
            }
            // Aggregate fixpoint.
            let recomputed = self.recompute_agg(v);
            ensure!(
                recomputed == c.agg,
                "v{v}: stale aggregate {:?} != {:?}",
                c.agg,
                recomputed
            );

            ensure!((last as u32) < self.levels, "v{v}: round beyond levels");
        }

        // Edge arena: every live edge appears in its endpoints' level-0
        // records and has a parent.
        for i in 0..self.edges.ep.len() {
            if !self.edges.alive[i] {
                continue;
            }
            let (u, v) = self.edges.ep[i];
            let hu = &self.histories[u as usize][0];
            ensure!(
                hu.live()
                    .any(|e| e.nbr == v && e.cluster == ClusterId::edge(i as u32)),
                "edge {i} ({u},{v}) missing from level-0 record"
            );
            ensure!(!self.edges.parent[i].is_none(), "edge {i}: no parent");
            let pagg = A::base_edge(u, v, &self.edges.weight[i]);
            ensure!(pagg == self.edges.agg[i], "edge {i}: stale base aggregate");
        }
        Ok(())
    }

    /// Test-oriented assertion that this forest equals a fresh rebuild of
    /// the same edge set with the same options (canonical change
    /// propagation — randomized mode only).
    pub fn assert_matches_fresh_rebuild(&self) {
        assert_eq!(
            self.opts.mode,
            crate::forest::ContractionMode::Randomized,
            "canonical equality holds for the randomized rule only"
        );
        let edges = self.edge_list();
        let fresh = RcForest::<A>::build(self.n, self.vertex_weights.clone(), &edges, self.opts)
            .expect("edge list of a valid forest must rebuild");
        let a = self.canonical_structure();
        let b = fresh.canonical_structure();
        for v in 0..self.n {
            assert_eq!(
                a[v], b[v],
                "structure diverges from fresh rebuild at vertex {v}"
            );
        }
        for v in 0..self.n as u32 {
            assert_eq!(
                self.cluster(v).agg,
                fresh.cluster(v).agg,
                "aggregate diverges at vertex {v}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::aggregates::SumAgg;
    use crate::forest::{BuildOptions, ContractionMode, RcForest};

    fn opts() -> BuildOptions {
        BuildOptions::default()
    }

    #[test]
    fn fresh_builds_validate() {
        for n in [1usize, 2, 3, 10, 257] {
            let edges: Vec<(u32, u32, i64)> = (0..n.saturating_sub(1))
                .map(|i| (i as u32, i as u32 + 1, i as i64))
                .collect();
            let f = RcForest::<SumAgg<i64>>::build_edges(n, &edges, opts()).unwrap();
            f.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn deterministic_builds_validate() {
        let edges: Vec<(u32, u32, i64)> = (0..99).map(|i| (i, i + 1, 1)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(
            100,
            &edges,
            BuildOptions {
                mode: ContractionMode::Deterministic,
                ..opts()
            },
        )
        .unwrap();
        f.validate().unwrap();
    }

    #[test]
    fn star_and_caterpillar_validate() {
        // Degree-3 caterpillar: spine + hairs.
        let mut edges: Vec<(u32, u32, i64)> = Vec::new();
        let spine = 50u32;
        for i in 0..spine - 1 {
            edges.push((i, i + 1, 1));
        }
        for i in 0..spine {
            edges.push((i, spine + i, 2)); // one hair per spine vertex
        }
        let f = RcForest::<SumAgg<i64>>::build_edges(2 * spine as usize, &edges, opts()).unwrap();
        f.validate().unwrap();
    }

    #[test]
    fn fresh_equals_itself_canonically() {
        let edges: Vec<(u32, u32, i64)> = (0..63).map(|i| (i, i + 1, 1)).collect();
        let f = RcForest::<SumAgg<i64>>::build_edges(64, &edges, opts()).unwrap();
        f.assert_matches_fresh_rebuild();
    }
}
