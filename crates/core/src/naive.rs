//! A naive reference forest — the test oracle.
//!
//! Plain adjacency lists with BFS/DFS query implementations. Everything is
//! `O(component)` per operation, unmistakably correct, and used to
//! cross-check every RC-tree query family on randomized workloads. Also
//! serves as the sequential baseline in benchmarks.
//!
//! Walks are *adjacency-indexed*: visited/predecessor state lives in an
//! epoch-stamped scratch pool that is allocated once and never cleared, so
//! a query touches only the component it walks instead of `O(n)` fresh
//! allocation per call. Oracle replays of long request streams (the serve
//! oracle, backend differential tests) would otherwise be quadratic in `n`.

use crate::types::{ForestError, Vertex};
use std::cell::RefCell;
use std::collections::VecDeque;

/// Reusable per-forest walk state: `stamp[v] == epoch` means "visited in
/// the current walk", and `pred` is only meaningful for stamped vertices.
#[derive(Debug, Default)]
struct WalkScratch {
    epoch: u64,
    stamp: Vec<u64>,
    pred: Vec<Vertex>,
}

impl WalkScratch {
    /// Begin a fresh walk; returns the new epoch.
    fn begin(&mut self, n: usize) -> u64 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.pred.resize(n, 0);
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Adjacency-list forest with edge weights `W`.
#[derive(Debug)]
pub struct NaiveForest<W: Clone> {
    adj: Vec<Vec<(Vertex, W)>>,
    scratch: RefCell<WalkScratch>,
}

impl<W: Clone> Clone for NaiveForest<W> {
    fn clone(&self) -> Self {
        // Clones get fresh scratch; stamps are per-instance state.
        NaiveForest {
            adj: self.adj.clone(),
            scratch: RefCell::new(WalkScratch::default()),
        }
    }
}

impl<W: Clone> NaiveForest<W> {
    /// An edgeless forest on `n` vertices.
    pub fn new(n: usize) -> Self {
        NaiveForest {
            adj: vec![Vec::new(); n],
            scratch: RefCell::new(WalkScratch::default()),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.adj[v as usize].iter().map(|&(u, _)| u)
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: Vertex, v: Vertex) -> Option<&W> {
        self.adj[u as usize]
            .iter()
            .find(|&&(x, _)| x == v)
            .map(|(_, w)| w)
    }

    /// Insert edge `{u, v}`; checks for duplicates and cycles.
    pub fn link(&mut self, u: Vertex, v: Vertex, w: W) -> Result<(), ForestError> {
        if u == v {
            return Err(ForestError::SelfLoop { v });
        }
        if self.edge_weight(u, v).is_some() {
            return Err(ForestError::DuplicateEdge { u, v });
        }
        if self.connected(u, v) {
            return Err(ForestError::WouldCreateCycle { u, v });
        }
        self.adj[u as usize].push((v, w.clone()));
        self.adj[v as usize].push((u, w));
        Ok(())
    }

    /// Remove edge `{u, v}`.
    pub fn cut(&mut self, u: Vertex, v: Vertex) -> Result<W, ForestError> {
        let iu = self.adj[u as usize].iter().position(|&(x, _)| x == v);
        match iu {
            None => Err(ForestError::MissingEdge { u, v }),
            Some(i) => {
                let (_, w) = self.adj[u as usize].swap_remove(i);
                let j = self.adj[v as usize]
                    .iter()
                    .position(|&(x, _)| x == u)
                    .expect("symmetric adjacency");
                self.adj[v as usize].swap_remove(j);
                Ok(w)
            }
        }
    }

    /// Are `u` and `v` in the same tree? (`O(component)`, no per-call
    /// allocation.)
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        if u == v {
            return true;
        }
        let mut s = self.scratch.borrow_mut();
        let epoch = s.begin(self.adj.len());
        s.stamp[u as usize] = epoch;
        let mut q = VecDeque::from([u]);
        while let Some(x) = q.pop_front() {
            for &(y, _) in &self.adj[x as usize] {
                if s.stamp[y as usize] != epoch {
                    if y == v {
                        return true;
                    }
                    s.stamp[y as usize] = epoch;
                    q.push_back(y);
                }
            }
        }
        false
    }

    /// Vertices of `v`'s component.
    pub fn component(&self, v: Vertex) -> Vec<Vertex> {
        let mut s = self.scratch.borrow_mut();
        let epoch = s.begin(self.adj.len());
        let mut out = vec![v];
        s.stamp[v as usize] = epoch;
        let mut i = 0;
        while i < out.len() {
            let x = out[i];
            i += 1;
            for &(y, _) in &self.adj[x as usize] {
                if s.stamp[y as usize] != epoch {
                    s.stamp[y as usize] = epoch;
                    out.push(y);
                }
            }
        }
        out
    }

    /// The unique path from `u` to `v` as a vertex sequence.
    pub fn path_vertices(&self, u: Vertex, v: Vertex) -> Option<Vec<Vertex>> {
        if u == v {
            return Some(vec![u]);
        }
        let mut s = self.scratch.borrow_mut();
        let epoch = s.begin(self.adj.len());
        s.stamp[u as usize] = epoch;
        s.pred[u as usize] = u;
        let mut q = VecDeque::from([u]);
        while let Some(x) = q.pop_front() {
            for &(y, _) in &self.adj[x as usize] {
                if s.stamp[y as usize] != epoch {
                    s.stamp[y as usize] = epoch;
                    s.pred[y as usize] = x;
                    if y == v {
                        let mut path = vec![v];
                        let mut cur = v;
                        while cur != u {
                            cur = s.pred[cur as usize];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(y);
                }
            }
        }
        None
    }

    /// Edge weights along the path `u..v`.
    pub fn path_edges(&self, u: Vertex, v: Vertex) -> Option<Vec<W>> {
        let p = self.path_vertices(u, v)?;
        Some(
            p.windows(2)
                .map(|w| self.edge_weight(w[0], w[1]).expect("path edge").clone())
                .collect(),
        )
    }

    /// The subtree rooted at `u` with parent `p` (which must be a neighbor
    /// of `u`): `(vertices, edge weights)`; excludes the edge `{u, p}`.
    pub fn subtree(&self, u: Vertex, p: Vertex) -> (Vec<Vertex>, Vec<W>) {
        let mut vertices = vec![u];
        let mut edges = Vec::new();
        let mut stack = vec![(u, p)];
        while let Some((x, from)) = stack.pop() {
            for &(y, ref w) in &self.adj[x as usize] {
                if y != from {
                    vertices.push(y);
                    edges.push(w.clone());
                    stack.push((y, x));
                }
            }
        }
        (vertices, edges)
    }

    /// LCA of `u` and `v` with respect to root `r` (all must be connected).
    pub fn lca(&self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        let pu = self.path_vertices(u, r)?;
        let pv = self.path_vertices(v, r)?;
        // Walk back from r; the last common vertex is the LCA.
        let mut i = pu.len();
        let mut j = pv.len();
        let mut lca = None;
        while i > 0 && j > 0 && pu[i - 1] == pv[j - 1] {
            lca = Some(pu[i - 1]);
            i -= 1;
            j -= 1;
        }
        lca
    }
}

impl NaiveForest<u64> {
    /// Distance-to-nearest-marked vertex for `v` (BFS over weighted
    /// edges — Dijkstra is unnecessary since weights are non-negative and
    /// trees have unique paths).
    pub fn nearest_marked(&self, v: Vertex, marked: &[bool]) -> Option<(u64, Vertex)> {
        let mut best: Option<(u64, Vertex)> = None;
        let mut s = self.scratch.borrow_mut();
        let epoch = s.begin(self.adj.len());
        s.stamp[v as usize] = epoch;
        let mut stack = vec![(v, 0u64)];
        while let Some((x, d)) = stack.pop() {
            if marked[x as usize] {
                let cand = (d, x);
                best = Some(match best {
                    None => cand,
                    Some(b) => b.min(cand),
                });
            }
            for &(y, w) in &self.adj[x as usize] {
                if s.stamp[y as usize] != epoch {
                    s.stamp[y as usize] = epoch;
                    stack.push((y, d + w));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> NaiveForest<u64> {
        let mut f = NaiveForest::new(4);
        f.link(0, 1, 10).unwrap();
        f.link(1, 2, 20).unwrap();
        f.link(2, 3, 30).unwrap();
        f
    }

    #[test]
    fn link_cut_connected() {
        let mut f = path4();
        assert!(f.connected(0, 3));
        assert_eq!(f.cut(1, 2).unwrap(), 20);
        assert!(!f.connected(0, 3));
        assert!(f.connected(0, 1));
        assert_eq!(f.cut(1, 2), Err(ForestError::MissingEdge { u: 1, v: 2 }));
    }

    #[test]
    fn cycle_rejected() {
        let mut f = path4();
        assert_eq!(
            f.link(0, 3, 1),
            Err(ForestError::WouldCreateCycle { u: 0, v: 3 })
        );
    }

    #[test]
    fn paths() {
        let f = path4();
        assert_eq!(f.path_vertices(0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(f.path_edges(0, 3).unwrap(), vec![10, 20, 30]);
        assert_eq!(f.path_vertices(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn subtree_orientation() {
        let f = path4();
        let (vs, es) = f.subtree(2, 1);
        assert_eq!(vs, vec![2, 3]);
        assert_eq!(es, vec![30]);
        let (vs, _) = f.subtree(2, 3);
        let mut vs = vs;
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2]);
    }

    #[test]
    fn lca_on_star() {
        let mut f = NaiveForest::new(5);
        f.link(0, 1, 1).unwrap();
        f.link(0, 2, 1).unwrap();
        f.link(0, 3, 1).unwrap();
        f.link(3, 4, 1).unwrap();
        assert_eq!(f.lca(1, 2, 4), Some(0));
        assert_eq!(f.lca(1, 0, 4), Some(0));
        assert_eq!(f.lca(4, 3, 3), Some(3));
        assert_eq!(f.lca(1, 4, 1), Some(1));
    }

    #[test]
    fn nearest_marked_basics() {
        let f = path4();
        let mut marked = vec![false; 4];
        assert_eq!(f.nearest_marked(1, &marked), None);
        marked[3] = true;
        assert_eq!(f.nearest_marked(1, &marked), Some((50, 3)));
        marked[0] = true;
        assert_eq!(f.nearest_marked(1, &marked), Some((10, 0)));
        assert_eq!(f.nearest_marked(0, &marked), Some((0, 0)));
    }
}
