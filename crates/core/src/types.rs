//! Core identifier types for RC forests.

use rc_parlay::inline::InlineVec;

/// A vertex of the underlying forest, `0 .. n`.
pub type Vertex = u32;

/// Null sentinel for vertices.
pub const NO_VERTEX: Vertex = u32::MAX;

/// Maximum degree supported by the core structure. Arbitrary-degree forests
/// are layered on top via ternarization (`rc-ternary`).
pub const MAX_DEGREE: usize = 3;

/// Handle to an RC cluster.
///
/// Every vertex `v` owns exactly one internal cluster (created when `v`
/// contracts); base edge clusters live in a separate arena. The handle is a
/// tagged `u32`: vertex clusters are the id itself, edge clusters have the
/// top bit set.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub(crate) u32);

const EDGE_TAG: u32 = 1 << 31;

impl ClusterId {
    /// Null handle.
    pub const NONE: ClusterId = ClusterId(u32::MAX);

    /// The cluster represented by vertex `v`.
    #[inline]
    pub fn vertex(v: Vertex) -> Self {
        debug_assert!(v < EDGE_TAG);
        ClusterId(v)
    }

    /// The base cluster of edge-arena slot `idx`.
    #[inline]
    pub fn edge(idx: u32) -> Self {
        debug_assert!(idx < EDGE_TAG - 1);
        ClusterId(idx | EDGE_TAG)
    }

    /// Is this a vertex (internal) cluster?
    #[inline]
    pub fn is_vertex(self) -> bool {
        self != Self::NONE && self.0 & EDGE_TAG == 0
    }

    /// Is this a base edge cluster?
    #[inline]
    pub fn is_edge(self) -> bool {
        self != Self::NONE && self.0 & EDGE_TAG != 0
    }

    /// Is this the null handle?
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// The vertex of a vertex cluster.
    #[inline]
    pub fn as_vertex(self) -> Vertex {
        debug_assert!(self.is_vertex());
        self.0
    }

    /// The arena slot of an edge cluster.
    #[inline]
    pub fn as_edge(self) -> u32 {
        debug_assert!(self.is_edge());
        self.0 & !EDGE_TAG
    }
}

impl Default for ClusterId {
    fn default() -> Self {
        Self::NONE
    }
}

impl std::fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "C(-)")
        } else if self.is_vertex() {
            write!(f, "Cv({})", self.as_vertex())
        } else {
            write!(f, "Ce({})", self.as_edge())
        }
    }
}

/// What happened to a live vertex at the end of a contraction round.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Event {
    /// Survived the round.
    #[default]
    Live,
    /// Raked (degree 1) into its unique live neighbor.
    Rake,
    /// Compressed (degree 2), joining its two live neighbors.
    Compress,
    /// Finalized (degree 0), becoming the root of its component.
    Finalize,
}

impl Event {
    /// Did the vertex contract (leave the tree) this round?
    #[inline]
    pub fn contracts(self) -> bool {
        self != Event::Live
    }
}

/// The kind of an internal cluster — determined by how its representative
/// vertex contracted.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ClusterKind {
    /// Not yet built (vertex never contracted — transient during builds).
    #[default]
    Invalid,
    /// One boundary vertex; created by a rake.
    Unary,
    /// Two boundary vertices; created by a compress. Behaves as a
    /// "generalized edge" between its boundaries.
    Binary,
    /// No boundary vertices; the root cluster of a component.
    Nullary,
}

/// One adjacency slot of a vertex at some contraction level.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct AdjEntry {
    /// The neighbor this slot points at (for `raked` entries: the vertex
    /// that raked onto us — no longer live).
    pub nbr: Vertex,
    /// The cluster currently representing this slot: a base edge, a binary
    /// cluster (generalized edge), or — for raked slots — the unary cluster
    /// hanging here.
    pub cluster: ClusterId,
    /// True when the slot holds a unary cluster that raked onto this vertex
    /// (it no longer counts toward the degree).
    pub raked: bool,
}

/// The state of one vertex during one contraction level: its adjacency
/// slots (sorted by `nbr` — a canonical order that makes repaired
/// structures bit-identical to fresh builds) and the event that ended the
/// level for it.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct LevelRecord {
    /// Adjacency slots, sorted by `nbr`; at most [`MAX_DEGREE`].
    pub adj: InlineVec<AdjEntry, MAX_DEGREE>,
    /// Outcome of this round for the vertex.
    pub event: Event,
}

impl LevelRecord {
    /// Live degree (non-raked slots).
    #[inline]
    pub fn degree(&self) -> usize {
        self.adj.iter().filter(|e| !e.raked).count()
    }

    /// Iterator over live (non-raked) slots.
    pub fn live(&self) -> impl Iterator<Item = AdjEntry> + '_ {
        self.adj.iter().filter(|e| !e.raked)
    }

    /// Iterator over raked slots.
    pub fn rakes(&self) -> impl Iterator<Item = AdjEntry> + '_ {
        self.adj.iter().filter(|e| e.raked)
    }

    /// The unique live neighbor (panics unless degree is exactly 1).
    pub fn sole_neighbor(&self) -> AdjEntry {
        let mut it = self.live();
        let e = it.next().expect("degree >= 1 expected");
        debug_assert!(it.next().is_none(), "degree 1 expected");
        e
    }

    /// Insert a slot keeping `adj` sorted by `nbr`.
    pub fn insert_sorted(&mut self, entry: AdjEntry) {
        self.adj.push(entry);
        let s = self.adj.as_mut_slice();
        let mut i = s.len() - 1;
        while i > 0 && s[i - 1].nbr > s[i].nbr {
            s.swap(i - 1, i);
            i -= 1;
        }
    }

    /// Same adjacency (used by change propagation to detect convergence)?
    #[inline]
    pub fn same_adj(&self, other: &LevelRecord) -> bool {
        self.adj == other.adj
    }
}

/// Errors reported by forest operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ForestError {
    /// A vertex id is out of range.
    VertexOutOfRange { v: Vertex, n: usize },
    /// An operation would push a vertex past degree 3.
    DegreeOverflow { v: Vertex },
    /// An inserted edge would close a cycle.
    WouldCreateCycle { u: Vertex, v: Vertex },
    /// An edge scheduled for deletion does not exist.
    MissingEdge { u: Vertex, v: Vertex },
    /// An edge scheduled for insertion already exists (or repeats in batch).
    DuplicateEdge { u: Vertex, v: Vertex },
    /// Self loops are not allowed.
    SelfLoop { v: Vertex },
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range (forest has {n} vertices)")
            }
            ForestError::DegreeOverflow { v } => write!(
                f,
                "vertex {v} would exceed degree {MAX_DEGREE}; use rc-ternary for arbitrary degree"
            ),
            ForestError::WouldCreateCycle { u, v } => {
                write!(f, "inserting edge ({u},{v}) would create a cycle")
            }
            ForestError::MissingEdge { u, v } => write!(f, "edge ({u},{v}) does not exist"),
            ForestError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u},{v}) already exists or repeats in the batch")
            }
            ForestError::SelfLoop { v } => write!(f, "self loop at vertex {v}"),
        }
    }
}

impl std::error::Error for ForestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_id_tagging() {
        let cv = ClusterId::vertex(42);
        assert!(cv.is_vertex());
        assert!(!cv.is_edge());
        assert_eq!(cv.as_vertex(), 42);

        let ce = ClusterId::edge(42);
        assert!(ce.is_edge());
        assert!(!ce.is_vertex());
        assert_eq!(ce.as_edge(), 42);
        assert_ne!(cv, ce);

        assert!(ClusterId::NONE.is_none());
        assert!(!ClusterId::NONE.is_vertex());
        assert!(!ClusterId::NONE.is_edge());
    }

    #[test]
    fn record_degree_and_views() {
        let mut r = LevelRecord::default();
        r.insert_sorted(AdjEntry {
            nbr: 5,
            cluster: ClusterId::edge(0),
            raked: false,
        });
        r.insert_sorted(AdjEntry {
            nbr: 2,
            cluster: ClusterId::edge(1),
            raked: false,
        });
        r.insert_sorted(AdjEntry {
            nbr: 9,
            cluster: ClusterId::vertex(9),
            raked: true,
        });
        assert_eq!(r.degree(), 2);
        let nbrs: Vec<u32> = r.adj.iter().map(|e| e.nbr).collect();
        assert_eq!(nbrs, vec![2, 5, 9], "sorted by neighbor id");
        assert_eq!(r.rakes().count(), 1);
    }

    #[test]
    fn sole_neighbor() {
        let mut r = LevelRecord::default();
        r.insert_sorted(AdjEntry {
            nbr: 7,
            cluster: ClusterId::edge(3),
            raked: false,
        });
        r.insert_sorted(AdjEntry {
            nbr: 1,
            cluster: ClusterId::vertex(1),
            raked: true,
        });
        assert_eq!(r.sole_neighbor().nbr, 7);
    }

    #[test]
    fn error_display() {
        let e = ForestError::DegreeOverflow { v: 3 };
        assert!(e.to_string().contains("degree"));
    }
}
