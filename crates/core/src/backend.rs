//! The [`DynamicForest`] backend trait: one op surface, many structures.
//!
//! The paper's headline experiment is a backend-vs-backend shootout:
//! batch-parallel RC-tree queries against independent sequential
//! dynamic-tree operations, crossing over once the batch size is large
//! enough. This module extracts that common surface so RC trees
//! ([`RcForest<StdAgg>`]), ternarized RC trees (`rc-ternary`), link-cut
//! trees (`rc-lct`) and the naive oracle ([`NaiveStdForest`]) are
//! interchangeable behind one trait — for differential testing, stream
//! replay (`rc-gen`), and crossover benchmarks (`rc-bench`).
//!
//! The trait is concrete over the *standard weight model* ([`StdAgg`]):
//! `u64` edge weights, `u64` additive vertex weights with a mark bit,
//! wrapping sums, and extreme edges reported as [`EdgeRef`] witnesses with
//! the deterministic `(weight, u, v)` tie-break. Fixing the model is what
//! makes responses comparable *bit-for-bit* across backends.

use crate::aggregates::{EdgeRef, PathSummary, StdAgg, StdVertexWeight};
use crate::forest::RcForest;
use crate::naive::NaiveForest;
use crate::state::ForestState;
use crate::types::{ForestError, Vertex};

/// A dynamic forest over `n` fixed vertices supporting edge insertion and
/// deletion plus the seven query families of the paper, under one uniform
/// response contract.
///
/// # Update contract (`ForestError`, validate-then-apply)
///
/// Single-op updates either apply fully or return a [`ForestError`]
/// without changing anything. Backends agree on the exact error *and* the
/// order checks are performed in, so two backends driven by the same op
/// sequence produce identical `Result`s:
///
/// * [`link`](Self::link): range of `u`, range of `v`, self-loop,
///   duplicate edge, degree of `u`, degree of `v` (only when the backend
///   enforces a cap — see [`max_degree`](Self::max_degree)), cycle.
/// * [`cut`](Self::cut): range of `u`, range of `v`, missing edge.
/// * [`set_edge_weight`](Self::set_edge_weight): missing edge (an
///   out-of-range endpoint also reports [`ForestError::MissingEdge`],
///   matching `RcForest::update_edge_weights`).
/// * [`set_vertex_weight`](Self::set_vertex_weight) /
///   [`set_mark`](Self::set_mark): vertex range.
///
/// The default batch implementations ([`batch_link`](Self::batch_link),
/// [`batch_cut`](Self::batch_cut)) apply ops sequentially and stop at the
/// first error — a *prefix* may have been applied. Batch-native backends
/// (RC trees) override them with atomic validate-then-apply semantics;
/// differential tests therefore compare backends over single ops, where
/// the contracts coincide exactly.
///
/// # Query contract (uniform `None`)
///
/// Queries accept arbitrary vertex ids and never panic:
///
/// * any out-of-range id → `None` (`false` for [`connected`](Self::connected));
/// * self-pairs are well-defined: `path_sum(u, u)` / `path_extrema(u, u)`
///   answer the empty-path identity, `lca(u, u, r)` answers `u` when
///   connected to `r`, `subtree_sum(u, u)` answers `None` (`u` is not its
///   own neighbor);
/// * disconnected pairs → `None`;
/// * [`subtree_sum`](Self::subtree_sum) requires `parent` to currently be
///   a neighbor of `v`, else `None`;
/// * [`nearest_marked`](Self::nearest_marked) answers the nearest marked
///   vertex in `v`'s tree as `(distance, vertex)`, ties broken toward the
///   lexicographically smaller pair, `None` when the component has no
///   marks.
///
/// [`representative`](Self::representative) is the one family compared
/// *structurally* rather than literally: the contract is only that two
/// vertices map to the same representative iff they are connected (and
/// out-of-range ids map to `None`). Which vertex represents a component —
/// and whether it is stable across queries — is backend-defined (link-cut
/// trees re-root on every query). Differential harnesses compare the
/// induced partition, not the ids.
pub trait DynamicForest {
    /// Short stable name for reports and benchmark output.
    fn backend_name(&self) -> &'static str;

    /// Number of vertices (fixed at construction).
    fn num_vertices(&self) -> usize;

    /// Number of live edges.
    fn num_edges(&self) -> usize;

    /// The degree cap this backend enforces on [`link`](Self::link)
    /// (`Some(3)` for raw RC forests, `None` for ternarized/pointer
    /// structures). Workload generators use it to shape valid streams.
    fn max_degree(&self) -> Option<usize>;

    /// Cheap monotone version stamp: advances at least once per
    /// successful state-changing operation and never otherwise, so two
    /// equal reads bracket an unchanged forest. This is the plumbing MVCC
    /// consumers (the serve tier's pipelined epochs) use to tag published
    /// read-only handles without hashing state. Backends that do not
    /// track versions return `0`; consumers must treat `0` as "no
    /// information", never as "unchanged".
    fn version(&self) -> u64 {
        0
    }

    // ---- updates ----

    /// Insert edge `{u, v}` with weight `w`.
    fn link(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError>;

    /// Delete edge `{u, v}`.
    fn cut(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError>;

    /// Set the weight of existing edge `{u, v}`.
    fn set_edge_weight(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError>;

    /// Set the additive weight of vertex `v` (mark bit unchanged).
    fn set_vertex_weight(&mut self, v: Vertex, w: u64) -> Result<(), ForestError>;

    /// Set the mark bit of vertex `v` (additive weight unchanged).
    fn set_mark(&mut self, v: Vertex, marked: bool) -> Result<(), ForestError>;

    /// Insert a batch of edges. Default: sequential, stops at the first
    /// error (prefix applied). Batch-native backends override with atomic
    /// semantics.
    fn batch_link(&mut self, links: &[(Vertex, Vertex, u64)]) -> Result<(), ForestError> {
        for &(u, v, w) in links {
            self.link(u, v, w)?;
        }
        Ok(())
    }

    /// Delete a batch of edges. Default: sequential, stops at the first
    /// error (prefix applied).
    fn batch_cut(&mut self, cuts: &[(Vertex, Vertex)]) -> Result<(), ForestError> {
        for &(u, v) in cuts {
            self.cut(u, v)?;
        }
        Ok(())
    }

    // ---- the seven query families ----

    /// Are `u` and `v` in the same tree?
    fn connected(&mut self, u: Vertex, v: Vertex) -> bool;

    /// Component representative (see the trait docs for the structural
    /// comparison contract).
    fn representative(&mut self, v: Vertex) -> Option<Vertex>;

    /// Sum of edge weights on the `u..v` path (wrapping).
    fn path_sum(&mut self, u: Vertex, v: Vertex) -> Option<u64>;

    /// Sum + lightest + heaviest edge on the `u..v` path.
    fn path_extrema(&mut self, u: Vertex, v: Vertex) -> Option<PathSummary>;

    /// LCA of `u` and `v` in the tree rooted at `r`.
    fn lca(&mut self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex>;

    /// Sum of edge + vertex weights in the subtree at `v` away from its
    /// neighbor `parent` (excluding the edge `{v, parent}`).
    fn subtree_sum(&mut self, v: Vertex, parent: Vertex) -> Option<u64>;

    /// Nearest marked vertex to `v` as `(distance, vertex)`.
    fn nearest_marked(&mut self, v: Vertex) -> Option<(u64, Vertex)>;

    // ---- batch queries (default: loop singles; RC overrides natively) ----

    /// Batched [`connected`](Self::connected).
    fn batch_connected(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<bool> {
        pairs.iter().map(|&(u, v)| self.connected(u, v)).collect()
    }

    /// Batched [`representative`](Self::representative).
    fn batch_representatives(&mut self, vs: &[Vertex]) -> Vec<Option<Vertex>> {
        vs.iter().map(|&v| self.representative(v)).collect()
    }

    /// Batched [`path_sum`](Self::path_sum).
    fn batch_path_sum(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<u64>> {
        pairs.iter().map(|&(u, v)| self.path_sum(u, v)).collect()
    }

    /// Batched [`path_extrema`](Self::path_extrema).
    fn batch_path_extrema(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<PathSummary>> {
        pairs
            .iter()
            .map(|&(u, v)| self.path_extrema(u, v))
            .collect()
    }

    /// Batched [`lca`](Self::lca).
    fn batch_lca(&mut self, queries: &[(Vertex, Vertex, Vertex)]) -> Vec<Option<Vertex>> {
        queries.iter().map(|&(u, v, r)| self.lca(u, v, r)).collect()
    }

    /// Batched [`subtree_sum`](Self::subtree_sum).
    fn batch_subtree_sum(&mut self, queries: &[(Vertex, Vertex)]) -> Vec<Option<u64>> {
        queries
            .iter()
            .map(|&(v, p)| self.subtree_sum(v, p))
            .collect()
    }

    /// Batched [`nearest_marked`](Self::nearest_marked).
    fn batch_nearest_marked(&mut self, vs: &[Vertex]) -> Vec<Option<(u64, Vertex)>> {
        vs.iter().map(|&v| self.nearest_marked(v)).collect()
    }

    // ---- state export / import (snapshots, cross-backend equality) ----

    /// Export the complete logical state — edges with weights, vertex
    /// weights, marks — as a canonical [`ForestState`].
    ///
    /// Canonical form means two backends hold the same forest iff their
    /// exports are `==`, regardless of internal representation. This is
    /// the extraction side of the durability layer's snapshots; the
    /// restore side is [`ForestState::build_std_forest`] (batch build)
    /// or [`import_state`](Self::import_state).
    fn export_state(&self) -> ForestState;

    /// Load `state` into this (empty, same-`n`) forest. Default: one
    /// [`batch_link`](Self::batch_link) over the edge list (batch-native
    /// backends take their parallel path) plus weight/mark updates.
    fn import_state(&mut self, state: &ForestState) -> Result<(), ForestError> {
        assert_eq!(self.num_vertices(), state.n, "import into same-n forest");
        assert_eq!(self.num_edges(), 0, "import into an empty forest");
        self.batch_link(&state.edges)?;
        for (v, &w) in state.weights.iter().enumerate() {
            if w != 0 {
                self.set_vertex_weight(v as Vertex, w)?;
            }
        }
        for &m in &state.marks {
            self.set_mark(m, true)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// RC forest backend
// ---------------------------------------------------------------------

impl DynamicForest for RcForest<StdAgg> {
    fn backend_name(&self) -> &'static str {
        "rc"
    }

    fn num_vertices(&self) -> usize {
        RcForest::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        RcForest::num_edges(self)
    }

    fn max_degree(&self) -> Option<usize> {
        Some(crate::types::MAX_DEGREE)
    }

    fn version(&self) -> u64 {
        RcForest::version(self)
    }

    fn link(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        RcForest::batch_link(self, &[(u, v, w)])
    }

    fn cut(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError> {
        RcForest::batch_cut(self, &[(u, v)])
    }

    fn set_edge_weight(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        self.update_edge_weights(&[(u, v, w)])
    }

    fn set_vertex_weight(&mut self, v: Vertex, w: u64) -> Result<(), ForestError> {
        if !self.in_range(v) {
            return Err(ForestError::VertexOutOfRange {
                v,
                n: RcForest::num_vertices(self),
            });
        }
        let marked = self.vertex_weight(v).marked;
        self.update_vertex_weights(&[(v, StdVertexWeight { weight: w, marked })])
    }

    fn set_mark(&mut self, v: Vertex, marked: bool) -> Result<(), ForestError> {
        if marked {
            self.batch_mark(&[v])
        } else {
            self.batch_unmark(&[v])
        }
    }

    fn batch_link(&mut self, links: &[(Vertex, Vertex, u64)]) -> Result<(), ForestError> {
        RcForest::batch_link(self, links)
    }

    fn batch_cut(&mut self, cuts: &[(Vertex, Vertex)]) -> Result<(), ForestError> {
        RcForest::batch_cut(self, cuts)
    }

    fn connected(&mut self, u: Vertex, v: Vertex) -> bool {
        RcForest::connected(self, u, v)
    }

    fn representative(&mut self, v: Vertex) -> Option<Vertex> {
        if self.in_range(v) {
            Some(self.find_representative(v))
        } else {
            None
        }
    }

    fn path_sum(&mut self, u: Vertex, v: Vertex) -> Option<u64> {
        self.path_aggregate(u, v).map(|p| p.sum)
    }

    fn path_extrema(&mut self, u: Vertex, v: Vertex) -> Option<PathSummary> {
        RcForest::batch_path_extrema(self, &[(u, v)])
            .pop()
            .flatten()
    }

    fn lca(&mut self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        RcForest::lca(self, u, v, r)
    }

    fn subtree_sum(&mut self, v: Vertex, parent: Vertex) -> Option<u64> {
        self.subtree_aggregate(v, parent)
    }

    fn nearest_marked(&mut self, v: Vertex) -> Option<(u64, Vertex)> {
        RcForest::batch_nearest_marked(self, &[v]).pop().flatten()
    }

    fn batch_connected(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<bool> {
        RcForest::batch_connected(self, pairs)
    }

    fn batch_representatives(&mut self, vs: &[Vertex]) -> Vec<Option<Vertex>> {
        self.batch_find_representatives(vs)
            .into_iter()
            .map(|r| (r != crate::types::NO_VERTEX).then_some(r))
            .collect()
    }

    fn batch_path_sum(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<u64>> {
        self.batch_path_aggregate(pairs)
            .into_iter()
            .map(|o| o.map(|p| p.sum))
            .collect()
    }

    fn batch_path_extrema(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<PathSummary>> {
        RcForest::batch_path_extrema(self, pairs)
    }

    fn batch_lca(&mut self, queries: &[(Vertex, Vertex, Vertex)]) -> Vec<Option<Vertex>> {
        RcForest::batch_lca(self, queries)
    }

    fn batch_subtree_sum(&mut self, queries: &[(Vertex, Vertex)]) -> Vec<Option<u64>> {
        self.batch_subtree_aggregate(queries)
    }

    fn batch_nearest_marked(&mut self, vs: &[Vertex]) -> Vec<Option<(u64, Vertex)>> {
        RcForest::batch_nearest_marked(self, vs)
    }

    fn export_state(&self) -> ForestState {
        let n = RcForest::num_vertices(self);
        let mut state = ForestState {
            n,
            edges: self.edge_list(),
            weights: (0..n as Vertex)
                .map(|v| self.vertex_weight(v).weight)
                .collect(),
            marks: (0..n as Vertex)
                .filter(|&v| self.vertex_weight(v).marked)
                .collect(),
        };
        state.canonicalize();
        state
    }
}

// ---------------------------------------------------------------------
// Naive oracle backend
// ---------------------------------------------------------------------

/// The naive reference forest lifted to the full backend surface:
/// [`NaiveForest`] plus shadow vertex weights and marks, with an optional
/// degree cap so it can mirror the raw RC forest's error contract exactly.
///
/// Everything is `O(component)` per operation — unmistakably correct, and
/// the ground truth both differential tests and the serve oracle replay
/// against.
#[derive(Clone, Debug)]
pub struct NaiveStdForest {
    forest: NaiveForest<u64>,
    vweights: Vec<u64>,
    marked: Vec<bool>,
    cap: Option<usize>,
    version: u64,
}

impl NaiveStdForest {
    /// An edgeless forest on `n` vertices with no degree cap.
    pub fn new(n: usize) -> Self {
        Self::with_max_degree(n, None)
    }

    /// An edgeless forest enforcing `cap` on [`DynamicForest::link`]
    /// (use `Some(3)` to mirror `RcForest`).
    pub fn with_max_degree(n: usize, cap: Option<usize>) -> Self {
        NaiveStdForest {
            forest: NaiveForest::new(n),
            vweights: vec![0; n],
            marked: vec![false; n],
            cap,
            version: 0,
        }
    }

    /// Read access to the wrapped adjacency forest.
    pub fn forest(&self) -> &NaiveForest<u64> {
        &self.forest
    }

    fn in_range(&self, v: Vertex) -> bool {
        (v as usize) < self.vweights.len()
    }

    fn range_check(&self, v: Vertex) -> Result<(), ForestError> {
        if self.in_range(v) {
            Ok(())
        } else {
            Err(ForestError::VertexOutOfRange {
                v,
                n: self.vweights.len(),
            })
        }
    }

    /// Path edges as deterministic refs, for extrema.
    fn path_edge_refs(&self, u: Vertex, v: Vertex) -> Option<Vec<EdgeRef<u64>>> {
        let p = self.forest.path_vertices(u, v)?;
        Some(
            p.windows(2)
                .map(|w| {
                    let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
                    EdgeRef {
                        u: a,
                        v: b,
                        w: *self.forest.edge_weight(a, b).expect("path edge"),
                    }
                })
                .collect(),
        )
    }
}

impl DynamicForest for NaiveStdForest {
    fn backend_name(&self) -> &'static str {
        "naive"
    }

    fn num_vertices(&self) -> usize {
        self.vweights.len()
    }

    fn num_edges(&self) -> usize {
        (0..self.vweights.len() as Vertex)
            .map(|v| self.forest.degree(v))
            .sum::<usize>()
            / 2
    }

    fn max_degree(&self) -> Option<usize> {
        self.cap
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn link(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        self.range_check(u)?;
        self.range_check(v)?;
        if u == v {
            return Err(ForestError::SelfLoop { v });
        }
        if self.forest.edge_weight(u, v).is_some() {
            return Err(ForestError::DuplicateEdge { u, v });
        }
        if let Some(cap) = self.cap {
            for x in [u, v] {
                if self.forest.degree(x) >= cap {
                    return Err(ForestError::DegreeOverflow { v: x });
                }
            }
        }
        if self.forest.connected(u, v) {
            return Err(ForestError::WouldCreateCycle { u, v });
        }
        self.forest.link(u, v, w).expect("checked link");
        self.version += 1;
        Ok(())
    }

    fn cut(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError> {
        self.range_check(u)?;
        self.range_check(v)?;
        if self.forest.edge_weight(u, v).is_none() {
            return Err(ForestError::MissingEdge { u, v });
        }
        self.forest.cut(u, v).expect("checked cut");
        self.version += 1;
        Ok(())
    }

    fn set_edge_weight(&mut self, u: Vertex, v: Vertex, w: u64) -> Result<(), ForestError> {
        if !self.in_range(u) || !self.in_range(v) || self.forest.edge_weight(u, v).is_none() {
            return Err(ForestError::MissingEdge { u, v });
        }
        self.forest.cut(u, v).expect("exists");
        self.forest.link(u, v, w).expect("relink");
        self.version += 1;
        Ok(())
    }

    fn set_vertex_weight(&mut self, v: Vertex, w: u64) -> Result<(), ForestError> {
        self.range_check(v)?;
        self.vweights[v as usize] = w;
        self.version += 1;
        Ok(())
    }

    fn set_mark(&mut self, v: Vertex, marked: bool) -> Result<(), ForestError> {
        self.range_check(v)?;
        self.marked[v as usize] = marked;
        self.version += 1;
        Ok(())
    }

    fn connected(&mut self, u: Vertex, v: Vertex) -> bool {
        self.in_range(u) && self.in_range(v) && self.forest.connected(u, v)
    }

    fn representative(&mut self, v: Vertex) -> Option<Vertex> {
        if !self.in_range(v) {
            return None;
        }
        // Deterministic: the smallest vertex id in the component.
        self.forest.component(v).into_iter().min()
    }

    fn path_sum(&mut self, u: Vertex, v: Vertex) -> Option<u64> {
        if !self.in_range(u) || !self.in_range(v) {
            return None;
        }
        self.forest
            .path_edges(u, v)
            .map(|es| es.iter().fold(0u64, |a, &w| a.wrapping_add(w)))
    }

    fn path_extrema(&mut self, u: Vertex, v: Vertex) -> Option<PathSummary> {
        if !self.in_range(u) || !self.in_range(v) {
            return None;
        }
        let edges = self.path_edge_refs(u, v)?;
        let key = |e: &EdgeRef<u64>| (e.w, e.u, e.v);
        Some(PathSummary {
            sum: edges.iter().fold(0u64, |a, e| a.wrapping_add(e.w)),
            min: edges.iter().min_by_key(|e| key(e)).copied(),
            max: edges.iter().max_by_key(|e| key(e)).copied(),
        })
    }

    fn lca(&mut self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        if [u, v, r].iter().any(|&x| !self.in_range(x)) {
            return None;
        }
        self.forest.lca(u, v, r)
    }

    fn subtree_sum(&mut self, v: Vertex, parent: Vertex) -> Option<u64> {
        if !self.in_range(v)
            || !self.in_range(parent)
            || self.forest.edge_weight(v, parent).is_none()
        {
            return None;
        }
        let (vs, es) = self.forest.subtree(v, parent);
        let mut total = es.iter().fold(0u64, |a, &w| a.wrapping_add(w));
        for x in vs {
            total = total.wrapping_add(self.vweights[x as usize]);
        }
        Some(total)
    }

    fn nearest_marked(&mut self, v: Vertex) -> Option<(u64, Vertex)> {
        if !self.in_range(v) {
            return None;
        }
        self.forest.nearest_marked(v, &self.marked)
    }

    fn export_state(&self) -> ForestState {
        let n = self.vweights.len();
        let mut edges = Vec::new();
        for u in 0..n as Vertex {
            for v in self.forest.neighbors(u) {
                if u < v {
                    edges.push((u, v, *self.forest.edge_weight(u, v).expect("live edge")));
                }
            }
        }
        let mut state = ForestState {
            n,
            edges,
            weights: self.vweights.clone(),
            marks: (0..n as Vertex)
                .filter(|&v| self.marked[v as usize])
                .collect(),
        };
        state.canonicalize();
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::BuildOptions;

    /// The same small scenario through both built-in backends must answer
    /// identically (the cross-backend harness lives in `rc-gen`).
    #[test]
    fn rc_and_naive_agree_on_a_small_scenario() {
        let n = 8usize;
        let edges: Vec<(u32, u32, u64)> = (0..n as u32 - 1)
            .map(|i| (i, i + 1, i as u64 + 1))
            .collect();
        let mut rc = RcForest::<StdAgg>::build_edges(n, &edges, BuildOptions::default()).unwrap();
        let mut nv = NaiveStdForest::with_max_degree(n, Some(3));
        for &(u, v, w) in &edges {
            nv.link(u, v, w).unwrap();
        }
        for f in [
            (&mut rc as &mut dyn DynamicForest),
            (&mut nv as &mut dyn DynamicForest),
        ] {
            f.set_vertex_weight(3, 50).unwrap();
            f.set_mark(0, true).unwrap();
        }
        let probes: Vec<(u32, u32)> = vec![(0, 7), (2, 2), (9, 1), (3, 4)];
        for &(u, v) in &probes {
            assert_eq!(rc.connected(u, v), nv.connected(u, v), "connected {u},{v}");
            assert_eq!(rc.path_sum(u, v), nv.path_sum(u, v), "path_sum {u},{v}");
            assert_eq!(
                rc.path_extrema(u, v),
                nv.path_extrema(u, v),
                "extrema {u},{v}"
            );
            assert_eq!(
                rc.subtree_sum(u, v),
                nv.subtree_sum(u, v),
                "subtree {u},{v}"
            );
        }
        assert_eq!(rc.lca(1, 5, 7), nv.lca(1, 5, 7));
        assert_eq!(rc.nearest_marked(6), nv.nearest_marked(6));
        // Identical error outcomes, including order-sensitive ones.
        for f in [
            (&mut rc as &mut dyn DynamicForest),
            (&mut nv as &mut dyn DynamicForest),
        ] {
            assert_eq!(f.link(0, 0, 1), Err(ForestError::SelfLoop { v: 0 }));
            assert_eq!(
                f.link(0, 1, 9),
                Err(ForestError::DuplicateEdge { u: 0, v: 1 })
            );
            assert_eq!(
                f.link(2, 7, 1),
                Err(ForestError::WouldCreateCycle { u: 2, v: 7 })
            );
            assert_eq!(f.cut(0, 5), Err(ForestError::MissingEdge { u: 0, v: 5 }));
            assert_eq!(
                f.link(99, 0, 1),
                Err(ForestError::VertexOutOfRange { v: 99, n: 8 })
            );
            assert_eq!(
                f.set_edge_weight(0, 99, 1),
                Err(ForestError::MissingEdge { u: 0, v: 99 })
            );
        }
    }

    #[test]
    fn naive_degree_cap_matches_rc_order() {
        // Degree check fires before the cycle check, u before v.
        let mut nv = NaiveStdForest::with_max_degree(6, Some(3));
        for v in 1..=3 {
            nv.link(0, v, 1).unwrap();
        }
        nv.link(1, 4, 1).unwrap();
        assert_eq!(nv.link(0, 4, 1), Err(ForestError::DegreeOverflow { v: 0 }));
        let mut rc = RcForest::<StdAgg>::new(6);
        for v in 1..=3 {
            DynamicForest::link(&mut rc, 0, v, 1).unwrap();
        }
        DynamicForest::link(&mut rc, 1, 4, 1).unwrap();
        assert_eq!(
            DynamicForest::link(&mut rc, 0, 4, 1),
            Err(ForestError::DegreeOverflow { v: 0 })
        );
    }

    #[test]
    fn naive_representative_is_component_minimum() {
        let mut nv = NaiveStdForest::new(5);
        nv.link(3, 4, 1).unwrap();
        assert_eq!(nv.representative(4), Some(3));
        assert_eq!(nv.representative(0), Some(0));
        assert_eq!(nv.representative(9), None);
    }
}
