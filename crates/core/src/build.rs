//! Static parallel tree contraction (§5.2).
//!
//! Round-synchronous: each round decides an independent set of eligible
//! vertices, contracts them in place (building their RC clusters and
//! aggregates), and writes the survivors' next-level records. Expected
//! `O(n)` work and space, `O(log² n)` span.

use crate::aggregate::ClusterAggregate;
use crate::decide::{decide_deterministic, decide_randomized};
use crate::forest::{BuildOptions, ContractionMode, EdgeArena, MarkSpace, RcForest, VertexCluster};
use crate::types::*;
use rc_parlay::pack::pack_index;
use rc_parlay::slice::ParSlice;
use rc_parlay::{parallel_for, NONE_U32};

/// Minimal union–find for build-time cycle detection.
pub(crate) struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    pub(crate) fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Union by id; returns false when already connected.
    pub(crate) fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra.max(rb) as usize] = ra.min(rb);
        true
    }
}

impl<A: ClusterAggregate> RcForest<A> {
    /// An empty forest of `n` isolated vertices with default weights.
    pub fn new(n: usize) -> Self {
        Self::build(
            n,
            vec![A::VertexWeight::default(); n],
            &[],
            BuildOptions::default(),
        )
        .expect("empty build cannot fail")
    }

    /// Build from an edge list with default vertex weights.
    pub fn build_edges(
        n: usize,
        edges: &[(Vertex, Vertex, A::EdgeWeight)],
        opts: BuildOptions,
    ) -> Result<Self, ForestError> {
        Self::build(n, vec![A::VertexWeight::default(); n], edges, opts)
    }

    /// Build an RC forest over `n` vertices from `edges` (§5.2).
    ///
    /// Validates the input: ids in range, no self loops, no duplicate
    /// edges, degree ≤ 3 (ternarize for more), and acyclicity.
    pub fn build(
        n: usize,
        vertex_weights: Vec<A::VertexWeight>,
        edges: &[(Vertex, Vertex, A::EdgeWeight)],
        opts: BuildOptions,
    ) -> Result<Self, ForestError> {
        assert_eq!(vertex_weights.len(), n);
        // ---- validation ----
        let mut uf = UnionFind::new(n);
        let mut deg = vec![0u8; n];
        for &(u, v, _) in edges {
            if u as usize >= n {
                return Err(ForestError::VertexOutOfRange { v: u, n });
            }
            if v as usize >= n {
                return Err(ForestError::VertexOutOfRange { v, n });
            }
            if u == v {
                return Err(ForestError::SelfLoop { v });
            }
            for x in [u, v] {
                deg[x as usize] += 1;
                if deg[x as usize] as usize > MAX_DEGREE {
                    return Err(ForestError::DegreeOverflow { v: x });
                }
            }
            if !uf.union(u, v) {
                return Err(ForestError::WouldCreateCycle { u, v });
            }
        }

        // ---- arena + level-0 records ----
        let mut forest = RcForest {
            n,
            opts,
            histories: vec![vec![LevelRecord::default()]; n],
            clusters: Vec::with_capacity(n),
            vertex_weights,
            edges: EdgeArena::new(),
            levels: 0,
            marks: MarkSpace::new(n),
            version: 0,
            scratch: Default::default(),
        };
        // Cluster slots start invalid; a throwaway aggregate fills them.
        let dummy = A::finalize(
            0,
            &forest.vertex_weights.first().cloned().unwrap_or_default(),
            &[],
        );
        forest.clusters = vec![VertexCluster::invalid(dummy); n];

        let mut seen = std::collections::HashSet::with_capacity(edges.len() * 2);
        for &(u, v, ref w) in edges {
            let key = rc_parlay::hashtable::edge_key(u, v);
            if !seen.insert(key) {
                return Err(ForestError::DuplicateEdge { u, v });
            }
            let e = forest.edges.alloc(u, v, w.clone());
            forest.histories[u as usize][0].insert_sorted(AdjEntry {
                nbr: v,
                cluster: ClusterId::edge(e),
                raked: false,
            });
            forest.histories[v as usize][0].insert_sorted(AdjEntry {
                nbr: u,
                cluster: ClusterId::edge(e),
                raked: false,
            });
        }

        // ---- contraction rounds ----
        let live: Vec<Vertex> = (0..n as u32).collect();
        forest.contract_all(live, 0);
        Ok(forest)
    }

    /// Run contraction rounds to completion starting from `live` at
    /// `start_level`, assuming records at `start_level` are in place.
    pub(crate) fn contract_all(&mut self, mut live: Vec<Vertex>, start_level: u32) {
        let n = self.n;
        let mut events: Vec<Event> = vec![Event::Live; n];
        let mut next: Vec<LevelRecord> = vec![LevelRecord::default(); n];
        let mut level = start_level;

        while !live.is_empty() {
            // Phase B: decide this round's independent set.
            match self.opts.mode {
                ContractionMode::Randomized => {
                    let pe = ParSlice::new(&mut events);
                    let me: &RcForest<A> = self;
                    parallel_for(live.len(), |i| {
                        let v = live[i];
                        let ev = decide_randomized(me, v, level, &|_| None);
                        // SAFETY: slot v written by exactly one live entry.
                        unsafe { pe.write(v as usize, ev) };
                    });
                }
                ContractionMode::Deterministic => {
                    // Pre-fill with Live, then let the MIS mark selections.
                    let pe = ParSlice::new(&mut events);
                    parallel_for(live.len(), |i| unsafe {
                        pe.write(live[i] as usize, Event::Live)
                    });
                    decide_deterministic(self, &live, level, &mut events);
                }
            }

            // Phase C: contractors build clusters; survivors compute their
            // next-level records. All writes are per-vertex disjoint;
            // cross-reads only touch level `level` records and aggregates
            // of earlier rounds.
            {
                let me: &RcForest<A> = self;
                let built: Vec<(Vertex, VertexCluster<A>)> =
                    rc_parlay::parallel_collect(live.len(), |i, acc| {
                        let v = live[i];
                        let ev = events[v as usize];
                        if ev.contracts() {
                            acc.push((v, me.make_cluster(v, level, ev)));
                        }
                    });
                let pn = ParSlice::new(&mut next);
                parallel_for(live.len(), |i| {
                    let v = live[i];
                    if !events[v as usize].contracts() {
                        let rec = me.successor_record(v, level, &|u| events[u as usize]);
                        // SAFETY: slot v written once.
                        unsafe { pn.write(v as usize, rec) };
                    }
                });
                // Commit clusters and parent pointers (sequentialized per
                // cluster; each child has a unique consumer).
                let _ = pn; // end the ParSlice borrow before committing
                for (v, cluster) in built {
                    self.clusters[v as usize] = cluster;
                    self.assign_parents_seq(v);
                }
            }

            // Phase D: persist events and survivor records.
            {
                let ph = ParSlice::new(&mut self.histories);
                let events_ro: &[Event] = &events;
                let next_ro: &[LevelRecord] = &next;
                parallel_for(live.len(), |i| {
                    let v = live[i] as usize;
                    // SAFETY: each task touches only histories[v].
                    let h = unsafe { ph.get_mut(v) };
                    h[level as usize].event = events_ro[v];
                    if !events_ro[v].contracts() {
                        if h.len() > level as usize + 1 {
                            h[level as usize + 1] = next_ro[v];
                        } else {
                            h.push(next_ro[v]);
                        }
                    }
                });
            }

            // Survivors continue.
            let idx = pack_index(live.len(), |i| !events[live[i] as usize].contracts());
            live = rc_parlay::pack::map_index(&idx, |i| live[i as usize]);
            level += 1;
            debug_assert!(
                level < 64 + 4 * (usize::BITS - n.leading_zeros()) + 64,
                "contraction failed to make progress by level {level}"
            );
        }
        self.levels = self.levels.max(level);
        let _ = NONE_U32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::{CountAgg, SumAgg};

    fn path_edges(n: usize) -> Vec<(u32, u32, i64)> {
        (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1i64)).collect()
    }

    #[test]
    fn build_empty() {
        let f = RcForest::<SumAgg<i64>>::new(5);
        assert_eq!(f.num_vertices(), 5);
        assert_eq!(f.num_edges(), 0);
        for v in 0..5u32 {
            assert_eq!(f.cluster(v).kind, ClusterKind::Nullary);
            assert_eq!(f.contraction_round(v), 0);
        }
    }

    #[test]
    fn build_single_edge() {
        let f =
            RcForest::<SumAgg<i64>>::build_edges(2, &[(0, 1, 7)], BuildOptions::default()).unwrap();
        // Lower id rakes; higher finalizes next round.
        assert_eq!(f.cluster(0).kind, ClusterKind::Unary);
        assert_eq!(f.cluster(1).kind, ClusterKind::Nullary);
        assert_eq!(f.cluster(0).boundary[0], 1);
        assert_eq!(f.parent_of(ClusterId::vertex(0)), ClusterId::vertex(1));
        assert_eq!(f.cluster(1).agg.total, 7);
    }

    #[test]
    fn build_path_structure() {
        let f =
            RcForest::<SumAgg<i64>>::build_edges(100, &path_edges(100), BuildOptions::default())
                .unwrap();
        // Exactly one nullary cluster (one component).
        let roots = (0..100u32)
            .filter(|&v| f.cluster(v).kind == ClusterKind::Nullary)
            .count();
        assert_eq!(roots, 1);
        // Root aggregate covers all 99 edges.
        let root = (0..100u32)
            .find(|&v| f.cluster(v).kind == ClusterKind::Nullary)
            .unwrap();
        assert_eq!(f.cluster(root).agg.total, 99);
    }

    #[test]
    fn build_star_structure() {
        // Degree-3 star: 0 connected to 1,2,3.
        let edges = vec![(0u32, 1u32, 1i64), (0, 2, 1), (0, 3, 1)];
        let f = RcForest::<SumAgg<i64>>::build_edges(4, &edges, BuildOptions::default()).unwrap();
        let roots = (0..4u32)
            .filter(|&v| f.cluster(v).kind == ClusterKind::Nullary)
            .count();
        assert_eq!(roots, 1);
    }

    #[test]
    fn build_forest_components() {
        let edges = vec![(0u32, 1u32, 1i64), (2, 3, 1), (4, 5, 1)];
        let f = RcForest::<SumAgg<i64>>::build_edges(7, &edges, BuildOptions::default()).unwrap();
        let roots = (0..7u32)
            .filter(|&v| f.cluster(v).kind == ClusterKind::Nullary)
            .count();
        assert_eq!(roots, 4, "three pairs + one isolated vertex");
    }

    #[test]
    fn build_rejects_cycle() {
        let edges = vec![(0u32, 1u32, 1i64), (1, 2, 1), (2, 0, 1)];
        let err = RcForest::<SumAgg<i64>>::build_edges(3, &edges, BuildOptions::default());
        assert_eq!(
            err.unwrap_err(),
            ForestError::WouldCreateCycle { u: 2, v: 0 }
        );
    }

    #[test]
    fn build_rejects_degree_overflow() {
        let edges = vec![(0u32, 1u32, 1i64), (0, 2, 1), (0, 3, 1), (0, 4, 1)];
        let err = RcForest::<SumAgg<i64>>::build_edges(5, &edges, BuildOptions::default());
        assert_eq!(err.unwrap_err(), ForestError::DegreeOverflow { v: 0 });
    }

    #[test]
    fn build_rejects_self_loop_and_duplicates() {
        assert!(matches!(
            RcForest::<SumAgg<i64>>::build_edges(3, &[(1, 1, 1)], BuildOptions::default()),
            Err(ForestError::SelfLoop { .. })
        ));
        assert!(matches!(
            RcForest::<SumAgg<i64>>::build_edges(
                3,
                &[(0, 1, 1), (1, 0, 2)],
                BuildOptions::default()
            ),
            Err(ForestError::WouldCreateCycle { .. }) | Err(ForestError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn logarithmic_levels_on_long_path() {
        let n = 10_000;
        let f = RcForest::<CountAgg>::build_edges(
            n,
            &(0..n - 1)
                .map(|i| (i as u32, i as u32 + 1, ()))
                .collect::<Vec<_>>(),
            BuildOptions::default(),
        )
        .unwrap();
        assert!(
            f.num_levels() < 120,
            "path of {n} contracted in {} levels — expected O(log n)",
            f.num_levels()
        );
    }

    #[test]
    fn deterministic_mode_builds_paths() {
        let opts = BuildOptions {
            mode: ContractionMode::Deterministic,
            ..Default::default()
        };
        let f = RcForest::<SumAgg<i64>>::build_edges(1000, &path_edges(1000), opts).unwrap();
        let roots = (0..1000u32)
            .filter(|&v| f.cluster(v).kind == ClusterKind::Nullary)
            .count();
        assert_eq!(roots, 1);
        assert!(f.num_levels() < 200, "levels = {}", f.num_levels());
    }

    #[test]
    fn builds_are_reproducible() {
        let e = path_edges(500);
        let f1 = RcForest::<SumAgg<i64>>::build_edges(500, &e, BuildOptions::default()).unwrap();
        let f2 = RcForest::<SumAgg<i64>>::build_edges(500, &e, BuildOptions::default()).unwrap();
        for v in 0..500u32 {
            assert_eq!(f1.contraction_round(v), f2.contraction_round(v));
            assert_eq!(f1.cluster(v).kind, f2.cluster(v).kind);
        }
    }
}
